"""End-to-end scenarios spanning every layer of the infrastructure."""

from __future__ import annotations

import pytest

from repro.grading import ProgressLog, analyze_progress, grade_batch
from repro.graders import PrimesFunctionality, build_primes_suite
from repro.simulation import ScheduleFuzzer
from repro.testfw.suite import TestSuite
from repro.testfw.ui import SuiteUI


class TestStudentIterationStory:
    """A student's path from broken to correct, as the paper envisions:
    run the tests on in-progress work, read the pinpointed feedback, fix
    the next problem, repeat."""

    PROGRESSION = [
        ("primes.no_fork", "fork"),           # first attempt: no threads
        ("primes.syntax_error", "Randoms"),    # wrong property name
        ("primes.imbalanced", "imbalanced"),   # lopsided split
        ("primes.racy", ""),                   # race (schedule-dependent)
        ("primes.correct", ""),                # done
    ]

    def test_scores_improve_monotonically(self, round_robin_backend):
        scores = []
        for identifier, _hint in self.PROGRESSION:
            result = PrimesFunctionality(identifier).run()
            scores.append(result.score)
        assert scores == sorted(scores)
        assert scores[-1] == pytest.approx(40.0)

    def test_feedback_names_the_next_problem(self, round_robin_backend):
        for identifier, hint in self.PROGRESSION:
            if not hint:
                continue
            result = PrimesFunctionality(identifier).run()
            text = result.render()
            assert hint in text, f"{identifier}: expected {hint!r} in feedback"

    def test_progress_log_shows_improvement_to_instructor(self, round_robin_backend):
        log = ProgressLog()
        for timestamp, (identifier, _hint) in enumerate(self.PROGRESSION):
            suite = TestSuite("primes", [PrimesFunctionality(identifier)])
            log.log_run("carol", suite.run(), timestamp=float(timestamp))
        report = analyze_progress(log, suite="primes")
        [carol] = report.students
        assert carol.improving
        assert carol.latest_percent == pytest.approx(100.0)
        assert not carol.stuck


class TestWorkshopGradingStory:
    """The instructor's side: batch-grade the class, read awareness."""

    def test_batch_grading_orders_submissions_sensibly(self, round_robin_backend):
        gradebook, _live = grade_batch(
            lambda ident: TestSuite("primes", [PrimesFunctionality(ident)]),
            ["primes.correct", "primes.wrong_total", "primes.syntax_error", "primes.no_fork"],
        )
        p = gradebook.class_percentages()
        assert p["primes.correct"] > p["primes.wrong_total"] > p["primes.syntax_error"] > p["primes.no_fork"]


class TestInteractiveUIStory:
    def test_ui_session_over_suite(self, round_robin_backend):
        suite = build_primes_suite("primes.correct", perf_runs=2)
        ui = SuiteUI(suite)
        listing = ui.render_listing()
        assert "PrimesFunctionality" in listing
        result = ui.run_test_at(1)
        assert result.score == pytest.approx(40.0)
        assert "40 / 40" in ui.render_listing()


class TestFuzzingStory:
    def test_race_hidden_from_one_schedule_found_by_many(self):
        """A single benign schedule can pass the racy program; the fuzzer
        (paper's future-work item) still finds it."""
        from repro.simulation.backend import SimulationBackend, use_backend
        from repro.simulation.scheduler import SerializedPolicy

        # Serialized schedule: the race cannot manifest (no overlap) --
        # though the serialization itself is flagged instead.
        with use_backend(SimulationBackend(policy=SerializedPolicy())):
            result = PrimesFunctionality("primes.racy").run()
        post_join_ok = all(
            o.aspect != "post-join semantics" for o in result.failed_aspects()
        )
        assert post_join_ok  # the race itself was invisible

        report = ScheduleFuzzer(
            lambda: PrimesFunctionality("primes.racy"), schedules=6
        ).run()
        assert report.bug_found
