"""Tests of the simulation substrate: clock, scheduler, backend, fuzzer."""

from __future__ import annotations

import threading

import pytest

from repro.simulation.backend import (
    SimulationBackend,
    ThreadingBackend,
    current_backend,
    last_makespan,
    record_makespan,
    use_backend,
)
from repro.simulation.clock import VirtualClock
from repro.simulation.fuzzer import ScheduleFuzzer
from repro.simulation.scheduler import (
    CooperativeScheduler,
    RandomPolicy,
    RoundRobinPolicy,
    SerializedPolicy,
)
from repro.simulation.workload_model import UNIT_COST_MODEL, CostModel, trial_division_cost


class TestVirtualClock:
    def test_charges_accumulate_per_thread(self):
        clock = VirtualClock()
        clock.charge(1.0)
        clock.charge(2.0)
        assert clock.cost_of() == pytest.approx(3.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-1.0)

    def test_makespan_is_root_plus_max_worker(self):
        clock = VirtualClock()
        clock.set_root()
        clock.charge(1.0)  # root work
        a = threading.Thread()
        b = threading.Thread()
        clock.charge(5.0, thread=a)
        clock.charge(3.0, thread=b)
        assert clock.makespan() == pytest.approx(6.0)
        assert clock.serial_total() == pytest.approx(9.0)

    def test_makespan_without_root_is_longest_thread(self):
        clock = VirtualClock()
        a = threading.Thread()
        clock.charge(2.0, thread=a)
        clock.charge(1.0)
        assert clock.makespan() == pytest.approx(2.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.charge(1.0)
        clock.reset()
        assert clock.serial_total() == 0.0
        assert clock.makespan() == 0.0

    def test_worker_costs_excludes_root(self):
        clock = VirtualClock()
        clock.set_root()
        clock.charge(1.0)
        worker = threading.Thread()
        clock.charge(2.0, thread=worker)
        assert list(clock.worker_costs().values()) == [2.0]


class TestSchedulerPolicies:
    def run_workers(self, policy, iterations=3, workers=3):
        """Run gated workers; return the order of (worker, step) events."""
        backend = SimulationBackend(policy=policy)
        log = []
        lock = threading.Lock()

        def make_worker(key):
            def body():
                for step in range(iterations):
                    with lock:
                        log.append((key, step))
                    backend.checkpoint()

            return body

        threads = [backend.spawn(make_worker(k)) for k in range(workers)]
        backend.start_all(threads)
        backend.join_all(threads)
        return log

    def test_round_robin_interleaves_strictly(self):
        log = self.run_workers(RoundRobinPolicy())
        # Steps proceed in lockstep: all workers do step 0, then step 1...
        steps = [step for _k, step in log]
        assert steps == sorted(steps)

    def test_serialized_policy_runs_each_to_completion(self):
        log = self.run_workers(SerializedPolicy())
        keys = [k for k, _s in log]
        # Once a worker's key stops appearing it never reappears.
        seen_complete = set()
        previous = keys[0]
        for key in keys[1:]:
            if key != previous:
                seen_complete.add(previous)
                assert key not in seen_complete
                previous = key

    def test_random_policy_is_deterministic_per_seed(self):
        first = self.run_workers(RandomPolicy(7))
        second = self.run_workers(RandomPolicy(7))
        third = self.run_workers(RandomPolicy(8))
        assert first == second
        assert first != third  # overwhelmingly likely for 9 events

    def test_all_events_complete_under_every_policy(self):
        for policy in (RoundRobinPolicy(), SerializedPolicy(), RandomPolicy(0)):
            log = self.run_workers(policy)
            assert len(log) == 9
            assert sorted(set(log)) == [(k, s) for k in range(3) for s in range(3)]

    def test_unenrolled_thread_checkpoint_passes_through(self):
        scheduler = CooperativeScheduler()
        scheduler.checkpoint()  # the root: must not block

    def test_double_enroll_rejected(self):
        backend = SimulationBackend()
        errors = []

        def body():
            try:
                backend.scheduler.enroll()
            except RuntimeError as exc:
                errors.append(str(exc))

        thread = backend.spawn(body)
        backend.start_all([thread])
        backend.join_all([thread])
        assert errors == ["thread enrolled twice"]

    def test_batched_starts_do_not_deadlock(self):
        """The serialized-submission pattern: start/join one at a time."""
        backend = SimulationBackend()
        log = []

        def make_worker(key):
            def body():
                log.append(key)
                backend.checkpoint()
                log.append(key)

            return body

        for key in range(3):
            thread = backend.spawn(make_worker(key))
            backend.start_all([thread])
            backend.join_all([thread])
        assert log == [0, 0, 1, 1, 2, 2]


class TestSimulationBackendClock:
    def test_checkpoint_cost_reaches_clock(self):
        backend = SimulationBackend()

        def body():
            backend.checkpoint(cost=2.5)

        thread = backend.spawn(body)
        backend.start_all([thread])
        backend.join_all([thread])
        assert backend.makespan() == pytest.approx(2.5)

    def test_balanced_work_speedup_matches_thread_count(self):
        def run(n_threads, items=12):
            backend = SimulationBackend()

            def make_worker(count):
                def body():
                    for _ in range(count):
                        backend.checkpoint(cost=1.0)

                return body

            per = items // n_threads
            threads = [backend.spawn(make_worker(per)) for _ in range(n_threads)]
            backend.start_all(threads)
            backend.join_all(threads)
            return backend.makespan()

        assert run(1) / run(4) == pytest.approx(4.0)

    def test_charge_root_adds_serial_section(self):
        backend = SimulationBackend()

        def body():
            backend.checkpoint(cost=1.0)

        thread = backend.spawn(body)
        backend.start_all(threads=[thread])
        backend.charge_root(0.5)
        backend.join_all([thread])
        assert backend.makespan() == pytest.approx(1.5)


class TestBackendAmbient:
    def test_default_backend_is_threading(self):
        assert isinstance(current_backend(), ThreadingBackend)

    def test_use_backend_installs_and_restores(self):
        backend = SimulationBackend()
        with use_backend(backend):
            assert current_backend() is backend
        assert isinstance(current_backend(), ThreadingBackend)

    def test_use_backend_records_makespan_on_exit(self):
        backend = SimulationBackend()
        with use_backend(backend):
            def body():
                backend.checkpoint(cost=3.0)

            thread = backend.spawn(body)
            backend.start_all([thread])
            backend.join_all([thread])
        assert last_makespan() == pytest.approx(3.0)

    def test_record_makespan_mailbox(self):
        record_makespan(7.25)
        assert last_makespan() == 7.25

    def test_threading_backend_checkpoint_sleeps_briefly(self):
        import time

        backend = ThreadingBackend(yield_sleep=0.001)
        start = time.perf_counter()
        backend.checkpoint()
        assert time.perf_counter() - start >= 0.0005

    def test_threading_backend_zero_sleep(self):
        ThreadingBackend(yield_sleep=0.0).checkpoint()  # no-op


class TestCostModels:
    def test_unit_model(self):
        assert UNIT_COST_MODEL.item_cost() == 1.0

    def test_size_dependent_model(self):
        model = CostModel(per_item=1.0, per_unit_size=0.5)
        assert model.item_cost(4.0) == pytest.approx(3.0)

    def test_trial_division_grows_with_sqrt(self):
        assert trial_division_cost(100) == pytest.approx(0.1)
        assert trial_division_cost(10_000) == pytest.approx(1.0)
        assert trial_division_cost(0) == pytest.approx(0.01)


class TestFuzzer:
    def test_racy_primes_caught(self):
        from repro.graders import PrimesFunctionality

        fuzzer = ScheduleFuzzer(
            lambda: PrimesFunctionality("primes.racy"), schedules=6
        )
        report = fuzzer.run()
        assert report.bug_found
        assert 0 < report.failure_rate <= 1.0
        finding = report.findings[0]
        assert finding.seed >= 0
        assert finding.messages
        assert "failing seed" in report.summary()

    def test_correct_primes_survives_fuzzing(self):
        from repro.graders import PrimesFunctionality

        fuzzer = ScheduleFuzzer(
            lambda: PrimesFunctionality("primes.correct"), schedules=4
        )
        report = fuzzer.run()
        assert not report.bug_found
        assert report.failure_rate == 0.0
        assert "can only refute" in report.summary()

    def test_invalid_schedule_count_rejected(self):
        with pytest.raises(ValueError):
            ScheduleFuzzer(lambda: None, schedules=0)
