"""Unit tests of trace sessions: interception, hiding, capture."""

from __future__ import annotations

import sys
import threading

import pytest

from repro.tracing.print_property import print_property
from repro.tracing.session import (
    TraceSession,
    current_session,
    get_hide_redirected_prints,
    set_hide_redirected_prints,
)


class TestActivation:
    def test_session_becomes_current(self):
        session = TraceSession()
        with session.activate():
            assert current_session() is session
            assert session.active
        assert current_session() is None
        assert not session.active

    def test_nested_sessions_rejected(self):
        outer = TraceSession()
        inner = TraceSession()
        with outer.activate():
            with pytest.raises(RuntimeError, match="already active"):
                inner._install()

    def test_stdout_restored_after_exit(self):
        before = sys.stdout
        with TraceSession().activate():
            assert sys.stdout is not before
        assert sys.stdout is before

    def test_stdout_restored_after_exception(self):
        before = sys.stdout
        with pytest.raises(ValueError):
            with TraceSession().activate():
                raise ValueError("boom")
        assert sys.stdout is before
        assert current_session() is None


class TestRecording:
    def test_plain_print_records_type_named_event(self):
        session = TraceSession()
        with session.activate():
            print("hello")
            print(42)
        events = session.database.snapshot()
        assert [(e.name, e.value) for e in events] == [("str", "hello"), ("int", 42)]
        assert all(not e.explicit for e in events)

    def test_print_property_records_explicit_event(self):
        session = TraceSession()
        with session.activate():
            print_property("Index", 3)
        [event] = session.database.snapshot()
        assert event.explicit
        assert event.name == "Index"
        assert event.value == 3
        assert event.raw_line == "Thread 23->Index:3"

    def test_print_property_not_double_recorded(self):
        session = TraceSession()
        with session.activate():
            print_property("Index", 0)
        assert len(session.database) == 1

    def test_output_preserves_text_and_order(self):
        session = TraceSession()
        with session.activate():
            print("first")
            print_property("Number", 509)
            print("last")
        assert session.output() == "first\nThread 23->Number:509\nlast\n"

    def test_multi_arg_print_records_joined_string(self):
        session = TraceSession()
        with session.activate():
            print("a", "b", 3)
        [event] = session.database.snapshot()
        assert event.name == "str"
        assert event.value == "a b 3"

    def test_stderr_print_passes_through_unrecorded(self, capsys):
        session = TraceSession()
        with session.activate():
            print("to err", file=sys.stderr)
        assert len(session.database) == 0
        assert "to err" in capsys.readouterr().err

    def test_direct_stdout_write_recorded_per_line(self):
        session = TraceSession()
        with session.activate():
            sys.stdout.write("one\ntwo\n")
        events = session.database.snapshot()
        assert [e.raw_line for e in events] == ["one", "two"]

    def test_partial_line_flushed_at_session_end(self):
        session = TraceSession()
        with session.activate():
            sys.stdout.write("no newline")
        assert session.output_lines() == ["no newline"]

    def test_thread_identity_kept_with_events(self):
        session = TraceSession()
        seen = {}

        def worker():
            print_property("Is Prime", True)
            seen["thread"] = threading.current_thread()

        with session.activate():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        [event] = session.database.snapshot()
        assert event.thread is seen["thread"]
        assert event.thread is not threading.current_thread()


class TestHiding:
    def test_hidden_print_produces_no_output_and_no_trace(self):
        session = TraceSession(hidden=True)
        with session.activate():
            print("invisible")
            print_property("Index", 0)
        assert session.output() == ""
        assert len(session.database) == 0

    def test_hide_toggle_mid_run(self):
        session = TraceSession()
        with session.activate():
            print_property("A", 1)
            set_hide_redirected_prints(True)
            print_property("B", 2)
            set_hide_redirected_prints(False)
            print_property("C", 3)
        assert [e.name for e in session.database.snapshot()] == ["A", "C"]

    def test_get_hide_outside_session_is_false(self):
        assert get_hide_redirected_prints() is False

    def test_set_hide_outside_session_is_noop(self):
        set_hide_redirected_prints(True)  # must not raise or leak
        assert get_hide_redirected_prints() is False

    def test_get_hide_reflects_session_flag(self):
        session = TraceSession(hidden=True)
        with session.activate():
            assert get_hide_redirected_prints() is True


class TestObservers:
    def test_observers_see_events_synchronously(self):
        session = TraceSession()
        seen = []
        session.add_observer(type("Obs", (), {"notify": staticmethod(seen.append)})())
        with session.activate():
            print_property("Index", 1)
        assert len(seen) == 1
        assert seen[0].name == "Index"


class TestStandalone:
    def test_print_property_without_session_prints(self, capsys):
        print_property("Index", 5)
        out = capsys.readouterr().out
        assert "->Index:5" in out
        assert out.startswith("Thread ")

    def test_print_property_rejects_non_string_name(self):
        with pytest.raises(TypeError, match="property name"):
            print_property(42, "value")
