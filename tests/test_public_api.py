"""Quality gates on the public API: exports resolve, everything is
documented, and the package's entry points stay wired."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.core",
    "repro.tracing",
    "repro.eventdb",
    "repro.execution",
    "repro.testfw",
    "repro.simulation",
    "repro.instrument",
    "repro.grading",
    "repro.workloads",
    "repro.graders",
]


def iter_public_modules():
    for package_name in PUBLIC_PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


class TestExports:
    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_all_names_resolve(self, package_name):
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package_name}.__all__ lists {name}"

    def test_top_level_surface(self):
        for name in [
            "print_property",
            "set_hide_redirected_prints",
            "AbstractForkJoinChecker",
            "AbstractConcurrencyPerformanceChecker",
            "register_main",
            "max_value",
            "TestSuite",
            "SuiteUI",
        ]:
            assert hasattr(repro, name)

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__
            for module in iter_public_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_public_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (inspect.getdoc(obj) or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_checker_parameter_methods_documented(self):
        from repro.core.checker import AbstractForkJoinChecker

        for name, member in inspect.getmembers(
            AbstractForkJoinChecker, inspect.isfunction
        ):
            if name.startswith("_"):
                continue
            assert (inspect.getdoc(member) or "").strip(), name


class TestEntryPoints:
    def test_console_script_target_exists(self):
        from repro.cli import main

        assert callable(main)

    def test_child_module_runnable(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro.execution.child"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 2
        assert "usage:" in completed.stderr

    def test_cli_module_runnable(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "list"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "primes" in completed.stdout
