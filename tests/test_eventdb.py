"""Unit + property tests of the event database and its queries."""

from __future__ import annotations

import threading
from typing import List

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eventdb.database import EventDatabase
from repro.eventdb.events import PropertyEvent
from repro.eventdb.queries import (
    distinct_thread_ids,
    distinct_threads,
    events_by_thread,
    interleaved_thread_pairs,
    is_interleaved,
    is_load_balanced,
    load_counts,
    max_load_imbalance,
    serialization_order,
    thread_spans,
)
from repro.util.thread_registry import ThreadRegistry


def make_events(schedule: List[int]) -> List[PropertyEvent]:
    """Build a synthetic event log; schedule[i] is the thread of event i.

    Thread keys are small ints mapped onto dummy Thread objects so that
    identity-based queries behave exactly as in real traces.
    """
    registry = ThreadRegistry(first_id=0)
    db = EventDatabase(registry)
    threads = {}
    for key in schedule:
        thread = threads.setdefault(key, threading.Thread(name=f"T{key}"))
        db.record("Index", key, f"Thread {key}->Index:{key}", thread=thread)
    return db.snapshot()


class TestDatabase:
    def test_sequence_numbers_are_dense(self):
        events = make_events([0, 1, 0, 1])
        assert [e.seq for e in events] == [0, 1, 2, 3]

    def test_thread_seq_counts_per_thread(self):
        events = make_events([0, 1, 0, 1, 0])
        by_thread = events_by_thread(events)
        for stream in by_thread.values():
            assert [e.thread_seq for e in stream] == list(range(len(stream)))

    def test_record_default_thread_is_caller(self):
        db = EventDatabase()
        event = db.record("X", 1, "line")
        assert event.thread is threading.current_thread()

    def test_events_of_filters_by_identity(self):
        db = EventDatabase()
        other = threading.Thread()
        db.record("A", 1, "a", thread=other)
        db.record("B", 2, "b")
        assert [e.name for e in db.events_of(other)] == ["A"]

    def test_events_named(self):
        db = EventDatabase()
        db.record("Index", 0, "x")
        db.record("Number", 509, "y")
        db.record("Index", 1, "z")
        assert [e.value for e in db.events_named("Index")] == [0, 1]

    def test_events_between(self):
        db = EventDatabase()
        for i in range(5):
            db.record("Index", i, str(i))
        assert [e.value for e in db.events_between(1, 3)] == [1, 2, 3]

    def test_clear_resets_log(self):
        db = EventDatabase()
        db.record("A", 1, "a")
        db.clear()
        assert len(db) == 0
        assert db.record("B", 2, "b").seq == 0

    def test_notify_re_sequences(self):
        source = EventDatabase()
        sink = EventDatabase()
        event = source.record("A", 1, "a")
        sink.notify(event)
        [copied] = sink.snapshot()
        assert copied.name == "A" and copied.seq == 0

    def test_iteration_yields_snapshot(self):
        db = EventDatabase()
        db.record("A", 1, "a")
        assert [e.name for e in db] == ["A"]

    def test_concurrent_recording_is_consistent(self):
        db = EventDatabase()

        def hammer():
            for _ in range(200):
                db.record("X", 0, "x")

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        events = db.snapshot()
        assert len(events) == 800
        assert [e.seq for e in events] == list(range(800))


class TestInterleavingQueries:
    def test_empty_log_not_interleaved(self):
        assert not is_interleaved([])

    def test_single_thread_not_interleaved(self):
        assert not is_interleaved(make_events([0, 0, 0]))

    def test_serialized_threads_not_interleaved(self):
        events = make_events([0, 0, 1, 1, 2, 2])
        assert not is_interleaved(events)
        assert serialization_order(events) == [0, 1, 2]

    def test_interleaved_threads_detected(self):
        events = make_events([0, 1, 0, 1])
        assert is_interleaved(events)
        assert serialization_order(events) == []

    def test_one_event_inside_other_span_interleaves(self):
        events = make_events([0, 1, 0])
        assert is_interleaved(events)

    def test_pairs_reported_sorted(self):
        events = make_events([0, 1, 2, 0, 1, 2])
        pairs = interleaved_thread_pairs(events)
        assert (0, 1) in pairs and (1, 2) in pairs and (0, 2) in pairs

    def test_spans(self):
        events = make_events([0, 1, 1, 0])
        spans = thread_spans(events)
        assert spans[0] == (0, 3)
        assert spans[1] == (1, 2)

    def test_distinct_threads_first_output_order(self):
        events = make_events([2, 0, 1, 0])
        assert distinct_thread_ids(events) == [0, 1, 2]
        # ids assigned by first registration: schedule key 2 registered first
        assert len(distinct_threads(events)) == 3


class TestLoadQueries:
    def test_load_counts_divides_by_tuple_size(self):
        events = make_events([0, 0, 0, 1, 1, 1])
        counts = load_counts(events, per_iteration_events=3)
        assert counts == {0: 1, 1: 1}

    def test_partial_tuple_rounds_up(self):
        events = make_events([0, 0, 0, 0])
        counts = load_counts(events, per_iteration_events=3)
        assert counts == {0: 2}

    def test_zero_tuple_size_rejected(self):
        with pytest.raises(ValueError):
            load_counts([], per_iteration_events=0)

    def test_balance_with_tolerance_one(self):
        assert is_load_balanced({0: 2, 1: 1}, tolerance=1)
        assert not is_load_balanced({0: 4, 1: 1}, tolerance=1)

    def test_imbalance_magnitude(self):
        assert max_load_imbalance({0: 4, 1: 1, 2: 1}) == 3
        assert max_load_imbalance({}) == 0


# ----------------------------------------------------------------------
# Property-based invariants on schedules
# ----------------------------------------------------------------------

schedules = st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=40)


@given(schedules)
def test_serialization_order_iff_not_interleaved(schedule):
    """A multi-thread log has a serialization order exactly when it is
    not interleaved."""
    events = make_events(schedule)
    order = serialization_order(events)
    if len(distinct_thread_ids(events)) >= 2:
        assert bool(order) == (not is_interleaved(events))
    if order:
        # The order must list every event-producing thread exactly once.
        assert sorted(order) == sorted(distinct_thread_ids(events))


@given(schedules)
def test_block_sorted_schedule_never_interleaves(schedule):
    """Sorting a schedule into contiguous per-thread blocks serializes it."""
    events = make_events(sorted(schedule))
    assert not is_interleaved(events)


@given(schedules)
def test_spans_cover_all_events(schedule):
    events = make_events(schedule)
    spans = thread_spans(events)
    for event in events:
        first, last = spans[event.thread_id]
        assert first <= event.seq <= last


@given(schedules)
def test_load_counts_total_matches_event_count(schedule):
    events = make_events(schedule)
    counts = load_counts(events, per_iteration_events=1)
    assert sum(counts.values()) == len(events)
