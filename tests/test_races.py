"""Lockset/happens-before race analysis and the three-way verdict.

The calibration bar is the acceptance criterion for the race subsystem:
``synclab.lost_update`` (unguarded counter) must produce racing pairs,
``synclab.guarded`` (same program under a lock) must be clean — and the
verdict threaded through the supervisor must distinguish *wrong*
(a failing schedule exists), *racy-lucky* (every explored schedule
passed but a race is present), and *correct*.
"""

from __future__ import annotations

import json

import pytest

from repro.core.credit import race_partial_credit
from repro.execution.exploration import ScheduleExplorer
from repro.execution.races import RaceReport, analyze_trace, merge_reports
from repro.execution.runner import ProgramRunner, in_process_session_lock
from repro.execution.scheduling import RandomWalkStrategy, ScheduledBackend
from repro.execution.supervisor import GradingSupervisor
from repro.execution.taxonomy import ConcurrencyVerdict, concurrency_verdict
from repro.grading.export import gradebook_csv
from repro.grading.html_report import gradebook_html
from repro.grading.records import SubmissionRecord
from repro.graders.suites import build_synclab_suite
from repro.graders.synclab import SyncLabCounterFunctionality
from repro.simulation.backend import use_backend

import repro.workloads  # noqa: F401 - registers the tested programs

LOST = "synclab.lost_update"
GUARDED = "synclab.guarded"


def controlled_trace(identifier, seed):
    backend = ScheduledBackend(RandomWalkStrategy(seed))
    with in_process_session_lock():
        with use_backend(backend):
            ProgramRunner(timeout=30.0).run(identifier, [])
    return backend.schedule_trace(identifier)


def lost_factory():
    return lambda: SyncLabCounterFunctionality(LOST, workers=2, rounds=1)


def guarded_factory():
    return lambda: SyncLabCounterFunctionality(GUARDED, workers=2, rounds=1)


# ----------------------------------------------------------------------
# analyze_trace calibration
# ----------------------------------------------------------------------
class TestAnalyzeTrace:
    def test_lost_update_has_racing_pairs(self):
        report = analyze_trace(controlled_trace(LOST, 0))
        assert report.has_races
        assert report.race_count == len(report.pairs) or report.truncated
        for pair in report.pairs:
            # A race needs two different workers with disjoint locksets;
            # the lost update holds no lock at all.
            assert pair.first.worker != pair.second.worker
            assert not (pair.first.lockset & pair.second.lockset)
        assert any("unlocked" in label for label in report.pair_labels())
        assert report.unguarded, "no unguarded access segments reported"

    @pytest.mark.parametrize("seed", range(4))
    def test_guarded_is_clean_across_seeds(self, seed):
        report = analyze_trace(controlled_trace(GUARDED, seed))
        assert not report.has_races
        assert report.pairs == []
        # The lock itself was exercised: contention is recorded even
        # when no race exists.
        assert any(c.acquisitions > 0 for c in report.contention)

    def test_report_serialization_round_trip(self):
        report = analyze_trace(controlled_trace(LOST, 0))
        clone = RaceReport.from_dict(json.loads(report.to_json()))
        assert clone.to_dict() == report.to_dict()
        assert clone.pair_labels() == report.pair_labels()

    def test_merge_dedups_by_signature(self):
        report = analyze_trace(controlled_trace(LOST, 0))
        merged = merge_reports([report, report])
        # Merging keys on the schedule-independent signature: the same
        # source-level race seen at different steps (or in a second
        # schedule) must not double-count.
        assert merged.race_count == len({p.signature() for p in report.pairs})
        assert merged.schedules_analyzed == 2

    def test_merge_of_nothing_is_clean(self):
        merged = merge_reports([])
        assert not merged.has_races
        assert "no races" in merged.summary()


# ----------------------------------------------------------------------
# The verdict fold and race-aware credit
# ----------------------------------------------------------------------
class TestVerdictAndCredit:
    def test_concurrency_verdict_fold(self):
        assert concurrency_verdict(passed=True, races=False) is ConcurrencyVerdict.CORRECT
        assert concurrency_verdict(passed=True, races=True) is ConcurrencyVerdict.RACY_LUCKY
        assert concurrency_verdict(passed=False, races=True) is ConcurrencyVerdict.WRONG
        assert concurrency_verdict(passed=False, races=False) is ConcurrencyVerdict.WRONG

    def test_racy_lucky_score_is_capped(self):
        score, note = race_partial_credit(
            10.0, 10.0, verdict="racy-lucky", race_count=4
        )
        assert score == 7.0
        assert "capped" in note and "70%" in note

    def test_race_only_wrong_answer_is_floored(self):
        score, note = race_partial_credit(
            0.0, 10.0, verdict="wrong", race_count=8, best_passing_score=10.0
        )
        assert score == 7.0
        assert "race-only bug" in note

    def test_correct_submission_is_untouched(self):
        score, note = race_partial_credit(10.0, 10.0, verdict="correct")
        assert score == 10.0 and note == ""

    def test_wrong_without_passing_attempt_keeps_its_score(self):
        # No schedule ever passed: there is no evidence the algorithm is
        # right, so no floor applies.
        score, note = race_partial_credit(
            2.0, 10.0, verdict="wrong", race_count=3
        )
        assert score == 2.0 and note == ""


# ----------------------------------------------------------------------
# Explorer integration (the --races path)
# ----------------------------------------------------------------------
class TestExplorerRaces:
    def test_lost_update_campaign_collects_race_evidence(self):
        report = ScheduleExplorer(
            lost_factory(), schedules=6, first_seed=0, races=True
        ).run()
        assert report.bug_found
        assert report.race_report is not None
        assert report.race_report.has_races
        assert report.concurrency_verdict is ConcurrencyVerdict.WRONG
        assert "racing pair" in report.summary()

    def test_guarded_campaign_is_exonerated_and_clean(self):
        report = ScheduleExplorer(
            guarded_factory(), schedules=4, first_seed=0, races=True
        ).run()
        assert not report.bug_found
        assert report.race_report is not None
        assert not report.race_report.has_races
        assert report.concurrency_verdict is ConcurrencyVerdict.CORRECT
        assert "no races" in report.summary()

    def test_without_races_flag_no_report_is_built(self):
        report = ScheduleExplorer(
            guarded_factory(), schedules=2, first_seed=0
        ).run()
        assert report.race_report is None
        assert report.concurrency_verdict is None


# ----------------------------------------------------------------------
# Supervisor: the verdict threaded through grading
# ----------------------------------------------------------------------
class TestSupervisorRaceVerdicts:
    @pytest.fixture(scope="class")
    def report(self):
        supervisor = GradingSupervisor(
            build_synclab_suite,
            explore_schedules=6,
            race_detect=True,
            race_credit=True,
        )
        return supervisor.grade({"alice": LOST, "bob": GUARDED})

    def test_failing_schedule_grades_wrong_with_race_evidence(self, report):
        alice = report.gradebook.latest("alice")
        assert alice.concurrency_verdict == "wrong"
        assert alice.race_count > 0
        assert alice.race_pairs
        assert alice.racy

    def test_race_only_bug_gets_partial_credit(self, report):
        alice = report.gradebook.latest("alice")
        assert alice.score == pytest.approx(0.7 * alice.max_score)
        assert "race-only bug" in alice.race_note

    def test_guarded_is_correct_and_not_flaky(self, report):
        bob = report.gradebook.latest("bob")
        assert bob.concurrency_verdict == "correct"
        assert bob.race_count == 0
        assert bob.score == bob.max_score
        # The race sweep reruns a passing submission under controlled
        # schedules; the @s<seed> attempt labels must not read as
        # rerun-vote disagreement.
        assert not bob.flaky

    def test_guarded_record_carries_lock_contention(self, report):
        # The guarded submission actually takes its lock, so its record
        # surfaces the per-lock traffic the analysis counted.
        bob = report.gradebook.latest("bob")
        assert bob.race_contention
        stat = bob.race_contention[0]
        assert stat["acquisitions"] > 0
        assert set(stat) >= {"lock", "acquisitions", "blocks", "try_failures"}

    def test_race_fields_survive_a_dict_round_trip(self, report):
        alice = report.gradebook.latest("alice")
        clone = SubmissionRecord.from_dict(alice.to_dict())
        assert clone.concurrency_verdict == alice.concurrency_verdict
        assert clone.race_count == alice.race_count
        assert clone.race_pairs == alice.race_pairs
        assert clone.race_note == alice.race_note

    def test_report_surfaces_name_the_racing_pair(self, report):
        alice = report.gradebook.latest("alice")
        pair = alice.race_pairs[0]
        assert pair in report.summary()
        assert pair in report.gradebook.render()
        html = gradebook_html(report.gradebook)
        assert "<th>races</th>" in html
        assert pair.replace("×", "&#215;") in html or pair in html
        csv_text = gradebook_csv(report.gradebook)
        alice_row = next(
            r for r in csv_text.splitlines() if r.startswith("alice,")
        )
        assert "wrong" in alice_row

    def test_race_credit_implies_race_detect(self):
        supervisor = GradingSupervisor(build_synclab_suite, race_credit=True)
        assert supervisor.race_detect

    def test_racy_lucky_when_every_schedule_passes(self):
        # One explored schedule, seed 0: the lost update passes it, but
        # the race analysis still sees the unguarded counter.
        supervisor = GradingSupervisor(
            build_synclab_suite,
            explore_schedules=1,
            explore_seed=0,
            race_detect=True,
            race_credit=True,
        )
        batch = supervisor.grade({"carol": LOST})
        carol = batch.gradebook.latest("carol")
        assert carol.concurrency_verdict == "racy-lucky"
        assert carol.racy_lucky
        assert carol.race_count > 0
        assert carol.score == pytest.approx(0.7 * carol.max_score)
        assert "capped" in carol.race_note
        assert "racy-lucky" in batch.summary()
        assert "[racy-lucky" in batch.gradebook.render()
