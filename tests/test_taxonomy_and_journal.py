"""Unit tests of the failure taxonomy, journal, and record threading."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.execution.taxonomy import (
    RETRYABLE_KINDS,
    FailureKind,
    classify_returncode,
    detect_garbled_lines,
)
from repro.grading.gradebook import Gradebook
from repro.grading.journal import (
    GradingJournal,
    JournalEntry,
    JournalError,
    JournalWarning,
)
from repro.obs import ObsRegistry, use_registry
from repro.grading.records import SubmissionRecord, TestRecord
from repro.testfw.result import SuiteResult, TestResult


class TestClassifyReturncode:
    def test_clean_exit_is_ok(self):
        assert classify_returncode(0) is FailureKind.OK

    def test_negative_returncode_is_signal_not_timeout(self):
        # SIGSEGV -> -11; the old code conflated this with timeouts.
        assert classify_returncode(-11) is FailureKind.SIGNAL
        assert classify_returncode(-9) is FailureKind.SIGNAL
        # SIGHUP -> -1, the exact value the old code reserved for timeout.
        assert classify_returncode(-1) is FailureKind.SIGNAL

    def test_timeout_takes_precedence_over_kill_signal(self):
        # A child killed for exceeding its deadline dies by signal too;
        # the cause is the timeout.
        assert classify_returncode(-9, timed_out=True) is FailureKind.TIMEOUT

    def test_program_error_exit_is_crash(self):
        assert classify_returncode(70) is FailureKind.CRASH

    def test_unknown_main_exit_is_infra(self):
        assert classify_returncode(71) is FailureKind.INFRA_ERROR

    def test_other_nonzero_is_crash(self):
        assert classify_returncode(1) is FailureKind.CRASH

    def test_retryable_kinds_exclude_only_infra_errors(self):
        # Any schedule-dependent shape is worth a rerun; a broken
        # harness is not.
        assert FailureKind.TIMEOUT in RETRYABLE_KINDS
        assert FailureKind.SIGNAL in RETRYABLE_KINDS
        assert FailureKind.CRASH in RETRYABLE_KINDS
        assert FailureKind.GARBLED_TRACE in RETRYABLE_KINDS
        assert FailureKind.INFRA_ERROR not in RETRYABLE_KINDS
        assert FailureKind.OK not in RETRYABLE_KINDS


class TestDetectGarbledLines:
    def test_clean_trace_has_none(self):
        assert detect_garbled_lines("Thread 1->Index:0\nThread 1->Total:3\n") == []

    def test_plain_prose_is_not_garbled(self):
        assert detect_garbled_lines("Hello Concurrent World\n") == []

    def test_property_shaped_but_unparseable(self):
        garbled = detect_garbled_lines("Thread 1->NoColon\nThread x->A:1\n")
        assert garbled == ["Thread 1->NoColon", "Thread x->A:1"]

    def test_truncated_final_line(self):
        garbled = detect_garbled_lines("Thread 1->Index:0\nThread 1->Ind")
        assert garbled == ["Thread 1->Ind"]

    def test_empty_output(self):
        assert detect_garbled_lines("") == []


def record_with_kind(student: str, kind: str, **extra) -> SubmissionRecord:
    result = SuiteResult("primes", [TestResult("F", 10.0, 40.0)])
    return SubmissionRecord.from_suite_result(
        student, result, timestamp=1.0, failure_kind=kind, **extra
    )


class TestRecordThreading:
    def test_taxonomy_fields_round_trip(self):
        record = record_with_kind(
            "alice",
            "flaky-pass",
            attempts=3,
            attempt_outcomes=["crash", "timeout", "pass"],
        )
        clone = SubmissionRecord.from_dict(record.to_dict())
        assert clone.failure_kind == "flaky-pass"
        assert clone.attempts == 3
        assert clone.attempt_outcomes == ["crash", "timeout", "pass"]
        assert clone.flaky

    def test_legacy_dicts_still_load(self):
        # Records written before the taxonomy existed must load as ok.
        legacy = record_with_kind("bob", "ok").to_dict()
        for key in ("failure_kind", "attempts", "attempt_outcomes"):
            legacy.pop(key)
        clone = SubmissionRecord.from_dict(legacy)
        assert clone.failure_kind == "ok"
        assert clone.attempts == 1
        assert not clone.flaky

    def test_flaky_from_disagreeing_attempts(self):
        record = record_with_kind(
            "carl", "ok", attempts=2, attempt_outcomes=["fail(60%)", "fail(80%)"]
        )
        assert record.flaky
        steady = record_with_kind(
            "dana", "ok", attempts=2, attempt_outcomes=["fail(80%)", "fail(80%)"]
        )
        assert not steady.flaky

    def test_test_record_carries_failure_kind(self):
        result = TestResult("F", 0.0, 40.0, fatal="boom", failure_kind="signal")
        record = TestRecord.from_result(result)
        assert record.failure_kind == "signal"
        assert TestRecord.from_dict(record.to_dict()).failure_kind == "signal"


class TestGradebookTaxonomy:
    def build(self) -> Gradebook:
        book = Gradebook("primes")
        book.record(record_with_kind("alice", "ok"))
        book.record(record_with_kind("bob", "timeout"))
        book.record(
            record_with_kind(
                "carl", "flaky-pass", attempts=2, attempt_outcomes=["crash", "pass"]
            )
        )
        return book

    def test_failure_kinds_per_student(self):
        assert self.build().failure_kinds() == {
            "alice": "ok",
            "bob": "timeout",
            "carl": "flaky-pass",
        }

    def test_flaky_and_failed_queries(self):
        book = self.build()
        assert book.flaky_students() == ["carl"]
        assert book.failed_students() == ["bob"]

    def test_render_annotates_failures_only(self):
        text = self.build().render()
        assert "[timeout]" in text
        assert "[flaky-pass]" in text
        assert "[ok]" not in text

    def test_save_load_keeps_kinds(self, tmp_path):
        path = tmp_path / "book.json"
        self.build().save(path)
        assert Gradebook.load(path).failure_kinds()["bob"] == "timeout"


class TestJournal:
    def entry(self, student: str) -> JournalEntry:
        return JournalEntry(
            student=student,
            identifier=f"{student}.py",
            record=record_with_kind(student, "ok"),
        )

    def test_append_and_reload(self, tmp_path):
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        journal.append(self.entry("bob"))
        reloaded = GradingJournal(journal.path)
        assert reloaded.completed_students() == ["alice", "bob"]
        assert len(reloaded) == 2
        assert reloaded.suite_name() == "primes"
        assert reloaded.completed()["alice"].identifier == "alice.py"

    def test_missing_file_is_empty(self, tmp_path):
        journal = GradingJournal(tmp_path / "absent.jsonl")
        assert journal.entries() == []
        assert journal.suite_name() is None

    def test_torn_tail_dropped_with_warning(self, tmp_path):
        # An interrupted append leaves a torn final line; the student it
        # covered is simply regraded on resume — with a warning, so the
        # operator can see one submission will be recomputed.
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        with journal.path.open("a") as handle:
            handle.write('{"student": "bob", "rec')  # torn mid-write
        with pytest.warns(JournalWarning, match="regraded on resume"):
            assert GradingJournal(journal.path).completed_students() == ["alice"]

    def test_torn_tail_drop_is_counted(self, tmp_path):
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        with journal.path.open("a") as handle:
            handle.write("garbage{")
        registry = ObsRegistry(enabled=True)
        with use_registry(registry):
            with pytest.warns(JournalWarning):
                GradingJournal(journal.path).entries()
        assert registry.counter("journal.torn_tail_dropped").value == 1

    def test_append_after_torn_tail_heals_the_file(self, tmp_path):
        # Appending past a torn tail must truncate it first — otherwise
        # the new record is glued onto the half line and the journal is
        # corrupt mid-file (unrecoverable) instead of torn at the tail
        # (recoverable).
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        with journal.path.open("a") as handle:
            handle.write('{"student": "bob", "rec')
        with pytest.warns(JournalWarning, match="truncating"):
            journal.append(self.entry("carol"))
        # No warning on the re-read: the file is whole again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reloaded = GradingJournal(journal.path).completed_students()
        assert reloaded == ["alice", "carol"]

    def test_repair_restores_a_lost_newline_without_losing_the_record(
        self, tmp_path
    ):
        # The append can also be cut between the JSON and its newline;
        # the record itself is whole and must survive the repair.
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        whole = json.dumps(self.entry("bob").to_dict(), separators=(",", ":"))
        with journal.path.open("a") as handle:
            handle.write(whole)  # no trailing newline
        assert journal.repair() is True
        journal.append(self.entry("carol"))
        assert GradingJournal(journal.path).completed_students() == [
            "alice",
            "bob",
            "carol",
        ]

    def test_repair_leaves_a_whole_journal_alone(self, tmp_path):
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        before = journal.path.read_bytes()
        assert journal.repair() is False
        assert journal.path.read_bytes() == before

    def test_corrupt_middle_line_raises(self, tmp_path):
        # Damage anywhere else would silently lose a grade: refuse.
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        journal.append(self.entry("bob"))
        lines = journal.path.read_text().splitlines()
        lines[0] = "not json at all"
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 1"):
            GradingJournal(journal.path).entries()

    def test_latest_entry_per_student_wins(self, tmp_path):
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        better = self.entry("alice")
        better.record.failure_kind = "flaky-pass"
        journal.append(better)
        assert journal.completed()["alice"].record.failure_kind == "flaky-pass"

    def test_lines_are_plain_json(self, tmp_path):
        journal = GradingJournal(tmp_path / "j.jsonl")
        journal.append(self.entry("alice"))
        payload = json.loads(journal.path.read_text().splitlines()[0])
        assert payload["student"] == "alice"
        assert payload["record"]["suite"] == "primes"
