"""Tests of the command-line instructor agent."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        args = parser.parse_args(["run", "primes", "--submission", "primes.correct"])
        assert args.suite == "primes" and args.submission == "primes.correct"
        args = parser.parse_args(["fuzz", "primes.racy", "--schedules", "7"])
        assert args.schedules == 7


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        assert "primes" in capsys.readouterr().out

    def test_run_hello_exits_zero_on_full_score(self, capsys):
        assert main(["run", "hello"]) == 0
        out = capsys.readouterr().out
        assert "HelloFunctionality" in out
        assert "100%" in out

    def test_run_failing_submission_exits_nonzero(self, capsys):
        code = main(["run", "hello", "--submission", "hello.no_fork"])
        assert code == 1
        assert "must fork" in capsys.readouterr().out

    def test_run_with_trace_prints_phases(self, capsys, round_robin_backend):
        main(["run", "primes", "--submission", "primes.correct", "--trace"])
        out = capsys.readouterr().out
        assert "// pre-fork phase" in out

    def test_unknown_suite_rejected(self):
        # argparse rejects the bad suite name before any suite is built
        with pytest.raises(SystemExit):
            main(["run", "nachos"])

    def test_grade_writes_gradebook(self, tmp_path, capsys, round_robin_backend):
        out_path = tmp_path / "book.json"
        code = main(
            [
                "grade",
                "hello",
                "--submissions",
                "hello.correct,hello.no_fork",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "hello.correct" in out and "hello.no_fork" in out

    def test_fuzz_detects_racy_submission(self, capsys):
        code = main(["fuzz", "primes.racy", "--schedules", "4"])
        assert code == 1
        assert "schedules failed" in capsys.readouterr().out

    def test_fuzz_passes_correct_submission(self, capsys):
        code = main(["fuzz", "primes.correct", "--schedules", "3"])
        assert code == 0

    def test_fuzz_other_problems(self, capsys):
        assert main(["fuzz", "odds.racy", "--problem", "odds", "--schedules", "4"]) == 1
