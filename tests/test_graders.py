"""Integration tests: the real graders against every submission variant.

These pin the scores and diagnoses the infrastructure assigns to each
submission class — the observable behaviour the paper's figures document.
Deterministic simulation backends remove schedule luck.
"""

from __future__ import annotations

import pytest

from repro.core.outcome import Aspect
from repro.graders import (
    HelloFunctionality,
    OddsFunctionality,
    PiFunctionality,
    PrimesFunctionality,
    SimulatedOddsPerformance,
    SimulatedPiPerformance,
    SimulatedPrimesPerformance,
    build_hello_suite,
    build_odds_suite,
    build_pi_suite,
    build_primes_suite,
)
from repro.testfw.result import AspectStatus


class TestPrimesFunctionalityScores:
    """The paper's reference scores (Figs. 9-11 / Fig. 5)."""

    def test_correct_is_100_percent(self, round_robin_backend):
        result = PrimesFunctionality("primes.correct").run()
        assert result.percent == pytest.approx(100.0)
        assert result.score == pytest.approx(40.0)

    def test_serialized_is_80_percent(self, serialized_backend):
        result = PrimesFunctionality("primes.serialized").run()
        assert result.percent == pytest.approx(80.0)
        assert result.score == pytest.approx(32.0)  # Fig. 5's 32/40
        failed = {o.aspect for o in result.failed_aspects()}
        assert failed == {Aspect.INTERLEAVING, Aspect.LOAD_BALANCE}

    def test_syntax_error_is_10_percent(self, round_robin_backend):
        result = PrimesFunctionality("primes.syntax_error").run()
        assert result.percent == pytest.approx(10.0)
        statuses = {o.aspect: o.status for o in result.outcomes}
        assert statuses[Aspect.PRE_FORK_SYNTAX] is AspectStatus.FAILED
        assert statuses[Aspect.FORK_SYNTAX] is AspectStatus.FAILED
        assert statuses[Aspect.POST_JOIN_SYNTAX] is AspectStatus.PASSED
        for aspect in (Aspect.ITERATION_SEMANTICS, Aspect.THREAD_COUNT):
            assert statuses[aspect] is AspectStatus.SKIPPED

    def test_imbalanced_fails_only_balance(self, round_robin_backend):
        result = PrimesFunctionality("primes.imbalanced").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert failed == {Aspect.LOAD_BALANCE}

    def test_wrong_semantics_fails_serial_intermediate(self, round_robin_backend):
        result = PrimesFunctionality("primes.wrong_semantics").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert Aspect.ITERATION_SEMANTICS in failed
        assert Aspect.FORK_SYNTAX not in failed

    def test_wrong_total_fails_post_join_semantics(self, round_robin_backend):
        result = PrimesFunctionality("primes.wrong_total").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert failed == {Aspect.POST_JOIN_SEMANTICS}
        [message] = [o.message for o in result.failed_aspects()]
        assert "sum of primes found by each thread" in message

    def test_racy_caught_under_round_robin(self, round_robin_backend):
        result = PrimesFunctionality("primes.racy").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert Aspect.POST_JOIN_SEMANTICS in failed

    def test_error_messages_match_paper_wording(self, serialized_backend):
        result = PrimesFunctionality("primes.serialized").run()
        messages = "\n".join(o.message for o in result.failed_aspects())
        assert "serialized in the order" in messages
        assert "load is imbalanced" in messages


class TestPiFunctionality:
    @pytest.mark.parametrize(
        "identifier,failing",
        [
            ("pi.correct", set()),
            ("pi.serialized", {Aspect.INTERLEAVING}),
            ("pi.wrong_semantics", {Aspect.ITERATION_SEMANTICS}),
            ("pi.wrong_final", {Aspect.POST_JOIN_SEMANTICS}),
        ],
    )
    def test_failure_sets(self, round_robin_backend, identifier, failing):
        if identifier == "pi.serialized":
            pytest.skip("needs the serialized backend fixture")
        result = PiFunctionality(identifier).run()
        assert {o.aspect for o in result.failed_aspects()} == failing

    def test_serialized_under_serialized_backend(self, serialized_backend):
        result = PiFunctionality("pi.serialized").run()
        assert {o.aspect for o in result.failed_aspects()} == {Aspect.INTERLEAVING}

    def test_syntax_error_gates(self, round_robin_backend):
        result = PiFunctionality("pi.syntax_error").run()
        statuses = {o.aspect: o.status for o in result.outcomes}
        assert statuses[Aspect.PRE_FORK_SYNTAX] is AspectStatus.FAILED
        assert statuses[Aspect.ITERATION_SEMANTICS] is AspectStatus.SKIPPED

    def test_no_fork_scores_low(self, round_robin_backend):
        result = PiFunctionality("pi.no_fork").run()
        assert result.percent < 30.0


class TestOddsFunctionality:
    def test_correct_full_score(self, round_robin_backend):
        result = OddsFunctionality("odds.correct").run()
        assert result.percent == pytest.approx(100.0)

    def test_workshop_configuration_is_27_iterations(self):
        checker = OddsFunctionality()
        assert checker.total_iterations() == 27
        assert checker.num_expected_forked_threads() == 4

    @pytest.mark.parametrize(
        "identifier,expected_failed",
        [
            ("odds.wrong_semantics", Aspect.ITERATION_SEMANTICS),
            ("odds.wrong_total", Aspect.POST_JOIN_SEMANTICS),
        ],
    )
    def test_bug_diagnoses(self, round_robin_backend, identifier, expected_failed):
        result = OddsFunctionality(identifier).run()
        assert expected_failed in {o.aspect for o in result.failed_aspects()}

    def test_syntax_error_is_10_percent(self, round_robin_backend):
        result = OddsFunctionality("odds.syntax_error").run()
        assert result.percent == pytest.approx(10.0)


class TestHelloFunctionality:
    def test_correct_full(self):
        assert HelloFunctionality("hello.correct").run().percent == 100.0

    def test_no_fork_zero_with_pinpointed_message(self):
        result = HelloFunctionality("hello.no_fork").run()
        assert result.score == 0.0
        [outcome] = result.outcomes
        assert "must fork" in outcome.message

    def test_wrong_count_earns_consolation_20_percent(self):
        result = HelloFunctionality("hello.wrong_count", num_threads=4).run()
        assert result.percent == pytest.approx(20.0)

    def test_three_parameter_methods_suffice(self):
        """The Fig. 12 point: a concurrency-only test needs just the
        program name, its args, and the thread count."""
        checker = HelloFunctionality()
        assert checker.pre_fork_property_names_and_types() == ()
        assert checker.iteration_property_names_and_types() == ()
        assert checker.post_join_property_names_and_types() == ()


class TestSimulatedPerformance:
    def test_primes_speedup_passes(self):
        checker = SimulatedPrimesPerformance(runs=2)
        result = checker.run()
        assert result.passed
        assert checker.last_speedup > 3.0  # near-linear on 4 virtual threads

    def test_pi_speedup_passes(self):
        checker = SimulatedPiPerformance(runs=2)
        assert checker.run().passed

    def test_odds_speedup_passes(self):
        checker = SimulatedOddsPerformance(runs=2)
        assert checker.run().passed

    def test_speedup_deterministic_across_reruns(self):
        first = SimulatedPrimesPerformance(runs=2)
        second = SimulatedPrimesPerformance(runs=2)
        first.run()
        second.run()
        assert first.last_speedup == pytest.approx(second.last_speedup)


class TestSuites:
    def test_primes_suite_composition(self):
        suite = build_primes_suite()
        assert suite.name == "primes"
        assert len(suite) == 2
        names = [t.name for t in suite.tests]
        assert "PrimesFunctionality" in names

    def test_suite_runs_clean_against_correct(self, round_robin_backend):
        suite = build_primes_suite(perf_runs=2)
        result = suite.run()
        assert result.percent == pytest.approx(100.0)

    def test_suite_against_buggy_submission(self, serialized_backend):
        suite = build_primes_suite("primes.serialized", perf_runs=2)
        result = suite.run()
        functionality = result.result_for("PrimesFunctionality")
        assert functionality.score == pytest.approx(32.0)

    def test_other_suites_build(self):
        assert len(build_pi_suite()) == 2
        assert len(build_odds_suite()) == 2
        assert len(build_hello_suite()) == 1
