"""Tests of supervised batch grading: pool, watchdog, retries, resume.

The fault-injection programs of :mod:`repro.execution.faults` drive the
supervisor end to end: every failure-taxonomy kind is produced by a
real misbehaving child and must come out distinctly classified, hung
children must be hard-killed, wedged workers abandoned, and an
interrupted batch must resume from its journal to the exact gradebook
an uninterrupted run produces.
"""

from __future__ import annotations

import time
from typing import List

import pytest

from repro.core.checker import AbstractForkJoinChecker
from repro.execution.subprocess_runner import SubprocessRunner, active_child_count
from repro.execution.supervisor import GradingSupervisor, suite_failure_kind
from repro.execution.taxonomy import FailureKind
from repro.grading.journal import GradingJournal
from repro.graders import PrimesFunctionality
from repro.obs import ObsRegistry, use_registry
from repro.testfw.annotations import max_value
from repro.testfw.case import FunctionTestCase, ScoredTestCase
from repro.testfw.result import SuiteResult, TestResult
from repro.testfw.suite import TestSuite


@max_value(10)
class FaultChecker(AbstractForkJoinChecker):
    """Minimal subprocess checker for the fault-injection programs."""

    def __init__(self, identifier, fault_args=(), *, timeout=20.0):
        self._identifier = identifier
        self._args = [str(a) for a in fault_args]
        self._timeout = timeout

    def main_class_identifier(self):
        return self._identifier

    def args(self):
        return list(self._args)

    def pre_fork_property_names_and_types(self):
        return (("Fault", str),)

    def make_runner(self):
        return SubprocessRunner(timeout=self._timeout)


class SubprocessPrimes(PrimesFunctionality):
    def make_runner(self):
        return SubprocessRunner(timeout=60.0)


def primes_factory(identifier):
    return TestSuite("primes", [SubprocessPrimes(identifier)])


#: Three variants with three distinct, deterministic grades.
VARIANTS = {
    "alice": "primes.correct",
    "bob": "primes.serialized",
    "carl": "primes.no_fork",
}


def normalized(book):
    """Gradebook contents with timing fields zeroed, for equality checks."""
    snapshot = {}
    for student in book.students():
        data = book.latest(student).to_dict()
        data["timestamp"] = 0.0
        data["elapsed"] = 0.0
        snapshot[student] = data
    return snapshot


class FixedCase(ScoredTestCase):
    """A test case that returns a pre-built result, verbatim."""

    def __init__(self, result: TestResult) -> None:
        self._result = result

    @property
    def name(self):
        return self._result.test_name

    @property
    def max_score(self):
        return self._result.max_score

    def run(self):
        return self._result


def scripted_factory(results: List[TestResult]):
    """Suite factory replaying *results* one per attempt (last repeats).

    The supervisor builds a fresh suite per attempt, so the script lives
    in the closure, not in the test case.
    """
    remaining = list(results)

    def factory(identifier):
        result = remaining.pop(0) if len(remaining) > 1 else remaining[0]
        return TestSuite("s", [FixedCase(result)])

    return factory


def scripted(score: float, kind: str = "ok", fatal: str = "") -> TestResult:
    return TestResult("T", score, 10.0, fatal=fatal, failure_kind=kind)


class TestSuiteFailureKind:
    def test_clean_partial_credit_is_ok(self):
        result = SuiteResult("s", [scripted(4.0)])
        assert suite_failure_kind(result) is FailureKind.OK

    def test_precedence_picks_most_alarming(self):
        result = SuiteResult(
            "s",
            [
                scripted(0.0, "garbled-trace"),
                scripted(0.0, "timeout", fatal="hung"),
                scripted(0.0, "crash", fatal="boom"),
            ],
        )
        assert suite_failure_kind(result) is FailureKind.TIMEOUT

    def test_fatal_without_kind_is_infra(self):
        result = SuiteResult("s", [TestResult("T", 0.0, 10.0, fatal="harness bug")])
        assert suite_failure_kind(result) is FailureKind.INFRA_ERROR


class TestTaxonomyEndToEnd:
    """Acceptance: every taxonomy outcome, distinctly, in one batch."""

    def test_every_failure_kind_distinct_in_one_batch(self):
        def factory(identifier):
            timeout = 3.0 if identifier == "faults.hang" else 20.0
            return TestSuite("faults", [FaultChecker(identifier, timeout=timeout)])

        submissions = {
            "healthy": "faults.ok",
            "crasher": "faults.crash",
            "segfaulter": "faults.signal",
            "garbler": "faults.garble",
            "truncator": "faults.truncate",
            "hanger": "faults.hang",
            "ghost": "no.such.program",
        }
        report = GradingSupervisor(factory, jobs=4).grade(submissions)
        assert report.gradebook.failure_kinds() == {
            "healthy": "ok",
            "crasher": "crash",
            "segfaulter": "signal",
            "garbler": "garbled-trace",
            "truncator": "garbled-trace",
            "hanger": "timeout",
            "ghost": "infra-error",
        }
        text = report.gradebook.render()
        for kind in ("crash", "signal", "garbled-trace", "timeout", "infra-error"):
            assert f"[{kind}]" in text
        assert "time limit" in report.outcomes["hanger"].record.tests[0].fatal
        assert report.gradebook.failed_students() == sorted(
            ["crasher", "segfaulter", "garbler", "truncator", "hanger", "ghost"]
        )
        assert active_child_count() == 0

    def test_summary_counts_kinds(self):
        def factory(identifier):
            return TestSuite("faults", [FaultChecker(identifier)])

        report = GradingSupervisor(factory).grade(
            {"a": "faults.ok", "b": "faults.crash"}
        )
        summary = report.summary()
        assert "graded 2 submission(s)" in summary
        assert "crash=1" in summary
        assert "ok=1" in summary


class TestDeterministicMerge:
    def test_parallel_batch_matches_serial(self):
        serial = GradingSupervisor(primes_factory).grade(VARIANTS)
        parallel = GradingSupervisor(primes_factory, jobs=3).grade(VARIANTS)
        assert normalized(parallel.gradebook) == normalized(serial.gradebook)
        assert list(parallel.outcomes) == list(VARIANTS)
        percentages = parallel.gradebook.class_percentages()
        assert percentages["alice"] == pytest.approx(100.0)
        assert percentages["carl"] < percentages["bob"] < 100.0

    def test_merge_order_is_submissions_order_not_completion_order(self):
        def factory(identifier):
            delay = 0.3 if identifier == "slow" else 0.0

            def body():
                time.sleep(delay)

            return TestSuite("s", [FunctionTestCase(body, name="T", max_score=5)])

        submissions = {"tortoise": "slow", "hare1": "fast", "hare2": "fast"}
        report = GradingSupervisor(factory, jobs=3).grade(submissions)
        # The slow submission finishes last but is merged first.
        assert list(report.outcomes) == ["tortoise", "hare1", "hare2"]
        assert list(report.live) == ["tortoise", "hare1", "hare2"]


class TestRerunVote:
    def test_fail_then_pass_is_flaky_pass(self):
        factory = scripted_factory([scripted(0.0), scripted(10.0)])
        report = GradingSupervisor(factory, retries=3, backoff=0.001).grade(
            {"bob": "x"}
        )
        outcome = report.outcomes["bob"]
        assert outcome.failure_kind is FailureKind.FLAKY_PASS
        assert outcome.attempt_outcomes == ["fail(0%)", "pass"]
        assert outcome.attempts == 2  # stops at the first pass
        assert outcome.record.flaky
        assert outcome.record.percent == pytest.approx(100.0)
        assert report.gradebook.flaky_students() == ["bob"]
        assert "rerun-vote disagreed" in report.summary()

    def test_crash_then_pass_is_flaky_pass(self):
        factory = scripted_factory(
            [scripted(0.0, "crash", fatal="boom"), scripted(10.0)]
        )
        report = GradingSupervisor(factory, retries=1, backoff=0.001).grade(
            {"bob": "x"}
        )
        outcome = report.outcomes["bob"]
        assert outcome.failure_kind is FailureKind.FLAKY_PASS
        assert outcome.attempt_outcomes == ["crash", "pass"]

    def test_steady_pass_needs_no_retry(self):
        factory = scripted_factory([scripted(10.0)])
        report = GradingSupervisor(factory, retries=3).grade({"ann": "x"})
        outcome = report.outcomes["ann"]
        assert outcome.attempts == 1
        assert outcome.attempt_outcomes == ["pass"]
        assert outcome.failure_kind is FailureKind.OK
        assert not outcome.record.flaky

    def test_never_passing_keeps_best_attempt(self):
        factory = scripted_factory([scripted(4.0), scripted(8.0), scripted(6.0)])
        report = GradingSupervisor(factory, retries=2, backoff=0.001).grade(
            {"cam": "x"}
        )
        outcome = report.outcomes["cam"]
        assert outcome.attempts == 3
        assert outcome.attempt_outcomes == ["fail(40%)", "fail(80%)", "fail(60%)"]
        assert outcome.record.score == pytest.approx(8.0)  # best, not last
        assert outcome.failure_kind is FailureKind.OK  # wrong, not broken
        assert outcome.record.flaky  # ...but schedule-dependent

    def test_deterministic_wrong_answer_is_not_flaky(self):
        factory = scripted_factory([scripted(7.0)])
        report = GradingSupervisor(factory, retries=2, backoff=0.001).grade(
            {"dee": "x"}
        )
        outcome = report.outcomes["dee"]
        assert outcome.attempts == 3
        assert outcome.attempt_outcomes == ["fail(70%)"] * 3
        assert not outcome.record.flaky

    def test_infra_error_is_not_retried(self):
        factory = scripted_factory(
            [scripted(0.0, "infra-error", fatal="harness broke")]
        )
        report = GradingSupervisor(factory, retries=5).grade({"eve": "x"})
        assert report.outcomes["eve"].attempts == 1
        assert report.outcomes["eve"].failure_kind is FailureKind.INFRA_ERROR

    def test_factory_exception_is_infra_error(self):
        def factory(identifier):
            raise OSError("disk gone")

        report = GradingSupervisor(factory, retries=2).grade({"flo": "x"})
        outcome = report.outcomes["flo"]
        assert outcome.failure_kind is FailureKind.INFRA_ERROR
        assert "disk gone" in outcome.record.tests[0].fatal

    def test_subprocess_crash_then_clean_rerun(self, tmp_path):
        # End to end through a real child: faults.flaky crashes once,
        # then runs clean; the rerun-vote history records both.
        counter = tmp_path / "counter"

        def factory(identifier):
            return TestSuite("faults", [FaultChecker(identifier, [counter])])

        report = GradingSupervisor(factory, retries=1, backoff=0.001).grade(
            {"zoe": "faults.flaky"}
        )
        outcome = report.outcomes["zoe"]
        assert outcome.attempts == 2
        assert outcome.attempt_outcomes[0] == "crash"
        assert outcome.attempt_outcomes[1].startswith(("pass", "fail"))
        assert outcome.record.flaky
        assert counter.read_text().splitlines() == ["fail"]


class TestScheduleExploration:
    def test_racy_failure_pinned_to_first_failing_seed(self):
        # Deterministic partial credit: the free-running attempt fails,
        # the first explored schedule fails identically, and that
        # schedule becomes the grade of record — no blind reruns.
        factory = scripted_factory([scripted(5.0)])
        report = GradingSupervisor(
            factory, retries=3, backoff=0.001, explore_schedules=3, explore_seed=5
        ).grade({"pat": "x"})
        outcome = report.outcomes["pat"]
        assert outcome.attempt_outcomes == ["fail(50%)", "fail(50%)@s5"]
        assert outcome.record.schedule_seed == 5
        assert outcome.record.racy and not outcome.record.flaky
        assert outcome.record.percent == pytest.approx(50.0)
        assert outcome.schedule_trace is not None
        assert report.gradebook.racy_students() == ["pat"]
        assert "@seed 5" in report.gradebook.render()
        assert "racy" in report.summary()

    def test_all_schedules_passing_exonerates_as_flaky_pass(self):
        factory = scripted_factory([scripted(0.0), scripted(10.0)])
        report = GradingSupervisor(
            factory, retries=1, backoff=0.001, explore_schedules=2
        ).grade({"quin": "x"})
        outcome = report.outcomes["quin"]
        assert outcome.failure_kind is FailureKind.FLAKY_PASS
        assert outcome.attempt_outcomes == ["fail(0%)", "pass@s0", "pass@s1"]
        assert outcome.record.schedule_seed is None
        assert outcome.record.flaky and not outcome.record.racy
        assert outcome.schedule_trace is None

    def test_exploration_off_by_default(self):
        factory = scripted_factory([scripted(5.0)])
        report = GradingSupervisor(factory, retries=1, backoff=0.001).grade(
            {"raj": "x"}
        )
        outcome = report.outcomes["raj"]
        assert all("@s" not in label for label in outcome.attempt_outcomes)
        assert outcome.record.schedule_seed is None

    def test_record_elapsed_is_monotonic_offset(self):
        factory = scripted_factory([scripted(10.0)])
        report = GradingSupervisor(factory).grade({"sam": "x"})
        record = report.outcomes["sam"].record
        # Wall timestamps can jump backwards; the monotonic offset cannot.
        assert record.elapsed >= 0.0
        assert record.timestamp > 1e9  # still a wall timestamp alongside

    def test_restaffed_worker_serials_never_collide(self):
        # Replacement workers used to be named from the millisecond
        # clock; two restaffs in the same millisecond collided.  The
        # serial counter continues where the initial pool stopped.
        supervisor = GradingSupervisor(primes_factory, jobs=3)
        serials = [next(supervisor._worker_serial) for _ in range(3)]
        assert serials == [3, 4, 5]


class TestJournalResume:
    def test_interrupted_batch_resumes_to_identical_gradebook(self, tmp_path):
        baseline = GradingSupervisor(primes_factory, jobs=2).grade(VARIANTS)

        # First run "dies" after grading two of the three submissions.
        journal = GradingJournal(tmp_path / "grading.jsonl")
        first_two = {s: i for s, i in list(VARIANTS.items())[:2]}
        GradingSupervisor(primes_factory, journal=journal).grade(first_two)
        assert journal.completed_students() == sorted(first_two)

        # Resume over the full batch: only the third is actually graded.
        calls: List[str] = []

        def counting_factory(identifier):
            calls.append(identifier)
            return primes_factory(identifier)

        resumed = GradingSupervisor(counting_factory, journal=journal).grade(VARIANTS)
        assert calls == ["primes.no_fork"]
        assert resumed.resumed == ["alice", "bob"]
        assert list(resumed.live) == ["carl"]  # only live-graded results
        assert resumed.outcomes["alice"].resumed
        assert not resumed.outcomes["carl"].resumed
        assert normalized(resumed.gradebook) == normalized(baseline.gradebook)
        assert resumed.gradebook.suite == baseline.gradebook.suite == "primes"

        # The journal is now complete: a third run grades nothing at all.
        again = GradingSupervisor(counting_factory, journal=journal).grade(VARIANTS)
        assert calls == ["primes.no_fork"]
        assert again.resumed == ["alice", "bob", "carl"]
        assert normalized(again.gradebook) == normalized(baseline.gradebook)

    def test_journal_entries_ignore_other_batches(self, tmp_path):
        journal = GradingJournal(tmp_path / "grading.jsonl")
        GradingSupervisor(primes_factory, journal=journal).grade(
            {"alice": "primes.correct"}
        )
        # A different roster: alice's entry applies, strangers' don't.
        report = GradingSupervisor(primes_factory, journal=journal).grade(
            {"alice": "primes.correct", "dora": "primes.no_fork"}
        )
        assert report.resumed == ["alice"]
        assert set(report.gradebook.students()) == {"alice", "dora"}

    def test_empty_batch_is_graded_as_empty(self):
        def exploding_factory(identifier):
            raise AssertionError("factory called for an empty batch")

        report = GradingSupervisor(exploding_factory).grade({})
        assert report.gradebook.students() == []
        assert report.outcomes == {}
        assert "graded 0 submission(s)" in report.summary()


class TestWatchdog:
    def test_hung_child_hard_killed_at_deadline(self):
        # The runner would wait 120s; only the watchdog saves the batch.
        def factory(identifier):
            return TestSuite("faults", [FaultChecker(identifier, timeout=120.0)])

        started = time.monotonic()
        report = GradingSupervisor(
            factory, deadline=2.0, watchdog_poll=0.05
        ).grade({"hanger": "faults.hang"})
        elapsed = time.monotonic() - started
        assert elapsed < 30.0
        outcome = report.outcomes["hanger"]
        assert outcome.failure_kind is FailureKind.TIMEOUT
        assert "time limit" in outcome.record.tests[0].fatal
        assert active_child_count() == 0

    def test_wedged_worker_abandoned_and_pool_restaffed(self):
        # A worker stuck in pure-Python code has no child to kill: after
        # the grace period it is abandoned and the batch still finishes.
        def factory(identifier):
            if identifier == "wedge":

                def body():
                    time.sleep(20)

            else:

                def body():
                    return None

            return TestSuite("s", [FunctionTestCase(body, name="T", max_score=5)])

        supervisor = GradingSupervisor(
            factory, jobs=1, deadline=0.4, watchdog_poll=0.05
        )
        supervisor.KILL_GRACE = 0.2
        started = time.monotonic()
        report = supervisor.grade({"stuck": "wedge", "after": "fine"})
        elapsed = time.monotonic() - started
        assert elapsed < 15.0
        stuck = report.outcomes["stuck"]
        assert stuck.failure_kind is FailureKind.TIMEOUT
        assert "could not be recovered" in stuck.record.tests[0].fatal
        # The queued submission was graded by the replacement worker.
        after = report.outcomes["after"]
        assert after.failure_kind is FailureKind.OK
        assert after.record.percent == pytest.approx(100.0)

    def test_wedge_storm_restaffs_once_per_missing_worker(self):
        # Three of three workers wedge with ONE submission queued.  The
        # old accounting restaffed per-abandonment whenever the queue
        # was non-empty — three replacements (and three counter bumps)
        # for a single queued task.  Staffing must converge to the work
        # left: one replacement, counted once.
        def factory(identifier):
            if identifier == "wedge":

                def body():
                    time.sleep(20)

            else:

                def body():
                    return None

            return TestSuite("s", [FunctionTestCase(body, name="T", max_score=5)])

        supervisor = GradingSupervisor(
            factory, jobs=3, deadline=0.4, watchdog_poll=0.05
        )
        supervisor.KILL_GRACE = 0.2
        registry = ObsRegistry(enabled=True)
        with use_registry(registry):
            report = supervisor.grade(
                {
                    "stuck-1": "wedge",
                    "stuck-2": "wedge",
                    "stuck-3": "wedge",
                    "after": "fine",
                }
            )
        assert report.outcomes["after"].failure_kind is FailureKind.OK
        for student in ("stuck-1", "stuck-2", "stuck-3"):
            assert report.outcomes[student].failure_kind is FailureKind.TIMEOUT
        assert registry.counter("supervisor.workers_restaffed").value == 1

    def test_request_stop_drains_the_queue_resumably(self):
        # request_stop() is the graceful-drain entry point: queued work
        # is dropped (reported, never graded), in-flight work finishes.
        def factory(identifier):
            def body():
                time.sleep(0.3)

            return TestSuite("s", [FunctionTestCase(body, name="T", max_score=5)])

        supervisor = GradingSupervisor(factory, jobs=1)
        import threading

        threading.Timer(0.35, supervisor.request_stop).start()
        students = {f"s{i}": "x" for i in range(6)}
        report = supervisor.grade(dict(students))
        assert report.dropped, "the stop arrived mid-batch"
        graded = set(report.outcomes)
        assert graded, "in-flight work finished"
        assert graded.isdisjoint(report.dropped)
        assert graded | set(report.dropped) == set(students)

    def test_fast_batch_unbothered_by_deadline(self):
        report = GradingSupervisor(
            primes_factory, deadline=30.0, watchdog_poll=0.05
        ).grade({"alice": "primes.correct"})
        assert report.outcomes["alice"].failure_kind is FailureKind.OK
        assert report.gradebook.class_percentages()["alice"] == pytest.approx(100.0)
