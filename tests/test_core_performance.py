"""Tests of the performance checker (Fig. 7 semantics)."""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import pytest

from repro.core.performance import AbstractConcurrencyPerformanceChecker
from repro.execution.registry import register_main, unregister_main
from repro.execution.runner import ExecutionResult
from repro.testfw.annotations import max_value
from repro.tracing import print_property


@register_main("perf.test.scalable")
def _scalable(args: List[str]) -> None:
    """Sleep-based program whose duration divides by its thread arg."""
    threads = int(args[1]) if len(args) > 1 else 1
    # Tracing output that must be disabled during timing:
    print_property("Config", args)
    time.sleep(0.03 / threads)


@register_main("perf.test.flat")
def _flat(args: List[str]) -> None:
    """A program whose duration ignores the thread argument."""
    time.sleep(0.01)


@max_value(25)
class _PerfChecker(AbstractConcurrencyPerformanceChecker):
    def __init__(
        self,
        identifier: str = "perf.test.scalable",
        *,
        minimum: float = 1.5,
        runs: int = 3,
        duration: Optional[Callable[[ExecutionResult], float]] = None,
    ) -> None:
        self._identifier = identifier
        self._minimum = minimum
        self._runs = runs
        self._duration = duration

    def main_class_identifier(self) -> str:
        return self._identifier

    def low_thread_args(self) -> List[str]:
        return ["100", "1"]

    def high_thread_args(self) -> List[str]:
        return ["100", "4"]

    def expected_minimum_speedup(self) -> float:
        return self._minimum

    def num_timed_runs(self) -> int:
        return self._runs

    def duration_source(self):
        return self._duration


class TestSpeedupVerdicts:
    def test_scalable_program_earns_full_points(self):
        checker = _PerfChecker()
        result = checker.run()
        assert result.score == pytest.approx(25.0)
        assert checker.last_speedup is not None and checker.last_speedup >= 1.5
        [outcome] = result.outcomes
        assert "speedup" in outcome.aspect

    def test_flat_program_earns_zero_with_reason(self):
        checker = _PerfChecker("perf.test.flat")
        result = checker.run()
        assert result.score == 0.0
        [outcome] = result.outcomes
        assert "expected a speedup of at least 1.5" in outcome.message
        assert "measured" in outcome.message

    def test_reported_message_contains_totals_on_success(self):
        result = _PerfChecker().run()
        [outcome] = result.outcomes
        assert "low total" in outcome.message and "high total" in outcome.message

    def test_duration_source_overrides_wall_clock(self):
        # Virtual durations: low args -> 4.0, high args -> 1.0.
        def fake_duration(execution: ExecutionResult) -> float:
            return 4.0 if execution.args[-1] == "1" else 1.0

        checker = _PerfChecker("perf.test.flat", duration=fake_duration)
        result = checker.run()
        assert result.score == pytest.approx(25.0)
        assert checker.last_speedup == pytest.approx(4.0)

    def test_timing_results_kept_for_inspection(self):
        checker = _PerfChecker()
        checker.run()
        assert checker.last_low is not None and checker.last_low.runs == 3
        assert checker.last_high is not None and checker.last_high.runs == 3


class TestPrintsDisabled:
    def test_trace_prints_hidden_during_timing(self, capsys):
        checker = _PerfChecker()
        checker.run()
        # The tested program prints "Config" every run; none may escape.
        assert "Config" not in capsys.readouterr().out

    def test_timed_runs_have_no_events(self):
        checker = _PerfChecker()
        checker.run()
        assert checker.last_low.all_ok  # runs happened
        # time_program hides prints; verify via a direct probe:
        from repro.execution.timing import time_program

        result = time_program("perf.test.scalable", ["100", "1"], runs=1, warmup_runs=0)
        assert result.all_ok


class TestFatalPaths:
    def test_unknown_program_is_fatal(self):
        result = _PerfChecker("perf.test.missing").run()
        assert result.score == 0
        assert "no tested program" in result.fatal

    def test_crashing_program_names_the_configuration(self):
        @register_main("perf.test.crash")
        def crash(args):
            raise RuntimeError("boom")

        try:
            result = _PerfChecker("perf.test.crash").run()
        finally:
            unregister_main("perf.test.crash")
        assert result.score == 0
        assert "low-thread configuration" in result.fatal
        assert "boom" in result.fatal

    def test_unimplemented_parameter_methods_raise(self):
        class Bare(AbstractConcurrencyPerformanceChecker):
            def main_class_identifier(self):
                return "perf.test.flat"

        result = Bare().run_safely()
        assert "must override low_thread_args" in result.fatal


class TestDefaults:
    def test_paper_defaults(self):
        class Minimal(AbstractConcurrencyPerformanceChecker):
            def main_class_identifier(self):
                return "x"

            def low_thread_args(self):
                return []

            def high_thread_args(self):
                return []

        checker = Minimal()
        assert checker.expected_minimum_speedup() == 1.5
        assert checker.num_timed_runs() == 10
        assert checker.warmup_runs() == 1
        assert checker.duration_source() is None
