"""Property-based tests of phase structuring over generated traces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace_model import build_phased_trace
from repro.workloads.common import is_prime
from tests.helpers import primes_schedule, synthetic_execution
from tests.test_core_trace_model import PRIMES_SPECS

_SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def work_assignments(draw):
    """A random fair-or-unfair split of N indices over K workers."""
    total = draw(st.integers(min_value=1, max_value=12))
    workers = draw(st.integers(min_value=1, max_value=4))
    keys = [f"W{k}" for k in range(workers)]
    assignment = {key: [] for key in keys}
    for index in range(total):
        assignment[draw(st.sampled_from(keys))].append(index)
    # Workers may end up with no work; drop them (they never print).
    return {key: indices for key, indices in assignment.items() if indices}


@_SETTINGS
@given(work_assignments(), st.booleans())
def test_well_formed_traces_always_parse_cleanly(assignment, interleave):
    if not assignment:
        return
    randoms = list(range(100, 100 + 12))
    schedule = primes_schedule(
        randoms=randoms, worker_slices=assignment, interleave=interleave
    )
    trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
    # No structure errors on a well-formed trace, any schedule.
    assert trace.structure_errors() == []
    # Iteration counts per worker match the assignment exactly.
    by_count = sorted(w.iteration_count for w in trace.workers)
    assert by_count == sorted(len(v) for v in assignment.values())
    # Every worker has exactly one post-iteration tuple.
    assert all(w.post_iteration is not None for w in trace.workers)
    # Root tuples present with the right names.
    assert set(trace.pre_fork.values) == {"Random Numbers"}
    assert set(trace.post_join.values) == {"Total Num Primes"}


@_SETTINGS
@given(work_assignments())
def test_total_iterations_invariant(assignment):
    if not assignment:
        return
    randoms = list(range(100, 112))
    schedule = primes_schedule(randoms=randoms, worker_slices=assignment)
    trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
    assert trace.total_iterations == sum(len(v) for v in assignment.values())


@_SETTINGS
@given(work_assignments())
def test_iteration_values_survive_structuring(assignment):
    """Values in the structured trace equal the scheduled prints."""
    if not assignment:
        return
    randoms = list(range(100, 112))
    schedule = primes_schedule(randoms=randoms, worker_slices=assignment)
    trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
    seen = {}
    for worker in trace.workers:
        for tup in worker.iterations:
            index = tup.values["Index"]
            assert tup.values["Number"] == randoms[index]
            assert tup.values["Is Prime"] == is_prime(randoms[index])
            seen.setdefault(index, 0)
            seen[index] += 1
    expected_indices = sorted(i for v in assignment.values() for i in v)
    assert sorted(seen) == sorted(set(expected_indices))


@_SETTINGS
@given(
    work_assignments(),
    st.integers(min_value=0, max_value=30),
)
def test_dropping_one_event_never_crashes_the_builder(assignment, drop_at):
    """Robustness: removing any single event yields a parseable (if
    erroneous) trace — the builder must be total on corrupted input."""
    if not assignment:
        return
    randoms = list(range(100, 112))
    schedule = primes_schedule(randoms=randoms, worker_slices=assignment)
    if drop_at < len(schedule):
        del schedule[drop_at]
    trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
    # The builder is best-effort: structure errors may exist, but the
    # object is complete and internally consistent.
    assert trace.worker_count == len(
        {e.thread_id for e in trace.worker_events}
    )
    for worker in trace.workers:
        assert worker.iteration_count <= len(worker.events)
