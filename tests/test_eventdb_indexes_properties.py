"""Property tests: indexed event queries match the linear-scan reference.

The event database answers ``events_of``/``events_named``/
``events_between`` from per-thread and per-name indexes plus dense-seq
slicing.  The definitions, however, are the straightforward linear
scans; these properties pin the indexed answers to those references on
randomized logs, and a few regression cases pin the attribution and
boundary semantics the indexes must preserve.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eventdb.database import EventDatabase
from repro.eventdb.events import PropertyEvent
from repro.eventdb.queries import (
    interleaved_thread_pairs,
    is_interleaved,
    serialization_order,
)
from repro.util.thread_registry import ThreadRegistry

_SETTINGS = settings(max_examples=60, deadline=None)

#: Random logs: schedule[i] names the thread of event i, names drawn
#: from a small pool so per-name streams have several members.
schedules = st.lists(st.integers(min_value=0, max_value=4), max_size=40)
names = st.lists(
    st.sampled_from(["Index", "Number", "Total", "str"]), max_size=40
)


def build_log(schedule: List[int], name_choices: List[str]):
    """Record one synthetic event per schedule slot; return (db, threads)."""
    registry = ThreadRegistry(first_id=0)
    db = EventDatabase(registry)
    threads: Dict[int, threading.Thread] = {}
    for index, key in enumerate(schedule):
        thread = threads.setdefault(key, threading.Thread(name=f"T{key}"))
        name = name_choices[index % len(name_choices)] if name_choices else "X"
        db.record(name, index, f"Thread {key}->{name}:{index}", thread=thread)
    return db, threads


@_SETTINGS
@given(schedules, names)
def test_events_of_matches_identity_scan(schedule, name_choices):
    db, threads = build_log(schedule, name_choices)
    events = db.snapshot()
    for thread in threads.values():
        reference = [e for e in events if e.thread is thread]
        assert db.events_of(thread) == reference


@_SETTINGS
@given(schedules, names)
def test_events_named_matches_linear_scan(schedule, name_choices):
    db, _ = build_log(schedule, name_choices)
    events = db.snapshot()
    for name in {e.name for e in events} | {"never-recorded"}:
        reference = [e for e in events if e.name == name]
        assert db.events_named(name) == reference


@_SETTINGS
@given(schedules, names, st.integers(-3, 45), st.integers(-3, 45))
def test_events_between_matches_linear_scan(schedule, name_choices, lo, hi):
    db, _ = build_log(schedule, name_choices)
    events = db.snapshot()
    reference = [e for e in events if lo <= e.seq <= hi]
    assert db.events_between(lo, hi) == reference


@_SETTINGS
@given(schedules, names)
def test_batched_recording_equals_sequential(schedule, name_choices):
    sequential_db, _ = build_log(schedule, name_choices)
    registry = ThreadRegistry(first_id=0)
    batched_db = EventDatabase(registry)
    threads: Dict[int, threading.Thread] = {}
    items = []
    for index, key in enumerate(schedule):
        thread = threads.setdefault(key, threading.Thread(name=f"T{key}"))
        name = name_choices[index % len(name_choices)] if name_choices else "X"
        items.append((name, index, f"Thread {key}->{name}:{index}", thread, True))
    batched_db.record_batch(items)

    strip = lambda e: (e.seq, e.thread_id, e.name, e.value, e.thread_seq)
    assert [strip(e) for e in batched_db.snapshot()] == [
        strip(e) for e in sequential_db.snapshot()
    ]
    assert batched_db.thread_ids() == sequential_db.thread_ids()


@_SETTINGS
@given(schedules, names)
def test_phase_bounds_matches_linear_scan(schedule, name_choices):
    # Thread key 0 plays the root; the reference is the full worker-seq
    # scan build_phased_trace used to do.
    db, threads = build_log(schedule, name_choices)
    root = threads.get(0) or threading.Thread(name="unrecorded-root")
    events = db.snapshot()
    worker_seqs = [e.seq for e in events if e.thread is not root]
    reference = (min(worker_seqs), max(worker_seqs)) if worker_seqs else None
    assert db.phase_bounds(root) == reference


@_SETTINGS
@given(schedules, names)
def test_events_in_phase_partitions_the_log(schedule, name_choices):
    db, threads = build_log(schedule, name_choices)
    root = threads.get(0) or threading.Thread(name="unrecorded-root")
    events = db.snapshot()
    worker_seqs = [e.seq for e in events if e.thread is not root]
    if worker_seqs:
        first, last = min(worker_seqs), max(worker_seqs)
        pre = [e for e in events if e.seq < first]
        fork = [e for e in events if first <= e.seq <= last]
        post = [e for e in events if e.seq > last]
    else:
        pre, fork, post = list(events), [], []
    assert db.events_in_phase(root, "pre-fork") == pre
    assert db.events_in_phase(root, "fork") == fork
    assert db.events_in_phase(root, "post-join") == post
    # The three phases partition the log in order.
    assert pre + fork + post == events


class TestPhaseIndex:
    """Regressions for the per-phase boundary index."""

    def _log(self):
        db = EventDatabase(ThreadRegistry(first_id=0))
        root = threading.Thread(name="root")
        worker = threading.Thread(name="worker")
        db.record("Pre", 0, "pre", thread=root)
        db.record("Index", 1, "w1", thread=worker)
        db.record("Mid", 2, "mid-fork root", thread=root)
        db.record("Index", 3, "w2", thread=worker)
        db.record("Post", 4, "post", thread=root)
        return db, root

    def test_mid_fork_root_output_lands_in_the_fork_phase(self):
        db, root = self._log()
        assert db.phase_bounds(root) == (1, 3)
        assert [e.name for e in db.events_in_phase(root, "pre-fork")] == ["Pre"]
        assert [e.name for e in db.events_in_phase(root, "fork")] == [
            "Index", "Mid", "Index",
        ]
        assert [e.name for e in db.events_in_phase(root, "post-join")] == ["Post"]

    def test_events_between_on_phase_bounds_is_the_fork_slice(self):
        db, root = self._log()
        first, last = db.phase_bounds(root)
        assert db.events_between(first, last) == db.events_in_phase(root, "fork")

    def test_root_only_log_is_entirely_pre_fork(self):
        db = EventDatabase(ThreadRegistry(first_id=0))
        root = threading.Thread(name="root")
        db.record("A", 1, "a", thread=root)
        db.record("B", 2, "b", thread=root)
        assert db.phase_bounds(root) is None
        assert len(db.events_in_phase(root, "pre-fork")) == 2
        assert db.events_in_phase(root, "fork") == []
        assert db.events_in_phase(root, "post-join") == []

    def test_unknown_phase_rejected(self):
        db, root = self._log()
        try:
            db.events_in_phase(root, "join")
        except ValueError as err:
            assert "pre-fork" in str(err)
        else:  # pragma: no cover - the assertion is the except branch
            raise AssertionError("expected ValueError for unknown phase")

    def test_clear_resets_the_phase_index(self):
        db, root = self._log()
        db.clear()
        assert db.phase_bounds(root) is None
        assert db.events_in_phase(root, "pre-fork") == []


class TestEventsOfAttribution:
    """Regressions for the identity-based ``events_of`` bug."""

    def test_unregistered_thread_has_no_events(self):
        db = EventDatabase()
        db.record("A", 1, "a")
        stranger = threading.Thread()
        assert db.events_of(stranger) == []
        # The lookup must not have registered the stranger as a side
        # effect — its next recorded event should get a fresh id, and
        # the registry must not have grown.
        assert db.registry.peek_id(stranger) is None

    def test_two_threads_never_share_attribution(self):
        db = EventDatabase()
        one, two = threading.Thread(), threading.Thread()
        db.record("A", 1, "a", thread=one)
        db.record("B", 2, "b", thread=two)
        db.record("C", 3, "c", thread=one)
        assert [e.name for e in db.events_of(one)] == ["A", "C"]
        assert [e.name for e in db.events_of(two)] == ["B"]

    def test_events_survive_thread_object_reuse(self):
        # After clear(), a brand-new thread object may reuse the old
        # object's memory address; lookups key on registry ids, so the
        # new thread must start with no attributed events.
        db = EventDatabase()
        db.record("A", 1, "a")
        db.clear()
        assert db.events_of(threading.current_thread()) == []


class TestBoundarySemantics:
    """``interleaved_thread_pairs`` is strict about span boundaries."""

    @staticmethod
    def _event(seq: int, thread_id: int) -> PropertyEvent:
        return PropertyEvent(
            seq=seq,
            thread=threading.current_thread(),
            thread_id=thread_id,
            name="X",
            value=seq,
            raw_line=f"Thread {thread_id}->X:{seq}",
        )

    def test_boundary_touching_spans_are_not_interleaved(self):
        # A spans seqs {0, 2}, B spans {2, 4}: the shared boundary seq 2
        # is contact, not interleaving — no B event lies strictly inside
        # A's span (or vice versa), so the threads serialize as [A, B].
        events = [
            self._event(0, 7),
            self._event(2, 7),
            self._event(2, 8),
            self._event(4, 8),
        ]
        assert interleaved_thread_pairs(events) == []
        assert not is_interleaved(events)
        assert serialization_order(events) == [7, 8]

    def test_one_event_past_the_boundary_interleaves(self):
        events = [
            self._event(0, 7),
            self._event(1, 8),
            self._event(2, 7),
            self._event(4, 8),
        ]
        assert interleaved_thread_pairs(events) == [(7, 8)]
        assert is_interleaved(events)
        assert serialization_order(events) == []

    def test_nested_span_with_no_inner_event_still_interleaves(self):
        # B's span sits entirely inside A's: B's events are strictly
        # inside A's span even though no A event is inside B's.
        events = [
            self._event(0, 7),
            self._event(1, 8),
            self._event(2, 8),
            self._event(5, 7),
        ]
        assert interleaved_thread_pairs(events) == [(7, 8)]
