"""Tests of fleet telemetry: context, sidecars, merge, prom, stream.

Covers the cross-process trace plumbing in isolation (trace-context
round-trip, detached spans and payload adoption, histogram merging),
the crash-safe sidecar export and its torn-tail tolerance after a
simulated ``kill -9``, the deterministic multi-dump merge, Prometheus
text exposition, the live progress stream and its fleet view with
straggler detection — and the acceptance run: a ``shards=4,
pool_size=2`` sharded batch whose merged dump is ONE tree where every
shard-worker and pool-child span is causally parented under the
coordinator's ``service.batch`` root.
"""

from __future__ import annotations

import json
import random
import threading
import warnings

import pytest

from repro.cli import main
from repro.obs import (
    FleetState,
    Histogram,
    ObsDumpWarning,
    ObsRegistry,
    ProgressStream,
    SidecarWriter,
    TraceContext,
    current_context,
    load_jsonl,
    merge_dumps,
    new_run_id,
    read_events,
    registry_payload,
    render_fleet,
    render_prom,
    render_stats,
    render_timeline,
    save_dump,
    snapshot_dump,
    stats_json,
    timeline_json,
    use_context,
    use_registry,
)


@pytest.fixture
def registry():
    """A fresh, enabled registry installed as the process default."""
    fresh = ObsRegistry(enabled=True)
    with use_registry(fresh):
        yield fresh


# ----------------------------------------------------------------------
# Trace context
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_round_trip(self):
        context = TraceContext(
            run_id="abc123",
            role="shard",
            shard=3,
            incarnation=2,
            pid=4242,
            parent_process="coordinator",
            parent_span_id=17,
        )
        clone = TraceContext.from_dict(context.to_dict())
        assert clone == context
        assert clone.process_key == "shard-03#2"

    def test_process_keys_by_role(self):
        assert TraceContext(role="coordinator").process_key == "coordinator"
        assert TraceContext(role="pool", pid=99).process_key == "pool-99"
        assert (
            TraceContext(role="shard", shard=1, incarnation=4).process_key
            == "shard-01#4"
        )

    def test_use_context_restores_previous(self):
        outer = TraceContext(run_id="outer", role="coordinator")
        inner = TraceContext(run_id="inner", role="shard", shard=0)
        with use_context(outer):
            assert current_context().run_id == "outer"
            with use_context(inner):
                assert current_context().run_id == "inner"
            assert current_context().run_id == "outer"

    def test_new_run_ids_are_short_and_distinct(self):
        ids = {new_run_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(len(run_id) == 12 for run_id in ids)


# ----------------------------------------------------------------------
# Detached spans, sinks, and payload adoption
# ----------------------------------------------------------------------
class TestDetachedAndAdopt:
    def test_detached_span_never_parents_later_spans(self, registry):
        detached = registry.begin_span("service.shard", detached=True)
        with registry.span("other") as other:
            pass
        registry.end_span(detached)
        assert other.parent_id is None

    def test_ending_a_detached_span_does_not_drain_the_stack(self, registry):
        outer = registry.begin_span("outer")
        detached = registry.begin_span("d", detached=True)
        registry.end_span(detached)
        with registry.span("inner") as inner:
            pass
        registry.end_span(outer)
        assert inner.parent_id == outer.span_id

    def test_span_sink_sees_every_completed_span(self, registry):
        seen = []
        registry.add_span_sink(seen.append)
        with registry.span("a"):
            with registry.span("b"):
                pass
        registry.remove_span_sink(seen.append)
        with registry.span("c"):
            pass
        assert [span.name for span in seen] == ["b", "a"]

    def test_adopt_remaps_ids_and_stitches_orphans(self, registry):
        child = ObsRegistry(enabled=True)
        with child.span("pool.serve"):
            with child.span("inner"):
                pass
        child.counter("pool.things").inc(3)
        child.histogram("pool.seconds").observe(0.5)
        payload = registry_payload(
            child, context=TraceContext(role="pool", pid=777)
        )

        anchor = registry.begin_span("runner.subprocess")
        adopted = registry.adopt(payload, parent_id=anchor.span_id)
        registry.end_span(anchor)

        by_name = {span.name: span for span in adopted}
        # orphan root stitched under the anchor, internal link preserved
        assert by_name["pool.serve"].parent_id == anchor.span_id
        assert by_name["inner"].parent_id == by_name["pool.serve"].span_id
        assert all(span.process == "pool-777" for span in adopted)
        assert registry.counter("pool.things").value == 3
        assert registry.histogram("pool.seconds").count == 1

    def test_adopt_on_disabled_or_empty_is_a_noop(self):
        disabled = ObsRegistry(enabled=False)
        assert disabled.adopt({"spans": [{"span_id": 1, "name": "x"}]}) == []
        enabled = ObsRegistry(enabled=True)
        assert enabled.adopt(None) == []
        assert enabled.spans() == []


class TestHistogramMerge:
    def test_merge_sums_buckets_and_extremes(self):
        first = Histogram("h", boundaries=(1.0, 2.0))
        second = Histogram("h", boundaries=(1.0, 2.0))
        for value in (0.5, 1.5):
            first.observe(value)
        for value in (1.7, 9.0):
            second.observe(value)
        first.merge(second)
        assert first.count == 4
        assert first.minimum == 0.5
        assert first.maximum == 9.0
        assert first.total == pytest.approx(12.7)

    def test_merge_rejects_mismatched_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0,)).merge(
                Histogram("h", boundaries=(2.0,))
            )


# ----------------------------------------------------------------------
# Sidecars: crash-safe export and torn-tail tolerance
# ----------------------------------------------------------------------
class TestSidecar:
    def context(self):
        return TraceContext(
            run_id="run01", role="shard", shard=0, incarnation=1, pid=10
        )

    def test_sidecar_appends_one_line_per_span(self, registry, tmp_path):
        path = tmp_path / "obs-shard-00.inc01.jsonl"
        sidecar = SidecarWriter(path, registry=registry, context=self.context())
        registry.add_span_sink(sidecar.on_span)
        with registry.span("supervisor.submission", student="ada"):
            pass
        registry.counter("graded").inc()
        # The span line is on disk *before* any clean shutdown.
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert json.loads(lines[1])["name"] == "supervisor.submission"
        sidecar.flush_metrics()
        sidecar.close()
        dump = load_jsonl(path)
        assert dump.meta["process"] == "shard-00#1"
        assert dump.spans[0].process == "shard-00#1"
        assert dump.counters == {"graded": 1}

    def test_torn_tail_after_kill_is_dropped_tolerantly(
        self, registry, tmp_path
    ):
        path = tmp_path / "obs-shard-00.inc00.jsonl"
        sidecar = SidecarWriter(path, registry=registry, context=self.context())
        registry.add_span_sink(sidecar.on_span)
        with registry.span("supervisor.submission", student="ada"):
            pass
        # kill -9 mid-append: the next span's line stops mid-JSON and
        # the process never reaches flush_metrics()/close().
        with path.open("a") as handle:
            handle.write('{"type": "span", "span_id": 99, "na')

        with pytest.raises(ValueError, match="corrupt obs line"):
            load_jsonl(path)
        with pytest.warns(ObsDumpWarning):
            dump = load_jsonl(path, tolerant=True)
        assert [span.name for span in dump.spans] == ["supervisor.submission"]

    def test_corrupt_interior_line_raises_even_tolerantly(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text('not json\n{"type": "meta", "version": 2}\n')
        with pytest.raises(ValueError, match="line 1"):
            load_jsonl(path, tolerant=True)


# ----------------------------------------------------------------------
# Dump v2 round-trip and deterministic merge
# ----------------------------------------------------------------------
def _process_dump(role, *, shard=None, incarnation=None, pid=1, run_id="r1"):
    """A small single-process dump with nested spans and metrics."""
    registry = ObsRegistry(enabled=True)
    with registry.span("outer", who=role):
        with registry.span("inner"):
            pass
    registry.counter("graded").inc(2)
    registry.histogram("seconds").observe(0.25)
    context = TraceContext(
        run_id=run_id, role=role, shard=shard, incarnation=incarnation, pid=pid
    )
    return snapshot_dump(registry, context=context)


class TestDumpRoundTrip:
    def test_v2_round_trip_nested_spans_and_histograms(self, tmp_path):
        dump = _process_dump("shard", shard=2, incarnation=1, pid=55)
        loaded = load_jsonl(save_dump(dump, tmp_path / "obs.jsonl"))
        assert loaded.meta["run_id"] == "r1"
        assert loaded.process == "shard-02#1"
        assert [span.name for span in loaded.spans] == ["inner", "outer"]
        assert loaded.spans[0].parent_id == loaded.spans[1].span_id
        assert all(span.process == "shard-02#1" for span in loaded.spans)
        assert loaded.counters == {"graded": 2}
        assert loaded.histograms["seconds"].count == 1

    def test_merged_dump_round_trips_parts(self, tmp_path):
        merged = merge_dumps(
            [
                _process_dump("coordinator"),
                _process_dump("shard", shard=0, incarnation=0, pid=2),
            ]
        )
        loaded = load_jsonl(save_dump(merged, tmp_path / "obs.jsonl"))
        assert loaded.merged
        assert [part.process for part in loaded.parts] == [
            "coordinator",
            "shard-00#0",
        ]
        # flat aggregates recomputed across parts
        assert loaded.counters == {"graded": 4}
        assert loaded.histograms["seconds"].count == 2


class TestMergeDumps:
    def parts(self):
        return [
            _process_dump("coordinator", pid=1),
            _process_dump("shard", shard=1, incarnation=0, pid=30),
            _process_dump("shard", shard=0, incarnation=1, pid=20),
            _process_dump("shard", shard=0, incarnation=0, pid=10),
        ]

    def test_merge_order_is_deterministic_under_shuffle(self):
        reference = merge_dumps(self.parts())
        for seed in range(5):
            shuffled = self.parts()
            random.Random(seed).shuffle(shuffled)
            merged = merge_dumps(shuffled)
            assert [part.process for part in merged.parts] == [
                part.process for part in reference.parts
            ]
            assert [
                (span.name, span.process) for span in merged.spans
            ] == [(span.name, span.process) for span in reference.spans]

    def test_coordinator_sorts_first_then_shard_and_incarnation(self):
        merged = merge_dumps(self.parts())
        assert [part.process for part in merged.parts] == [
            "coordinator",
            "shard-00#0",
            "shard-00#1",
            "shard-01#0",
        ]
        assert merged.meta.get("merged") is True
        assert merged.counters["graded"] == 8

    def test_cross_process_parenting_is_stitched(self):
        coordinator = ObsRegistry(enabled=True)
        batch = coordinator.begin_span("service.batch")
        shard_span = coordinator.begin_span(
            "service.shard", parent_id=batch.span_id, detached=True
        )
        coordinator.end_span(shard_span)
        coordinator.end_span(batch)
        coordinator_dump = snapshot_dump(
            coordinator, context=TraceContext(run_id="r1", role="coordinator")
        )

        worker = ObsRegistry(enabled=True)
        with worker.span("supervisor.submission", student="ada"):
            pass
        worker_dump = snapshot_dump(
            worker,
            context=TraceContext(
                run_id="r1",
                role="shard",
                shard=0,
                incarnation=0,
                pid=9,
                parent_process="coordinator",
                parent_span_id=shard_span.span_id,
            ),
        )

        merged = merge_dumps([coordinator_dump, worker_dump])
        by_name = {span.name: span for span in merged.spans}
        root = by_name["service.batch"]
        assert root.parent_id is None
        assert by_name["service.shard"].parent_id == root.span_id
        assert (
            by_name["supervisor.submission"].parent_id
            == by_name["service.shard"].span_id
        )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestProm:
    def test_counter_gauge_histogram_rendering(self, registry):
        registry.counter("supervisor.retries").inc(2)
        registry.gauge("pool.workers").set(4)
        registry.histogram("run.seconds", boundaries=(1.0,)).observe(0.5)
        text = render_prom(registry)
        assert "# TYPE repro_supervisor_retries_total counter" in text
        assert 'repro_supervisor_retries_total{role="coordinator"} 2' in text
        assert 'repro_pool_workers{role="coordinator"} 4' in text
        assert 'repro_run_seconds_bucket{role="coordinator",le="1"} 1' in text
        assert (
            'repro_run_seconds_bucket{role="coordinator",le="+Inf"} 1' in text
        )
        assert 'repro_run_seconds_count{role="coordinator"} 1' in text
        assert text.endswith("\n")

    def test_merged_dump_gets_per_role_labels(self):
        merged = merge_dumps(
            [
                _process_dump("coordinator"),
                _process_dump("shard", shard=0, incarnation=0, pid=2),
                _process_dump("pool", pid=3),
            ]
        )
        text = render_prom(merged)
        assert 'repro_graded_total{role="coordinator"} 2' in text
        assert 'repro_graded_total{role="shard"} 2' in text
        assert 'repro_graded_total{role="pool"} 2' in text

    def test_output_is_sorted_and_stable(self, registry):
        registry.counter("b.count").inc()
        registry.counter("a.count").inc()
        text = render_prom(registry)
        assert text.index("repro_a_count_total") < text.index(
            "repro_b_count_total"
        )
        assert render_prom(registry) == text


# ----------------------------------------------------------------------
# Progress stream, fleet state, stragglers
# ----------------------------------------------------------------------
class TestProgressStream:
    def test_emit_and_tail_with_offsets(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with ProgressStream(path) as stream:
            stream.emit("batch-start", suite="hello", shards=1, submissions=2)
            events, offset = read_events(path)
            assert [event["event"] for event in events] == ["batch-start"]
            assert events[0]["seq"] == 1
            stream.emit("graded", shard=0, student="ada")
            more, offset = read_events(path, offset)
            assert [event["event"] for event in more] == ["graded"]

    def test_tail_never_reads_a_torn_line(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        path.write_text('{"event":"batch-start","seq":1,"ts":1.0}\n{"eve')
        events, offset = read_events(path)
        assert len(events) == 1
        # the torn tail was not consumed; finishing the line surfaces it
        with path.open("a") as handle:
            handle.write('nt":"shard-done","seq":2,"ts":2.0,"shard":0}\n')
        more, _ = read_events(path, offset)
        assert [event["event"] for event in more] == ["shard-done"]

    def test_emit_is_thread_safe(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with ProgressStream(path) as stream:
            threads = [
                threading.Thread(
                    target=lambda: [
                        stream.emit("graded", student="x") for _ in range(50)
                    ]
                )
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        events, _ = read_events(path)
        assert len(events) == 200
        assert sorted(event["seq"] for event in events) == list(range(1, 201))


def _apply_all(state: FleetState, events):
    for event in events:
        state.apply(event)


class TestFleetState:
    def test_folds_a_batch_lifecycle(self):
        state = FleetState()
        _apply_all(
            state,
            [
                {"event": "batch-start", "ts": 0.0, "suite": "hello",
                 "shards": 2, "submissions": 4, "run_id": "r1"},
                {"event": "shard-spawn", "ts": 0.1, "shard": 0,
                 "incarnation": 0, "assigned": 2},
                {"event": "shard-spawn", "ts": 0.1, "shard": 1,
                 "incarnation": 0, "assigned": 2},
                {"event": "graded", "ts": 1.0, "shard": 0, "student": "a",
                 "failure_kind": "ok"},
                {"event": "graded", "ts": 2.0, "shard": 0, "student": "b",
                 "failure_kind": "deadlock"},
                {"event": "shard-death", "ts": 2.5, "shard": 1,
                 "returncode": -9, "remaining": 2},
                {"event": "shard-spawn", "ts": 2.6, "shard": 1,
                 "incarnation": 1, "assigned": 2},
                {"event": "quarantine", "ts": 3.0, "shard": 1,
                 "student": "c"},
                {"event": "shard-done", "ts": 4.0, "shard": 0},
                {"event": "batch-end", "ts": 5.0, "graded": 3,
                 "drained": False, "interrupted": 0},
            ],
        )
        assert state.suite == "hello" and state.run_id == "r1"
        assert state.graded == 2
        assert state.verdicts == {"ok": 1, "deadlock": 1}
        assert state.shards[0].done
        assert state.shards[1].deaths == 1
        assert state.shards[1].incarnation == 1
        assert state.shards[1].quarantined == ["c"]
        assert state.ended and not state.drained

    def test_straggler_flags_a_3x_below_median_shard(self):
        state = FleetState()
        events = [{"event": "batch-start", "ts": 0.0, "suite": "s",
                   "shards": 3, "submissions": 33}]
        for shard in range(3):
            events.append({"event": "shard-spawn", "ts": 0.0, "shard": shard,
                           "incarnation": 0, "assigned": 11})
        # shards 0 and 1 grade 10 in 10s (1/s); shard 2 grades 1 (0.1/s)
        for i in range(10):
            ts = float(i + 1)
            events.append({"event": "graded", "ts": ts, "shard": 0,
                           "student": f"a{i}"})
            events.append({"event": "graded", "ts": ts, "shard": 1,
                           "student": f"b{i}"})
        events.append({"event": "graded", "ts": 10.0, "shard": 2,
                       "student": "c0"})
        _apply_all(state, events)
        assert state.straggler_shards(now=10.0) == [2]
        view = render_fleet(state, now=10.0)
        assert "STRAGGLER" in view
        assert "suite s" in view

    def test_no_stragglers_with_fewer_than_two_rates(self):
        state = FleetState()
        _apply_all(
            state,
            [
                {"event": "shard-spawn", "ts": 0.0, "shard": 0,
                 "incarnation": 0, "assigned": 1},
                {"event": "graded", "ts": 1.0, "shard": 0, "student": "a"},
            ],
        )
        assert state.straggler_shards(now=2.0) == []

    def test_done_shards_are_never_stragglers(self):
        state = FleetState()
        events = []
        for shard in range(2):
            events.append({"event": "shard-spawn", "ts": 0.0, "shard": shard,
                           "incarnation": 0, "assigned": 5})
        for i in range(5):
            events.append({"event": "graded", "ts": float(i + 1), "shard": 0,
                           "student": f"a{i}"})
        events.append({"event": "graded", "ts": 5.0, "shard": 1,
                       "student": "b0"})
        events.append({"event": "shard-done", "ts": 5.0, "shard": 1})
        _apply_all(state, events)
        assert state.straggler_shards(now=5.0) == []

    def test_render_before_any_event(self):
        assert "waiting" in render_fleet(FleetState())


# ----------------------------------------------------------------------
# Acceptance: sharded service with pools → one causally-stitched dump
# ----------------------------------------------------------------------
class TestServiceFleetTelemetry:
    def run_service(self, tmp_path, registry, *, class_size=8, **kwargs):
        from repro.grading import GradingService

        kwargs.setdefault("shards", 4)
        kwargs.setdefault("pool_size", 2)
        kwargs.setdefault("heartbeat_interval", 0.2)
        kwargs.setdefault("heartbeat_timeout", 5.0)
        progress = ProgressStream(tmp_path / "progress.jsonl")
        with progress:
            service = GradingService(
                "hello",
                workdir=tmp_path / "wd",
                progress_stream=progress,
                **kwargs,
            )
            submissions = {
                f"student-{i:03d}": "hello.correct" for i in range(class_size)
            }
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                report = service.grade(submissions)
        return service, report

    def test_merged_dump_is_one_causally_stitched_tree(
        self, tmp_path, registry
    ):
        service, report = self.run_service(tmp_path, registry)
        assert sum(len(shard.graded) for shard in report.shards) == 8

        merged = service.merged_dump()
        assert merged.merged
        by_id = {span.span_id: span for span in merged.spans}
        roots = [span for span in merged.spans if span.parent_id is None]
        assert [span.name for span in roots] == ["service.batch"]
        root = roots[0]

        def climbs_to_root(span):
            seen = set()
            while span.parent_id is not None:
                assert span.span_id not in seen  # no cycles
                seen.add(span.span_id)
                span = by_id[span.parent_id]
            return span is root

        # EVERY span in the merged dump is causally under service.batch.
        assert all(climbs_to_root(span) for span in merged.spans)

        # every spawned shard contributed spans under its own process key
        shard_keys = {
            part.process for part in merged.parts if part.role == "shard"
        }
        assert len(shard_keys) == 4
        span_processes = {span.process for span in merged.spans}
        assert shard_keys <= span_processes

        # pool children report through the shard sidecars, and their
        # serve spans hang off the dispatching runner span
        pool_serves = [s for s in merged.spans if s.name == "pool.serve"]
        assert len(pool_serves) == 8
        assert all(
            by_id[span.parent_id].name == "runner.subprocess"
            for span in pool_serves
        )
        assert all(span.process.startswith("pool-") for span in pool_serves)

        # one service.shard child of the root per shard incarnation
        shard_spans = [s for s in merged.spans if s.name == "service.shard"]
        assert len(shard_spans) == 4
        assert all(span.parent_id == root.span_id for span in shard_spans)

    def test_views_and_prom_render_the_merged_dump(self, tmp_path, registry):
        service, _ = self.run_service(tmp_path, registry, class_size=4)
        merged = service.merged_dump()

        timeline = render_timeline(merged)
        assert "fleet:" in timeline
        assert "service.batch" in timeline and "pool.serve" in timeline

        stats = render_stats(merged)
        assert "processes:" in stats

        tree = timeline_json(merged)
        assert tree["merged"] is True
        assert tree["spans"][0]["name"] == "service.batch"

        aggregates = stats_json(merged)
        assert any(
            process["process"].startswith("shard-")
            for process in aggregates["processes"]
        )

        prom = render_prom(merged)
        assert 'role="coordinator"' in prom and 'role="shard"' in prom

    def test_progress_stream_feeds_the_watch_view(self, tmp_path, registry):
        self.run_service(tmp_path, registry, class_size=4)
        events, _ = read_events(tmp_path / "progress.jsonl")
        kinds = [event["event"] for event in events]
        assert kinds[0] == "batch-start"
        assert kinds[-1] == "batch-end"
        assert "shard-spawn" in kinds and "graded" in kinds
        state = FleetState()
        _apply_all(state, events)
        assert state.ended and state.graded == 4
        view = render_fleet(state)
        assert "4/4 graded" in view

    def test_killed_shard_keeps_its_spans_across_incarnations(
        self, tmp_path, registry
    ):
        from repro.execution.faults import ShardFaultProgram

        service, report = self.run_service(
            tmp_path,
            registry,
            class_size=6,
            shards=2,
            pool_size=0,
            faults={0: ShardFaultProgram("kill-at-index", index=1)},
        )
        assert any(shard.respawns for shard in report.shards)
        merged = service.merged_dump()
        incarnations = {
            part.process
            for part in merged.parts
            if part.role == "shard" and part.meta.get("shard") == 0
        }
        # both the killed incarnation and its replacement left sidecars
        assert {"shard-00#0", "shard-00#1"} <= incarnations
        span_processes = {span.process for span in merged.spans}
        assert {"shard-00#0", "shard-00#1"} <= span_processes


# ----------------------------------------------------------------------
# CLI: watch / --json / --prom / --progress-stream / --metrics-out
# ----------------------------------------------------------------------
class TestFleetCli:
    def test_watch_once_renders_fleet_state(self, tmp_path, capsys):
        path = tmp_path / "progress.jsonl"
        with ProgressStream(path) as stream:
            stream.emit("batch-start", suite="hello", shards=1,
                        submissions=1, run_id="r1")
            stream.emit("shard-spawn", shard=0, incarnation=0, assigned=1)
            stream.emit("graded", shard=0, student="ada", failure_kind="ok")
        assert main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "suite hello" in out and "1/1 graded" in out

    def test_timeline_and_stats_json(self, registry, tmp_path, capsys):
        with registry.span("supervisor.submission", student="ada"):
            pass
        registry.counter("graded").inc()
        dump_path = save_dump(
            snapshot_dump(
                registry, context=TraceContext(run_id="r", role="coordinator")
            ),
            tmp_path / "obs.jsonl",
        )
        assert main(["timeline", str(dump_path), "--json"]) == 0
        tree = json.loads(capsys.readouterr().out)
        assert tree["spans"][0]["name"] == "supervisor.submission"
        assert main(["stats", str(dump_path), "--json"]) == 0
        aggregates = json.loads(capsys.readouterr().out)
        assert aggregates["counters"]["graded"] == 1

    def test_stats_prom(self, registry, tmp_path, capsys):
        registry.counter("graded").inc(5)
        dump_path = save_dump(
            snapshot_dump(
                registry, context=TraceContext(run_id="r", role="coordinator")
            ),
            tmp_path / "obs.jsonl",
        )
        assert main(["stats", str(dump_path), "--prom"]) == 0
        out = capsys.readouterr().out
        assert 'repro_graded_total{role="coordinator"} 5' in out

    def test_grade_streams_progress_and_exports_metrics(
        self, registry, tmp_path, capsys
    ):
        stream_path = tmp_path / "progress.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        assert main([
            "grade", "hello",
            "--submissions", "hello.correct",
            "--progress-stream", str(stream_path),
            "--metrics-out", str(metrics_path),
        ]) == 0
        events, _ = read_events(stream_path)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "batch-start" and kinds[-1] == "batch-end"
        assert "graded" in kinds and "queue-depth" in kinds
        assert metrics_path.read_text().startswith("# TYPE repro_")
