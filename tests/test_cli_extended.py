"""Tests of the extended CLI commands (export, awareness, subprocess)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.grading import ProgressLog
from repro.graders import PrimesFunctionality
from repro.testfw.suite import TestSuite


class TestJacobiSuite:
    def test_run_jacobi(self, capsys, round_robin_backend):
        assert main(["run", "jacobi"]) == 0
        assert "JacobiFunctionality" in capsys.readouterr().out

    def test_list_mentions_jacobi(self, capsys):
        main(["list"])
        assert "jacobi" in capsys.readouterr().out


class TestExportCommand:
    def test_export_writes_gradescope_document(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = main(["export", "hello", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["score"] == 10.0
        assert payload["tests"][0]["name"] == "HelloFunctionality"
        assert "execution_time" in payload

    def test_export_failing_submission(self, tmp_path):
        out = tmp_path / "results.json"
        main(["export", "hello", "--submission", "hello.no_fork", "--out", str(out)])
        payload = json.loads(out.read_text())
        assert payload["score"] == 0.0
        assert "must fork" in payload["tests"][0]["output"]


class TestGradeMarkdown:
    def test_grade_writes_markdown(self, tmp_path, round_robin_backend):
        md = tmp_path / "class.md"
        main(
            [
                "grade",
                "hello",
                "--submissions",
                "hello.correct,hello.no_fork",
                "--markdown",
                str(md),
            ]
        )
        text = md.read_text()
        assert "## Gradebook — hello" in text
        assert "hello.correct" in text


class TestAwarenessCommand:
    def test_awareness_over_jsonl(self, tmp_path, capsys, round_robin_backend):
        log_path = tmp_path / "progress.jsonl"
        log = ProgressLog(log_path)
        for t, ident in enumerate(["primes.no_fork", "primes.correct"]):
            suite = TestSuite("primes", [PrimesFunctionality(ident)])
            log.log_run("ada", suite.run(), timestamp=float(t))
        code = main(["awareness", str(log_path), "--suite", "primes"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ada" in out
        assert "Awareness report" in out


class TestSupervisedGrading:
    def test_grade_with_jobs_and_journal(self, tmp_path, capsys, round_robin_backend):
        journal = tmp_path / "grading.jsonl"
        book = tmp_path / "book.json"
        argv = [
            "grade",
            "hello",
            "--submissions",
            "hello.correct,hello.no_fork",
            "--jobs",
            "2",
            "--resume",
            str(journal),
            "--out",
            str(book),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "graded 2 submission(s)" in out
        assert len(journal.read_text().splitlines()) == 2
        saved = json.loads(book.read_text())
        record = saved["submissions"]["hello.correct"][0]
        assert record["failure_kind"] == "ok"

        # Rerunning the same command resumes everything from the journal.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 resumed from journal" in out
        assert len(journal.read_text().splitlines()) == 2

    def test_grade_with_retries(self, capsys, round_robin_backend):
        code = main(
            ["grade", "hello", "--submissions", "hello.no_fork", "--retries", "1"]
        )
        assert code == 0
        assert "graded 1 submission(s)" in capsys.readouterr().out

    def test_grade_with_deadline(self, capsys, round_robin_backend):
        code = main(
            ["grade", "hello", "--submissions", "hello.correct", "--deadline", "30"]
        )
        assert code == 0
        assert "100.0%" in capsys.readouterr().out

    def test_grade_with_worker_pool(self, capsys):
        # --pool-size implies subprocess isolation; the batch grades
        # through warm pooled interpreters.
        code = main(
            ["grade", "hello", "--submissions", "hello.correct", "--pool-size", "1"]
        )
        assert code == 0
        assert "graded 1 submission(s)" in capsys.readouterr().out

    def test_grade_without_reports_restores_trace_retention(
        self, capsys, round_robin_backend
    ):
        from repro.core.report import trace_reports_enabled

        assert trace_reports_enabled()
        code = main(
            ["grade", "hello", "--submissions", "hello.correct", "--no-dedup"]
        )
        assert code == 0
        # The report-less fast path is scoped to the grade run only.
        assert trace_reports_enabled()


class TestSubprocessFlag:
    def test_run_with_subprocess_flag(self, capsys):
        code = main(["run", "hello", "--subprocess"])
        assert code == 0
        assert "100%" in capsys.readouterr().out

    def test_run_student_file_via_subprocess(self, tmp_path, capsys):
        submission = tmp_path / "student_hello.py"
        submission.write_text(
            "import threading\n"
            "def main(args):\n"
            "    t = threading.Thread(target=lambda: print('Hello Concurrent World'))\n"
            "    t.start()\n"
            "    t.join()\n"
        )
        code = main(["run", "hello", "--submission", str(submission), "--subprocess"])
        assert code == 0

    def test_unknown_suite_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "nachos"])
