"""Tests of the pre-forked worker pool and pooled subprocess execution."""

from __future__ import annotations

import io
import threading

import pytest

from repro.execution.pool_child import read_frame, write_frame
from repro.execution.registry import UnknownMainError
from repro.execution.subprocess_runner import (
    DOCUMENTED_REPRO_VARS,
    SubprocessRunner,
    child_environment,
    kill_active_child,
)
from repro.execution.taxonomy import FailureKind
from repro.execution.worker_pool import PoolError, WorkerPool


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(2) as shared:
        yield shared


@pytest.fixture(scope="module")
def runner(pool):
    return SubprocessRunner(timeout=60.0, pool=pool)


class TestFrameProtocol:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"id": 7, "identifier": "primes.correct"})
        buffer.seek(0)
        assert read_frame(buffer) == {"id": 7, "identifier": "primes.correct"}

    def test_multiple_frames_in_sequence(self):
        buffer = io.BytesIO()
        for index in range(3):
            write_frame(buffer, {"n": index})
        buffer.seek(0)
        assert [read_frame(buffer)["n"] for _ in range(3)] == [0, 1, 2]

    def test_clean_eof_is_none(self):
        assert read_frame(io.BytesIO()) is None

    def test_torn_header_raises(self):
        with pytest.raises(ValueError):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_torn_payload_raises(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"x": 1})
        truncated = buffer.getvalue()[:-2]
        with pytest.raises(ValueError):
            read_frame(io.BytesIO(truncated))

    def test_implausible_length_raises(self):
        with pytest.raises(ValueError):
            read_frame(io.BytesIO(b"\xff\xff\xff\xff"))


class TestEnvironmentHoisting:
    def test_undocumented_repro_vars_stripped(self):
        base = {
            "PATH": "/usr/bin",
            "REPRO_HIDE_PRINTS": "1",
            "REPRO_SECRET_KNOB": "boom",
        }
        env = child_environment(base)
        assert env["PATH"] == "/usr/bin"
        assert env["REPRO_HIDE_PRINTS"] == "1"
        assert "REPRO_SECRET_KNOB" not in env

    def test_documented_vars_all_pass_through(self):
        base = {name: "x" for name in DOCUMENTED_REPRO_VARS}
        assert child_environment(base) == base

    def test_runner_precomputes_both_hidden_variants(self):
        runner = SubprocessRunner(timeout=5.0)
        assert runner._env_by_hidden[False]["REPRO_HIDE_PRINTS"] == "0"
        assert runner._env_by_hidden[True]["REPRO_HIDE_PRINTS"] == "1"


class TestPooledExecution:
    def test_pooled_trace_matches_cold_start(self, runner):
        cold = SubprocessRunner(timeout=60.0).run("primes.correct", ["7", "4"])
        pooled = runner.run("primes.correct", ["7", "4"])
        assert pooled.ok
        assert pooled.root_thread_id == cold.root_thread_id == 23
        assert len(pooled.worker_threads) == len(cold.worker_threads) == 4
        assert sorted(e.raw_line for e in pooled.events) == sorted(
            e.raw_line for e in cold.events
        )

    def test_worker_state_does_not_leak_between_runs(self, runner):
        first = runner.run("primes.correct", ["5", "2"])
        second = runner.run("primes.correct", ["5", "2"])
        # Thread ids restart from the registry's base on every request:
        # a pooled trace is indistinguishable from a fresh interpreter's.
        assert sorted(e.thread_id for e in first.events) == sorted(
            e.thread_id for e in second.events
        )
        assert first.root_thread_id == second.root_thread_id == 23

    def test_hidden_run_produces_nothing(self, runner):
        result = runner.run("primes.correct", ["5", "2"], hide_prints=True)
        assert result.ok
        assert result.events == []
        assert result.output == ""

    def test_unknown_identifier_raises(self, runner):
        with pytest.raises(UnknownMainError):
            runner.run("totally.unknown.program")

    def test_crash_carries_child_error_text(self, runner):
        result = runner.run("faults.crash")
        assert not result.ok
        assert result.failure_kind is FailureKind.CRASH
        assert "injected crash" in result.failure_reason()

    def test_pool_survives_many_dispatches(self, pool, runner):
        for _ in range(4):
            assert runner.run("hello.correct", ["2"]).ok
        assert pool.active_workers() == pool.size


class TestFaultTolerance:
    def test_deadline_kill_and_respawn(self, pool, runner):
        result = runner.run("faults.hang", timeout=2.0)
        assert result.timed_out
        assert not result.ok
        assert result.failure_kind is FailureKind.TIMEOUT
        assert pool.active_workers() == pool.size
        assert runner.run("primes.correct", ["4", "2"]).ok

    def test_submission_killing_its_interpreter_is_a_signal_death(
        self, pool, runner
    ):
        result = runner.run("faults.signal", ["9"])
        assert not result.timed_out
        assert result.signal_number == 9
        assert result.failure_kind is FailureKind.SIGNAL
        assert pool.active_workers() == pool.size

    def test_watchdog_kill_is_reported_as_timeout(self, pool, runner):
        outcomes = {}

        def grade():
            outcomes["result"] = runner.run("faults.hang", timeout=30.0)

        worker = threading.Thread(target=grade)
        worker.start()
        deadline = 10.0
        import time

        started = time.monotonic()
        while not kill_active_child(worker):
            if time.monotonic() - started > deadline:  # pragma: no cover
                pytest.fail("pooled child never registered with the watchdog")
            time.sleep(0.05)
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        result = outcomes["result"]
        assert result.timed_out
        assert result.signal_number is None
        assert pool.active_workers() == pool.size


class TestLifecycle:
    def test_dispatch_after_shutdown_raises(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(PoolError):
            pool.dispatch("primes.correct", ["4", "2"])

    def test_shutdown_ends_every_worker(self):
        pool = WorkerPool(2)
        procs = [worker.proc for worker in pool._workers]
        pool.shutdown()
        assert all(proc.poll() is not None for proc in procs)
        assert pool.active_workers() == 0

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
