"""Unit tests of the program-execution layer (registry, runner, timing)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.execution.registry import (
    UnknownMainError,
    register_main,
    registered_mains,
    resolve_main,
    unregister_main,
)
from repro.execution.runner import ProgramRunner
from repro.execution.timing import TimingResult, TimingSample, speedup, time_program
from repro.tracing import print_property


class TestRegistry:
    def test_register_and_resolve(self):
        @register_main("test.registry.demo")
        def demo(args):
            pass

        try:
            assert resolve_main("test.registry.demo") is demo
            assert "test.registry.demo" in registered_mains()
        finally:
            unregister_main("test.registry.demo")

    def test_reregistration_replaces(self):
        @register_main("test.registry.replace")
        def first(args):
            pass

        @register_main("test.registry.replace")
        def second(args):
            pass

        try:
            assert resolve_main("test.registry.replace") is second
        finally:
            unregister_main("test.registry.replace")

    def test_dotted_path_resolution(self):
        func = resolve_main("repro.workloads.primes.correct:main")
        assert callable(func)

    def test_dotted_path_default_main(self):
        func = resolve_main("repro.workloads.primes.correct")
        assert callable(func)

    def test_unknown_identifier_raises(self):
        with pytest.raises(UnknownMainError, match="no tested program"):
            resolve_main("does.not.exist.anywhere")

    def test_non_callable_attribute_raises(self):
        with pytest.raises(UnknownMainError):
            resolve_main("repro.workloads.primes.spec:RANDOM_NUMBERS")

    def test_unregister_is_idempotent(self):
        unregister_main("never.registered")  # must not raise


class TestRunner:
    def test_runs_to_completion_and_captures(self, runner):
        @register_main("test.runner.basic")
        def basic(args):
            print_property("Echo", args)

        try:
            result = runner.run("test.runner.basic", ["a", "b"])
        finally:
            unregister_main("test.runner.basic")
        assert result.ok
        assert result.args == ["a", "b"]
        assert result.events[0].value == ["a", "b"]
        assert "Echo" in result.output

    def test_root_thread_is_dedicated(self, runner):
        seen = {}

        @register_main("test.runner.root")
        def root(args):
            seen["thread"] = threading.current_thread()
            print_property("X", 1)

        try:
            result = runner.run("test.runner.root")
        finally:
            unregister_main("test.runner.root")
        assert result.root_thread is seen["thread"]
        assert result.root_thread is not threading.current_thread()
        assert result.events[0].thread is seen["thread"]

    def test_workers_collected_in_first_output_order(self, runner):
        @register_main("test.runner.workers")
        def forky(args):
            def w(i):
                print_property("Index", i)

            threads = [threading.Thread(target=w, args=(i,)) for i in range(3)]
            for t in threads:
                t.start()
                t.join()

        try:
            result = runner.run("test.runner.workers")
        finally:
            unregister_main("test.runner.workers")
        assert len(result.worker_threads) == 3
        assert len(result.worker_events()) == 3
        assert result.root_events() == []

    def test_exception_captured_not_raised(self, runner):
        @register_main("test.runner.crash")
        def crash(args):
            raise RuntimeError("student bug")

        try:
            result = runner.run("test.runner.crash")
        finally:
            unregister_main("test.runner.crash")
        assert not result.ok
        assert isinstance(result.exception, RuntimeError)
        assert "student bug" in result.failure_reason()

    def test_timeout_reported(self):
        @register_main("test.runner.slow")
        def slow(args):
            time.sleep(2.0)

        try:
            result = ProgramRunner(timeout=0.1).run("test.runner.slow")
        finally:
            unregister_main("test.runner.slow")
        assert result.timed_out
        assert not result.ok
        assert "did not terminate" in result.failure_reason()

    def test_hidden_run_has_no_events_or_output(self, runner):
        result = runner.run("primes.correct", ["4", "2"], hide_prints=True)
        assert result.ok
        assert result.hidden
        assert result.events == []
        assert result.output == ""

    def test_run_callable_identifier_preserved(self, runner):
        def anon(args):
            print_property("Y", 2)

        result = runner.run_callable(anon, identifier="anon-prog")
        assert result.identifier == "anon-prog"
        assert result.ok

    def test_session_not_leaked_after_crash(self, runner):
        from repro.tracing.session import current_session

        @register_main("test.runner.crash2")
        def crash(args):
            raise ValueError

        try:
            runner.run("test.runner.crash2")
        finally:
            unregister_main("test.runner.crash2")
        assert current_session() is None


class TestTiming:
    def test_samples_collected(self):
        result = time_program("primes.correct", ["3", "2"], runs=3, warmup_runs=0)
        assert result.runs == 3
        assert result.all_ok
        assert result.total > 0
        assert result.minimum <= result.mean

    def test_invalid_runs_rejected(self):
        with pytest.raises(ValueError):
            time_program("primes.correct", [], runs=0)

    def test_duration_override(self):
        result = time_program(
            "primes.correct",
            ["3", "2"],
            runs=2,
            warmup_runs=0,
            duration_of=lambda _execution: 1.5,
        )
        assert result.total == pytest.approx(3.0)

    def test_failure_recorded_per_sample(self):
        @register_main("test.timing.crash")
        def crash(args):
            raise RuntimeError("nope")

        try:
            result = time_program("test.timing.crash", [], runs=2, warmup_runs=0)
        finally:
            unregister_main("test.timing.crash")
        assert not result.all_ok
        assert "nope" in result.first_failure()

    def test_speedup_ratio(self):
        low = TimingResult("x", [], [TimingSample(2.0, True)])
        high = TimingResult("x", [], [TimingSample(1.0, True)])
        assert speedup(low, high) == pytest.approx(2.0)

    def test_speedup_degenerate_high_time(self):
        low = TimingResult("x", [], [TimingSample(2.0, True)])
        high = TimingResult("x", [], [TimingSample(0.0, True)])
        assert speedup(low, high) == 0.0

    def test_stdev_zero_for_single_run(self):
        result = TimingResult("x", [], [TimingSample(1.0, True)])
        assert result.stdev == 0.0

    def test_describe_mentions_stats(self):
        result = TimingResult("prog", ["1"], [TimingSample(1.0, True), TimingSample(2.0, True)])
        text = result.describe()
        assert "total 3.0000s" in text and "2 runs" in text

    def test_failed_samples_excluded_from_aggregates(self):
        # A timed-out run's duration measures the harness, not the
        # program — it must not count toward total/mean/min/stdev.
        result = TimingResult(
            "x",
            [],
            [
                TimingSample(1.0, True),
                TimingSample(20.0, False, "timed out", kind="timeout"),
                TimingSample(3.0, True),
            ],
        )
        assert result.runs == 3 and result.clean_runs == 2
        assert result.total == pytest.approx(4.0)
        assert result.mean == pytest.approx(2.0)
        assert result.minimum == pytest.approx(1.0)
        assert "2 clean runs (1 failed run(s) excluded)" in result.describe()

    def test_speedup_nan_when_no_clean_run(self):
        import math

        clean = TimingResult("x", [], [TimingSample(1.0, True)])
        dirty = TimingResult(
            "x", [], [TimingSample(20.0, False, "timed out", kind="timeout")]
        )
        assert math.isnan(speedup(clean, dirty))
        assert math.isnan(speedup(dirty, clean))
        assert math.isnan(speedup(dirty, dirty))
