"""Tests of the sharded grading service: shards, journals, crash drills.

The service's whole contract is *indistinguishability*: a batch disturbed
by worker kills, heartbeat stalls, torn journal writes, or a coordinator
drain must merge to the same gradebook (modulo timestamps) as an
undisturbed run.  These tests drive real worker processes through the
scripted fault programs of :mod:`repro.execution.faults` and check
exactly that, plus the deterministic plumbing underneath (stable shard
assignment, durable-first journal merge, quarantine of shard-killers).
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
import warnings

import pytest

from repro.execution.faults import (
    SHARD_FAULT_SCENARIOS,
    ShardFaultProgram,
)
from repro.grading import (
    Gradebook,
    GradingJournal,
    GradingService,
    JournalEntry,
    SubmissionRecord,
    TestRecord,
    merge_shard_journals,
    plan_shards,
    shard_of,
)
from repro.obs import ObsRegistry, use_registry


def _worker_env() -> dict:
    """Subprocess env that can import ``repro`` like this process does."""
    import os
    from pathlib import Path

    import repro

    env = dict(os.environ)
    root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def normalized(book: Gradebook) -> str:
    """Canonical gradebook contents with timing fields zeroed."""
    payload = {}
    for student in book.students():
        history = []
        for record in book.submissions_of(student):
            data = record.to_dict()
            data["timestamp"] = 0.0
            data["elapsed"] = 0.0
            history.append(data)
        payload[student] = history
    return json.dumps(payload, sort_keys=True)


def hello_class(size: int) -> dict:
    return {f"student-{i:03d}": "hello.correct" for i in range(size)}


def entry(student: str, *, suite: str = "hello", marker: str = "") -> JournalEntry:
    """A minimal journal entry; *marker* distinguishes duplicates."""
    return JournalEntry(
        student=student,
        identifier=f"{student}.py",
        record=SubmissionRecord(
            student=student,
            suite=suite,
            timestamp=1.0,
            tests=[TestRecord(test_name=marker or "T", score=1.0, max_score=1.0)],
        ),
    )


# ----------------------------------------------------------------------
# Shard assignment
# ----------------------------------------------------------------------
class TestSharding:
    def test_assignment_is_stable_and_order_independent(self):
        students = [f"s{i}" for i in range(50)]
        forward = {s: shard_of(s, 4) for s in students}
        backward = {s: shard_of(s, 4) for s in reversed(students)}
        assert forward == backward
        assert all(0 <= shard < 4 for shard in forward.values())

    def test_assignment_does_not_depend_on_hash_randomization(self):
        # sha256, not hash(): the same roster maps identically in every
        # interpreter, which is what makes journals resumable across
        # coordinator restarts.
        code = (
            "from repro.grading import shard_of;"
            "print([shard_of(f's{i}', 5) for i in range(20)])"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=_worker_env(),
        ).stdout.strip()
        assert out == str([shard_of(f"s{i}", 5) for i in range(20)])

    def test_plan_preserves_batch_order_within_shards(self):
        submissions = {f"s{i}": f"id{i}" for i in range(30)}
        plan = plan_shards(submissions, 3)
        assert sum(len(p) for p in plan) == 30
        order = list(submissions)
        for assigned in plan:
            positions = [order.index(student) for student, _ in assigned]
            assert positions == sorted(positions)

    def test_plan_is_reasonably_balanced(self):
        plan = plan_shards({f"student-{i}": "x" for i in range(400)}, 4)
        sizes = [len(p) for p in plan]
        assert min(sizes) > 0
        assert max(sizes) < 2 * (400 // 4)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_of("alice", 0)


# ----------------------------------------------------------------------
# Journal merge
# ----------------------------------------------------------------------
class TestMerge:
    def test_merge_is_durable_first_within_one_journal(self, tmp_path):
        # A submission graded both before and after a respawn appears
        # twice in one journal; the first (durable-before-the-crash)
        # record wins.
        journal = GradingJournal(tmp_path / "shard-00.jsonl")
        journal.append(entry("alice", marker="first"))
        journal.append(entry("alice", marker="second"))
        book, stats = merge_shard_journals([journal.path], suite="hello")
        assert stats.records == 2
        assert stats.duplicates_dropped == 1
        assert book.latest("alice").tests[0].test_name == "first"

    def test_merge_is_durable_first_across_journals(self, tmp_path):
        a = GradingJournal(tmp_path / "shard-00.jsonl")
        b = GradingJournal(tmp_path / "shard-01.jsonl")
        a.append(entry("alice", marker="shard0"))
        b.append(entry("alice", marker="shard1"))
        b.append(entry("bob", marker="shard1"))
        book, stats = merge_shard_journals([a.path, b.path], suite="hello")
        assert stats.duplicates_dropped == 1
        assert book.latest("alice").tests[0].test_name == "shard0"
        assert book.latest("bob").tests[0].test_name == "shard1"

    def test_merge_output_is_deterministic_in_given_order(self, tmp_path):
        journal = GradingJournal(tmp_path / "shard-00.jsonl")
        for student in ("carol", "alice", "bob"):
            journal.append(entry(student))
        order = ["bob", "alice", "carol", "absent"]
        book, _ = merge_shard_journals(
            [journal.path], suite="hello", order=order
        )
        assert book.students() == ["alice", "bob", "carol"]
        first = normalized(book)
        again, _ = merge_shard_journals(
            [journal.path], suite="hello", order=order
        )
        assert normalized(again) == first

    def test_merge_tolerates_missing_and_torn_journals(self, tmp_path):
        whole = GradingJournal(tmp_path / "shard-00.jsonl")
        whole.append(entry("alice"))
        torn = tmp_path / "shard-01.jsonl"
        torn.write_text('{"student": "bob", "rec')
        with pytest.warns(Warning):
            book, stats = merge_shard_journals(
                [whole.path, torn, tmp_path / "shard-02.jsonl"],
                suite="hello",
            )
        assert book.students() == ["alice"]
        assert stats.journals == 1


# ----------------------------------------------------------------------
# End-to-end service runs (real worker processes)
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def grade(self, submissions, tmp_path, **kwargs):
        kwargs.setdefault("shards", 2)
        kwargs.setdefault("heartbeat_interval", 0.2)
        kwargs.setdefault("heartbeat_timeout", 3.0)
        service = GradingService("hello", workdir=tmp_path / "wd", **kwargs)
        return service.grade(dict(submissions))

    def test_sharded_run_matches_in_process_run(self, tmp_path):
        from repro.execution.supervisor import GradingSupervisor
        from repro.graders import build_named_suite

        submissions = hello_class(8)
        inproc = GradingSupervisor(
            lambda ident: build_named_suite("hello", ident)
        ).grade(dict(submissions))
        report = self.grade(submissions, tmp_path)
        assert normalized(report.gradebook) == normalized(inproc.gradebook)
        assert not report.drained
        assert sum(len(s.graded) for s in report.shards) == 8

    def test_resume_skips_durable_grades(self, tmp_path):
        submissions = hello_class(6)
        workdir = tmp_path / "wd"
        first = GradingService(
            "hello", workdir=workdir, shards=2
        ).grade(dict(submissions))
        again = GradingService(
            "hello", workdir=workdir, shards=2
        ).grade(dict(submissions))
        assert sorted(again.resumed) == sorted(submissions)
        assert normalized(again.gradebook) == normalized(first.gradebook)

    @pytest.mark.parametrize(
        "scenario", SHARD_FAULT_SCENARIOS, ids=lambda s: s.name
    )
    def test_fault_scenarios_recover_to_undisturbed_gradebook(
        self, tmp_path, scenario
    ):
        # The acceptance drill: kill -9 mid-batch, a wedged worker gone
        # silent, a write torn between record and fsync — each must end
        # in a gradebook identical (modulo timestamps) to a calm run.
        submissions = hello_class(8)
        calm = self.grade(submissions, tmp_path / "calm")
        warnings.simplefilter("ignore")
        registry = ObsRegistry(enabled=True)
        with use_registry(registry):
            disturbed = self.grade(
                submissions,
                tmp_path / "disturbed",
                faults={0: scenario.fault},
            )
        assert normalized(disturbed.gradebook) == normalized(calm.gradebook)
        assert sum(s.respawns for s in disturbed.shards) >= 1
        assert registry.counter("service.shards_respawned").value >= 1
        if scenario.fault.kind == "heartbeat-stall":
            assert registry.counter("service.heartbeat_timeouts").value >= 1

    def test_repeated_shard_killer_is_quarantined(self, tmp_path):
        # faults.killer SIGKILLs its own worker from inside the graded
        # run; after quarantine_after deaths the coordinator writes a
        # durable crash record and the rest of the shard still grades.
        submissions = dict(hello_class(4))
        submissions["mallory"] = "faults.killer"
        registry = ObsRegistry(enabled=True)
        with use_registry(registry):
            report = self.grade(
                submissions, tmp_path, shards=1, quarantine_after=2
            )
        assert report.quarantined == ["mallory"]
        record = report.gradebook.latest("mallory")
        assert record.failure_kind == "crash"
        assert "quarantined" in record.tests[0].fatal
        for student in hello_class(4):
            assert report.gradebook.latest(student).percent == 100.0
        assert registry.counter("service.submissions_quarantined").value == 1
        # The quarantine is durable: a resume does not retry the killer.
        again = self.grade(submissions, tmp_path, shards=1)
        assert sorted(again.resumed) == sorted(submissions)

    def test_drain_interrupts_resumably(self, tmp_path):
        submissions = {f"s{i:03d}": "primes.correct" for i in range(200)}
        workdir = tmp_path / "wd"
        service = GradingService(
            "primes", workdir=workdir, shards=2, heartbeat_timeout=10.0
        )
        timer = threading.Timer(1.0, service.drain)
        timer.start()
        try:
            report = service.grade(dict(submissions))
        finally:
            timer.cancel()
        if not report.drained:
            pytest.skip("batch finished before the drain fired")
        graded = set(report.gradebook.students())
        assert graded.isdisjoint(report.interrupted)
        assert graded | set(report.interrupted) == set(submissions)
        # Resume completes the batch; nothing durable is regraded.
        resumed = GradingService(
            "primes", workdir=workdir, shards=2
        ).grade(dict(submissions))
        assert not resumed.drained
        assert set(resumed.gradebook.students()) == set(submissions)
        assert set(resumed.resumed) == graded

    def test_worker_sigterm_drains_and_journals_in_flight_work(self, tmp_path):
        # Drive one worker process directly: SIGTERM mid-batch must let
        # the in-flight submission finish and journal, then exit 0 with
        # a drained event naming the remainder.
        from repro.grading.service import shard_journal_path
        from repro.grading.shard_worker import EVENT_PREFIX

        journal = shard_journal_path(tmp_path, 0)
        manifest = tmp_path / "shard-00.manifest.json"
        manifest.write_text(
            json.dumps(
                {
                    "shard": 0,
                    "suite": "primes",
                    "submissions": [
                        [f"s{i}", "primes.correct"] for i in range(100)
                    ],
                    "journal": str(journal),
                    "supervisor": {"jobs": 1},
                    "heartbeat_interval": 0.2,
                    "fault": None,
                }
            )
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.grading.shard_worker", str(manifest)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=_worker_env(),
        )
        time.sleep(1.5)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        events = [
            json.loads(line[len(EVENT_PREFIX):])
            for line in out.splitlines()
            if line.startswith(EVENT_PREFIX)
        ]
        kinds = [event["event"] for event in events]
        assert "hello" in kinds
        assert "drained" in kinds
        drained = events[kinds.index("drained")]
        durable = set(GradingJournal(journal).completed())
        assert durable, "in-flight work was journaled before exit"
        assert set(drained["remaining"]).isdisjoint(durable)
        assert set(drained["remaining"]) | durable == {
            f"s{i}" for i in range(100)
        }


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_grade_shards_flag_runs_the_service(self, tmp_path, capsys):
        from repro.cli import main

        workdir = tmp_path / "wd"
        out = tmp_path / "book.json"
        code = main(
            [
                "grade",
                "hello",
                "--submissions",
                "hello.correct",
                "--shards",
                "2",
                "--resume",
                str(workdir),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "sharded batch" in printed
        assert Gradebook.load(out).students() == ["hello.correct"]
        assert workdir.exists()

    def test_grade_shards_drain_exits_130_with_resume_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.cli as cli

        class DrainedService:
            def __init__(self, *args, **kwargs):
                self.workdir = kwargs["workdir"]

            def grade(self, submissions):
                from repro.grading.service import MergeStats, ServiceReport

                return ServiceReport(
                    gradebook=Gradebook("hello"),
                    shards=[],
                    merge=MergeStats(),
                    interrupted=list(submissions),
                )

            def merged_dump(self):
                from repro.obs.merge import merge_dumps

                return merge_dumps([])

        import repro.grading

        monkeypatch.setattr(repro.grading, "GradingService", DrainedService)
        code = cli.main(
            [
                "grade",
                "hello",
                "--submissions",
                "hello.correct",
                "--shards",
                "2",
                "--resume",
                str(tmp_path / "wd"),
            ]
        )
        assert code == 130
        assert "rerun with --resume" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Fault program plumbing
# ----------------------------------------------------------------------
class TestShardFaultProgram:
    def test_round_trips_through_manifest_json(self):
        fault = ShardFaultProgram(kind="kill-at-index", index=3, shard=1)
        assert ShardFaultProgram.from_dict(fault.to_dict()) == fault
        assert ShardFaultProgram.from_dict(None).is_none

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ShardFaultProgram(kind="set-fire-to-the-rack")

    def test_scenarios_cover_every_fault_kind(self):
        kinds = {scenario.fault.kind for scenario in SHARD_FAULT_SCENARIOS}
        assert kinds == {"kill-at-index", "heartbeat-stall", "torn-journal-write"}
