"""Tests of the shared workload helpers (+ partition properties)."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.common import (
    SharedCounter,
    fork_and_join,
    generate_randoms,
    int_arg,
    is_odd,
    is_prime,
    partition,
    workload_seed,
)


class TestArgs:
    def test_int_arg_parses(self):
        assert int_arg(["7", "4"], 0, 1) == 7
        assert int_arg(["7", "4"], 1, 1) == 4

    def test_int_arg_defaults_on_missing(self):
        assert int_arg([], 0, 9) == 9

    def test_int_arg_defaults_on_garbage(self):
        assert int_arg(["many"], 0, 9) == 9


class TestRandoms:
    def test_deterministic_for_seed(self):
        assert generate_randoms(5, seed=1) == generate_randoms(5, seed=1)
        assert generate_randoms(5, seed=1) != generate_randoms(5, seed=2)

    def test_bounds_respected(self):
        values = generate_randoms(200, seed=3, low=10, high=20)
        assert all(10 <= v <= 20 for v in values)

    def test_env_seed_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_SEED", "123")
        assert workload_seed() == 123
        monkeypatch.setenv("REPRO_WORKLOAD_SEED", "not-a-number")
        assert workload_seed() == 42

    def test_values_are_python_ints(self):
        assert all(type(v) is int for v in generate_randoms(3))


class TestPredicates:
    @pytest.mark.parametrize("n,expected", [(0, False), (1, False), (2, True), (3, True), (4, False), (9, False), (509, True), (578, False), (997, True)])
    def test_is_prime(self, n, expected):
        assert is_prime(n) is expected

    def test_is_odd(self):
        assert is_odd(3) and not is_odd(4)
        assert is_odd(-3)


class TestPartition:
    def test_seven_over_four(self):
        assert partition(7, 4) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_exact_division(self):
        assert partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_more_parts_than_items(self):
        ranges = partition(2, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [1, 1, 0, 0]

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            partition(5, 0)

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=32))
    def test_partition_is_fair_cover(self, total, parts):
        ranges = partition(total, parts)
        assert len(ranges) == parts
        # Contiguous cover of [0, total)
        position = 0
        for lo, hi in ranges:
            assert lo == position
            assert hi >= lo
            position = hi
        assert position == total
        # Fair: sizes differ by at most one
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestSharedCounter:
    def test_locked_add_is_exact_under_contention(self):
        counter = SharedCounter()

        def hammer():
            for _ in range(1000):
                counter.add(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000

    def test_racy_add_loses_updates_under_gated_interleaving(self):
        from repro.simulation.backend import SimulationBackend

        backend = SimulationBackend()
        from repro.simulation.backend import use_backend

        counter = SharedCounter()
        with use_backend(backend):
            def body():
                counter.add_racy(1, gap=0.0)

            threads = [backend.spawn(body) for _ in range(4)]
            backend.start_all(threads)
            backend.join_all(threads)
        # Round-robin switches between every read and write: all four
        # workers read 0, so only one increment survives.
        assert counter.value == 1


class TestForkAndJoin:
    def test_runs_every_body_on_a_fresh_thread(self):
        seen = []
        lock = threading.Lock()

        def body():
            with lock:
                seen.append(threading.current_thread())

        fork_and_join([body, body, body])
        assert len(seen) == 3
        assert len(set(seen)) == 3
        assert threading.current_thread() not in seen

    def test_empty_body_list_is_noop(self):
        fork_and_join([])
