"""Tests of the multi-round fork-join extension (Jacobi)."""

from __future__ import annotations

import pytest

from repro.core.multiround import build_multi_round_trace
from repro.core.outcome import Aspect
from repro.core.properties import ARRAY, NUMBER, PropertySpec
from repro.core.trace_model import PhaseSpecs
from repro.execution.runner import ProgramRunner
from repro.graders.jacobi import JacobiFunctionality
from repro.testfw.result import AspectStatus
from repro.workloads.jacobi.spec import initial_grid, stencil
from tests.helpers import synthetic_execution

ROUND_PRE = [PropertySpec("Round", NUMBER)]
ROUND_POST = [PropertySpec("Global Max Delta", NUMBER)]
FINAL_POST = [PropertySpec("Final Heat", ARRAY)]
WORKER_SPECS = PhaseSpecs(
    iteration=[PropertySpec("Cell", NUMBER), PropertySpec("New Heat", NUMBER)],
    post_iteration=[PropertySpec("Chunk Max Delta", NUMBER)],
)


def build(schedule):
    return build_multi_round_trace(
        synthetic_execution(schedule),
        round_pre=ROUND_PRE,
        round_post=ROUND_POST,
        final_post=FINAL_POST,
        worker_specs=WORKER_SPECS,
    )


def two_round_schedule():
    return [
        ("R", "Round", 0),
        ("A", "Cell", 0),
        ("A", "New Heat", 1.0),
        ("B", "Cell", 1),
        ("B", "New Heat", 2.0),
        ("A", "Chunk Max Delta", 1.0),
        ("B", "Chunk Max Delta", 2.0),
        ("R", "Global Max Delta", 2.0),
        ("R", "Round", 1),
        ("A", "Cell", 0),
        ("A", "New Heat", 1.5),
        ("B", "Cell", 1),
        ("B", "New Heat", 1.5),
        ("A", "Chunk Max Delta", 0.5),
        ("B", "Chunk Max Delta", 0.5),
        ("R", "Global Max Delta", 0.5),
        ("R", "Final Heat", [1.5, 1.5]),
    ]


class TestTraceBuilder:
    def test_rounds_carved_correctly(self):
        trace = build(two_round_schedule())
        assert len(trace.rounds) == 2
        assert trace.structure_errors == []
        for index, round_trace in enumerate(trace.rounds):
            assert round_trace.pre.values["Round"] == index
            assert round_trace.post is not None
            assert round_trace.worker_count == 2
            assert round_trace.total_iterations == 2
        assert trace.final_post_join is not None
        assert trace.final_post_join.values["Final Heat"] == [1.5, 1.5]

    def test_worker_before_any_round_flagged(self):
        schedule = [("A", "Cell", 0)] + two_round_schedule()
        trace = build(schedule)
        assert any("outside any round" in e for e in trace.structure_errors)

    def test_missing_round_post_flagged(self):
        schedule = two_round_schedule()
        # Drop round 0's Global Max Delta; round 1's "Round" print follows.
        del schedule[7]
        trace = build(schedule)
        assert any(
            "expected its post-join properties" in e
            for e in trace.rounds[0].structure_errors
        )

    def test_unexpected_root_output_flagged(self):
        schedule = two_round_schedule()
        schedule.insert(8, ("R", "Debug", 1))
        trace = build(schedule)
        assert any("unexpected root output" in e for e in trace.structure_errors)

    def test_missing_final_post_join(self):
        schedule = two_round_schedule()[:-1]
        trace = build(schedule)
        assert trace.final_post_join is None


class TestJacobiGraderScores:
    def test_correct_full_marks(self, round_robin_backend):
        result = JacobiFunctionality("jacobi.correct").run()
        assert result.percent == pytest.approx(100.0), result.render()

    def test_in_place_update_pinpointed(self, round_robin_backend):
        result = JacobiFunctionality("jacobi.in_place").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert Aspect.ITERATION_SEMANTICS in failed
        message = next(
            o.message
            for o in result.failed_aspects()
            if o.aspect == Aspect.ITERATION_SEMANTICS
        )
        assert "double" in message  # names the likely cause

    def test_missing_round_is_a_structure_error(self, round_robin_backend):
        result = JacobiFunctionality("jacobi.missing_round").run()
        statuses = {o.aspect: o.status for o in result.outcomes}
        assert statuses[Aspect.FORK_SYNTAX] is AspectStatus.FAILED
        assert statuses[Aspect.ITERATION_SEMANTICS] is AspectStatus.SKIPPED
        failed_message = next(
            o.message for o in result.failed_aspects()
        )
        assert "2 rounds but the problem requires exactly 3" in failed_message

    def test_wrong_global_delta_fails_post_join_only(self, round_robin_backend):
        result = JacobiFunctionality("jacobi.wrong_global_delta").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert failed == {Aspect.POST_JOIN_SEMANTICS}
        message = next(o.message for o in result.failed_aspects())
        assert "max()" in message

    def test_no_round_barrier_is_a_structure_error(self, round_robin_backend):
        result = JacobiFunctionality("jacobi.no_round_barrier").run()
        statuses = {o.aspect: o.status for o in result.outcomes}
        assert statuses[Aspect.FORK_SYNTAX] is AspectStatus.FAILED

    def test_scores_rank_sensibly(self, round_robin_backend):
        scores = {
            ident: JacobiFunctionality(ident).run().score
            for ident in [
                "jacobi.correct",
                "jacobi.wrong_global_delta",
                "jacobi.in_place",
                "jacobi.missing_round",
            ]
        }
        assert (
            scores["jacobi.correct"]
            > scores["jacobi.wrong_global_delta"]
            > scores["jacobi.in_place"]
            > scores["jacobi.missing_round"]
        )

    def test_rounds_are_committed_between_episodes(self, round_robin_backend):
        """The checker's tracked grid must advance round over round: the
        third round's stencil values differ from the first's."""
        checker = JacobiFunctionality("jacobi.correct")
        result = checker.run()
        assert result.percent == pytest.approx(100.0)
        trace = checker.last_multi_round_trace
        heats_round0 = [
            t.values["New Heat"] for w in trace.rounds[0].workers for t in w.iterations
        ]
        heats_round2 = [
            t.values["New Heat"] for w in trace.rounds[2].workers for t in w.iterations
        ]
        assert heats_round0 != heats_round2


class TestReferenceStencil:
    def test_initial_grid(self):
        assert initial_grid(4) == [100.0, 0.0, 0.0, 0.0]
        assert initial_grid(0) == []

    def test_stencil_edges_clamp(self):
        grid = [9.0, 3.0, 6.0]
        assert stencil(grid, 0) == pytest.approx((9.0 + 9.0 + 3.0) / 3)
        assert stencil(grid, 2) == pytest.approx((3.0 + 6.0 + 6.0) / 3)

    def test_heat_is_conserved_by_reference_update(self):
        """Interior-only sanity: total heat decays only at edges; with
        clamped edges the update is an average, so values stay within
        the initial range."""
        grid = initial_grid(6)
        for _ in range(10):
            grid = [stencil(grid, i) for i in range(len(grid))]
        assert all(0.0 <= v <= 100.0 for v in grid)

    def test_workload_thread_count_matches_arg(self, round_robin_backend):
        result = ProgramRunner().run("jacobi.correct", ["12", "4", "2"])
        names = [e.name for e in result.events]
        assert names.count("Round") == 2
        assert names.count("Chunk Max Delta") == 8  # 4 threads x 2 rounds
