"""Happens-before canonicalization and the schedule oracle.

The load-bearing properties of ``repro.execution.equivalence``:

* the canonical key is invariant under swapping adjacent *commuting*
  events (different workers, at least one ``trace``) and changed by
  swapping adjacent *conflicting* ones — the Mazurkiewicz invariant
  dedup leans on;
* the oracle's offline simulation predicts the exact happens-before key
  of real executed runs, across strategies and seeds, for the programs
  the explorer dedups.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.equivalence import (
    COMMUTING_KINDS,
    ScheduleEvent,
    ScheduleOracle,
    canonical_form,
    events_conflict,
    executed_events,
    happens_before_key,
)
from repro.execution.runner import ProgramRunner, in_process_session_lock
from repro.execution.scheduling import (
    PCTStrategy,
    RandomWalkStrategy,
    ScheduleDecision,
    ScheduleTrace,
    ScheduledBackend,
)
from repro.simulation.backend import use_backend

import repro.workloads  # noqa: F401 - registers the tested programs


# ----------------------------------------------------------------------
# Synthetic traces: the event-model round trip
# ----------------------------------------------------------------------
def trace_from_events(events, deadlocked=False):
    """Build a trace whose ``executed_events`` equal *events*.

    Decision *i*'s point is event *i - 1*'s kind (the yield that ended
    the previous segment); the last event's kind is implied by the
    trace ending, so callers must give it kind ``retire`` (or ``block``
    with ``deadlocked=True``) for the round trip to hold.
    """
    workers = sorted({e.worker for e in events})
    decisions = [
        ScheduleDecision(
            step=i,
            point="start" if i == 0 else events[i - 1].kind,
            ready=list(workers),
            chosen=e.worker,
        )
        for i, e in enumerate(events)
    ]
    return ScheduleTrace(
        identifier="synthetic",
        strategy="synthetic",
        workers={k: f"worker-{k}" for k in workers},
        decisions=decisions,
        deadlocked=deadlocked,
    )


#: Event bodies for the property tests: 2-3 workers, the two kinds that
#: matter for commutation (``trace`` commutes, ``checkpoint`` conflicts).
_events = st.lists(
    st.builds(
        ScheduleEvent,
        worker=st.integers(min_value=0, max_value=2),
        kind=st.sampled_from(["trace", "checkpoint"]),
    ),
    min_size=2,
    max_size=12,
)


def _close(events):
    """Append the implied final segment so the round trip holds."""
    return events + [ScheduleEvent(worker=events[-1].worker, kind="retire")]


class TestEventModel:
    def test_round_trip(self):
        events = _close(
            [ScheduleEvent(0, "trace"), ScheduleEvent(1, "checkpoint")]
        )
        assert executed_events(trace_from_events(events)) == events

    def test_deadlocked_run_ends_in_block(self):
        events = [ScheduleEvent(0, "lock-acquire"), ScheduleEvent(1, "block")]
        trace = trace_from_events(events, deadlocked=True)
        assert executed_events(trace)[-1].kind == "block"

    def test_conflict_relation(self):
        assert events_conflict(ScheduleEvent(0, "trace"), ScheduleEvent(0, "trace"))
        assert not events_conflict(
            ScheduleEvent(0, "trace"), ScheduleEvent(1, "trace")
        )
        assert not events_conflict(
            ScheduleEvent(0, "trace"), ScheduleEvent(1, "checkpoint")
        )
        assert events_conflict(
            ScheduleEvent(0, "checkpoint"), ScheduleEvent(1, "checkpoint")
        )
        assert events_conflict(
            ScheduleEvent(0, "retire"), ScheduleEvent(1, "checkpoint")
        )

    def test_only_trace_commutes(self):
        # The soundness argument in the module docstring depends on the
        # dependence relation staying exactly this tight: a wider
        # commuting set would merge schedules that grade differently.
        assert COMMUTING_KINDS == frozenset({"trace"})


class TestCanonicalKeyProperties:
    @settings(max_examples=200, deadline=None)
    @given(_events, st.integers(min_value=0))
    def test_key_invariant_under_commuting_swaps(self, body, index):
        events = _close(body)
        # Swap strictly inside the body (the final retire is implied by
        # trace shape, not by a recorded decision, so it stays put).
        i = index % (len(events) - 2) if len(events) > 2 else 0
        a, b = events[i], events[i + 1]
        if events_conflict(a, b):
            return  # only commuting swaps are claimed invariant
        swapped = list(events)
        swapped[i], swapped[i + 1] = b, a
        assert happens_before_key(trace_from_events(events)) == happens_before_key(
            trace_from_events(swapped)
        )

    @settings(max_examples=200, deadline=None)
    @given(_events, st.integers(min_value=0))
    def test_key_changed_by_conflicting_swaps(self, body, index):
        events = _close(body)
        i = index % (len(events) - 2) if len(events) > 2 else 0
        a, b = events[i], events[i + 1]
        if a.worker == b.worker or not events_conflict(a, b):
            return  # same-worker swaps reorder program order: not a schedule
        swapped = list(events)
        swapped[i], swapped[i + 1] = b, a
        assert happens_before_key(trace_from_events(events)) != happens_before_key(
            trace_from_events(swapped)
        )

    def test_deadlock_verdict_is_part_of_the_key(self):
        events = [ScheduleEvent(0, "checkpoint"), ScheduleEvent(0, "retire")]
        alive = trace_from_events(events)
        dead = trace_from_events(
            [ScheduleEvent(0, "checkpoint"), ScheduleEvent(0, "block")],
            deadlocked=True,
        )
        assert happens_before_key(alive) != happens_before_key(dead)

    def test_canonical_form_shape(self):
        events = _close([ScheduleEvent(0, "trace"), ScheduleEvent(1, "checkpoint")])
        form = canonical_form(trace_from_events(events))
        assert form["program_order"] == {"0": ["trace"], "1": ["checkpoint", "retire"]}
        assert form["conflict_order"] == [[1, "checkpoint"], [1, "retire"]]
        assert form["deadlocked"] is False


# ----------------------------------------------------------------------
# The oracle against real executions
# ----------------------------------------------------------------------
def run_controlled(identifier, strategy, args=()):
    backend = ScheduledBackend(strategy)
    with in_process_session_lock():
        with use_backend(backend):
            ProgramRunner(timeout=30.0).run(identifier, list(args))
    return backend.schedule_trace(identifier)


@pytest.mark.parametrize(
    "identifier",
    ["synclab.lost_update", "synclab.guarded", "primes.racy", "primes.correct"],
)
def test_oracle_predicts_real_keys_exactly(identifier):
    base = run_controlled(identifier, RandomWalkStrategy(0))
    oracle = ScheduleOracle.from_trace(base)
    assert oracle is not None, f"oracle refused a clean trace of {identifier}"
    for seed in range(1, 6):
        strategy = RandomWalkStrategy(seed)
        predicted = oracle.predict_key(strategy.clone())
        actual = happens_before_key(run_controlled(identifier, strategy))
        assert predicted == actual, f"{identifier} seed {seed}"


def test_oracle_predicts_pct_schedules():
    base = run_controlled("synclab.lost_update", RandomWalkStrategy(0))
    oracle = ScheduleOracle.from_trace(base)
    assert oracle is not None
    for seed in range(4):
        strategy = PCTStrategy(seed, depth=2)
        predicted = oracle.predict_key(strategy.clone())
        actual = happens_before_key(
            run_controlled("synclab.lost_update", strategy)
        )
        assert predicted == actual, f"pct seed {seed}"


def test_oracle_refuses_unsupported_traces():
    assert ScheduleOracle.from_trace(ScheduleTrace()) is None
    dead = ScheduleTrace(
        decisions=[ScheduleDecision(0, "start", [0], 0)], deadlocked=True
    )
    assert ScheduleOracle.from_trace(dead) is None


def test_oracle_refuses_tryacquire_traces():
    # A lock-tryacquire probe's outcome depends on who holds the lock at
    # re-grant time, which the offline simulation does not model; the
    # oracle must refuse such traces rather than mispredict keys.
    trace = ScheduleTrace(
        decisions=[
            ScheduleDecision(0, "start", [0, 1], 0),
            ScheduleDecision(1, "lock-tryacquire", [0, 1], 1, lock=0),
            ScheduleDecision(2, "retire", [1], 1),
        ]
    )
    assert ScheduleOracle.from_trace(trace) is None
