"""Schedule-search strategies: PCT, happens-before dedup, exhaustive.

Pins the behaviour the verdicts stand on:

* PCT campaigns are deterministic and their findings replay;
* dedup never executes a schedule whose happens-before key was already
  graded (and without it every candidate runs);
* the exhaustive census for the small synclab workloads is *exact* —
  ``8 of 26`` for the lost update, ``0 of 40`` for the guarded variant —
  and identical across runs;
* ``failure_rate`` divides by executed schedules, not enumerated ones;
* the supervisor, gradebook, HTML report, CSV export, and CLI all carry
  the ``N of M interleavings fail`` verdict through unchanged.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser
from repro.execution.equivalence import happens_before_key
from repro.execution.exploration import (
    STRATEGY_CHOICES,
    ExplorationReport,
    ScheduleExplorer,
)
from repro.execution.supervisor import GradingSupervisor
from repro.grading.export import gradebook_csv
from repro.grading.html_report import gradebook_html
from repro.grading.records import SubmissionRecord
from repro.graders import PrimesFunctionality
from repro.graders.suites import build_synclab_suite
from repro.graders.synclab import SyncLabCounterFunctionality
from repro.testfw.result import SuiteResult, TestResult


def lost_update_factory():
    return lambda: SyncLabCounterFunctionality(
        "synclab.lost_update", workers=2, rounds=1
    )

def guarded_factory():
    return lambda: SyncLabCounterFunctionality(
        "synclab.guarded", workers=2, rounds=1
    )

def primes_factory(identifier="primes.racy"):
    return lambda: PrimesFunctionality(identifier, num_randoms=12, num_threads=3)


class KeyLoggingExplorer(ScheduleExplorer):
    """Explorer that records the happens-before key of every *executed*
    run — the dedup guarantee is exactly "this list has no repeats"."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.executed_keys = []

    def run_one(self, strategy):
        result, trace = super().run_one(strategy)
        self.executed_keys.append(happens_before_key(trace))
        return result, trace


# ----------------------------------------------------------------------
# PCT
# ----------------------------------------------------------------------
class TestPCTExploration:
    def test_finds_the_racy_bug_and_is_deterministic(self):
        def campaign():
            return ScheduleExplorer(
                primes_factory(), schedules=6, first_seed=0, strategy="pct", depth=3
            ).run()

        report_a, report_b = campaign(), campaign()
        assert report_a.bug_found
        assert report_a.depth == 3
        assert report_a.findings[0].strategy_label.startswith("pct:")
        assert [f.strategy_label for f in report_a.findings] == [
            f.strategy_label for f in report_b.findings
        ]
        assert report_a.first_failing_seed == report_b.first_failing_seed

    def test_pct_finding_replays_decision_for_decision(self):
        explorer = ScheduleExplorer(
            primes_factory(), schedules=6, first_seed=0, strategy="pct", depth=3
        )
        report = explorer.run()
        trace = report.first_failing_trace()
        assert trace is not None
        result, replayed = explorer.replay(trace)
        assert replayed.divergence == ""
        assert result.score < result.max_score
        assert [d.to_dict() for d in replayed.decisions] == [
            d.to_dict() for d in trace.decisions
        ]


# ----------------------------------------------------------------------
# Happens-before dedup
# ----------------------------------------------------------------------
class TestDedup:
    def test_never_reexecutes_a_seen_key(self):
        explorer = KeyLoggingExplorer(
            lost_update_factory(), schedules=20, first_seed=0
        )
        report = explorer.run()
        assert report.mispredicted == 0
        assert report.deduped > 0
        assert report.executed + report.deduped == report.schedules_tried
        assert len(set(explorer.executed_keys)) == len(explorer.executed_keys)
        assert report.distinct == len(explorer.executed_keys)

    def test_dedup_off_executes_every_candidate(self):
        report = ScheduleExplorer(
            lost_update_factory(), schedules=20, first_seed=0, dedup=False
        ).run()
        assert report.executed == report.schedules_tried == 20
        assert report.deduped == 0

    def test_dedup_preserves_the_verdict(self):
        on = ScheduleExplorer(lost_update_factory(), schedules=20).run()
        off = ScheduleExplorer(
            lost_update_factory(), schedules=20, dedup=False
        ).run()
        assert on.bug_found == off.bug_found
        # Same seeds, same schedules — the first failing seed agrees.
        assert on.first_failing_seed == off.first_failing_seed


# ----------------------------------------------------------------------
# Exhaustive enumeration: exact, stable censuses
# ----------------------------------------------------------------------
class TestExhaustive:
    def run_exhaustive(self, factory, **kwargs):
        kwargs.setdefault("depth", 2)
        kwargs.setdefault("max_schedules", 256)
        return ScheduleExplorer(factory, strategy="exhaustive", **kwargs).run()

    def test_lost_update_census_is_exactly_8_of_26(self):
        report = self.run_exhaustive(lost_update_factory())
        assert report.enumerated == 26
        assert report.failing_interleavings == 8
        assert report.complete is True
        assert "racy: 8 of 26 distinct interleavings fail" in report.summary()

    def test_census_is_identical_across_runs(self):
        first = self.run_exhaustive(lost_update_factory())
        second = self.run_exhaustive(lost_update_factory())
        assert (first.enumerated, first.failing_interleavings, first.complete) == (
            second.enumerated,
            second.failing_interleavings,
            second.complete,
        )

    def test_guarded_census_is_0_of_40(self):
        report = self.run_exhaustive(guarded_factory())
        assert report.enumerated == 40
        assert report.failing_interleavings == 0
        assert report.complete is True
        assert not report.bug_found
        assert "schedule-independence within the bound" in report.summary()

    def test_dedup_shrinks_executions_but_not_the_census(self):
        on = self.run_exhaustive(lost_update_factory())
        off = self.run_exhaustive(lost_update_factory(), dedup=False)
        assert (on.executed, on.deduped) == (14, 12)
        assert (off.executed, off.deduped) == (26, 0)
        assert on.enumerated == off.enumerated == 26
        assert on.failing_interleavings == off.failing_interleavings == 8

    def test_budget_cap_marks_coverage_partial(self):
        report = self.run_exhaustive(lost_update_factory(), max_schedules=5)
        assert report.executed <= 5
        assert report.complete is False
        assert "budget-capped" in report.summary()
        assert "coverage partial" in (report.coverage_statement() or "")


# ----------------------------------------------------------------------
# failure_rate regression (previously divided by enumerated schedules)
# ----------------------------------------------------------------------
class TestFailureRate:
    def finding(self):
        from repro.execution.exploration import ExplorationFinding
        from repro.execution.scheduling import ScheduleTrace

        return ExplorationFinding(
            strategy_label="random-walk:0",
            seed=0,
            score=0.0,
            max_score=10.0,
            failed_aspects=["semantics"],
            messages=["boom"],
            trace=ScheduleTrace(),
        )

    def test_denominator_is_executed_not_tried(self):
        report = ExplorationReport(
            schedules_tried=10,
            strategy="random-walk",
            first_seed=0,
            findings=[self.finding()],
            executed=5,
            deduped=5,
        )
        assert report.failure_rate == pytest.approx(0.2)

    def test_legacy_reports_fall_back_to_tried(self):
        report = ExplorationReport(
            schedules_tried=10,
            strategy="random-walk",
            first_seed=0,
            findings=[self.finding()],
        )
        assert report.failure_rate == pytest.approx(0.1)

    def test_empty_campaign_is_zero(self):
        report = ExplorationReport(
            schedules_tried=0, strategy="random-walk", first_seed=0
        )
        assert report.failure_rate == 0.0


# ----------------------------------------------------------------------
# Supervisor + report surfaces carry the census through
# ----------------------------------------------------------------------
class TestSupervisorExhaustive:
    @pytest.fixture(scope="class")
    def report(self):
        supervisor = GradingSupervisor(
            build_synclab_suite,
            explore_schedules=64,
            explore_strategy="exhaustive",
            explore_depth=2,
        )
        return supervisor.grade(
            {"alice": "synclab.lost_update", "bob": "synclab.guarded"}
        )

    def test_record_carries_the_census(self, report):
        alice = report.gradebook.latest("alice")
        assert alice.racy
        assert alice.schedule_seed is None
        assert alice.schedule_strategy == "exhaustive"
        assert alice.interleavings_failing == 8
        assert alice.interleavings_total == 26
        assert alice.interleavings_complete is True
        assert alice.schedule_tag() == "8 of 26 interleavings fail"
        assert "exhaustive:8of26" in alice.attempt_outcomes

    def test_guarded_submission_is_clean(self, report):
        bob = report.gradebook.latest("bob")
        assert not bob.racy
        assert bob.interleavings_total is None
        assert bob.schedule_tag() == ""

    def test_census_survives_a_dict_round_trip(self, report):
        alice = report.gradebook.latest("alice")
        clone = SubmissionRecord.from_dict(alice.to_dict())
        assert clone.interleavings_failing == 8
        assert clone.interleavings_total == 26
        assert clone.interleavings_complete is True
        assert clone.schedule_tag() == alice.schedule_tag()

    def test_batch_summary_quotes_the_census(self, report):
        assert "alice (8 of 26 interleavings fail)" in report.summary()

    def test_gradebook_render_tags_the_racy_row(self, report):
        assert "[racy 8 of 26 interleavings fail]" in report.gradebook.render()

    def test_html_report_has_a_schedules_column(self, report):
        html = gradebook_html(report.gradebook)
        assert "<th>schedules</th>" in html
        assert "racy: 8 of 26 interleavings fail" in html

    def test_csv_export_has_the_census_columns(self, report):
        csv_text = gradebook_csv(report.gradebook)
        header, *rows = csv_text.splitlines()
        assert header.endswith(
            "interleavings_failing,interleavings_total,"
            "concurrency_verdict,race_count,race_pairs"
        )
        alice_row = next(r for r in rows if r.startswith("alice,"))
        # Race detection was off for this batch: the census columns are
        # populated, the race columns are empty.
        assert alice_row.endswith(",8,26,,,")

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            GradingSupervisor(build_synclab_suite, explore_strategy="chaos")


class TestSeededTagStillWorks:
    def test_schedule_tag_prefers_census_over_seed(self):
        record = SubmissionRecord.from_suite_result(
            "s",
            SuiteResult("synclab", [TestResult("T", 0.0, 10.0)]),
            schedule_seed=3,
        )
        assert record.schedule_tag() == "@seed 3"
        record.interleavings_failing = 2
        record.interleavings_total = 9
        assert record.schedule_tag() == "2 of 9+ interleavings fail"
        record.interleavings_complete = True
        assert record.schedule_tag() == "2 of 9 interleavings fail"


# ----------------------------------------------------------------------
# CLI vocabulary stays in lockstep with the strategy registry
# ----------------------------------------------------------------------
class TestCliStrategyChoices:
    def _action(self, command, flag):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        sub = subparsers.choices[command]
        return next(a for a in sub._actions if flag in a.option_strings)

    def test_explore_strategy_choices_match_registry(self):
        action = self._action("explore", "--strategy")
        assert tuple(action.choices) == STRATEGY_CHOICES

    def test_grade_exploration_strategies_are_a_registry_subset(self):
        action = self._action("grade", "--explore-strategy")
        choices = tuple(action.choices)
        assert choices == ("random-walk", "pct", "exhaustive")
        assert set(choices) <= set(STRATEGY_CHOICES)
