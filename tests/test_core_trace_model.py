"""Unit tests of phased-trace construction from raw event logs."""

from __future__ import annotations

import pytest

from repro.core.properties import ARRAY, BOOLEAN, NUMBER, PropertySpec
from repro.core.trace_model import PhaseSpecs, build_phased_trace
from tests.helpers import primes_schedule, synthetic_execution

PRIMES_SPECS = PhaseSpecs(
    pre_fork=[PropertySpec("Random Numbers", ARRAY)],
    iteration=[
        PropertySpec("Index", NUMBER),
        PropertySpec("Number", NUMBER),
        PropertySpec("Is Prime", BOOLEAN),
    ],
    post_iteration=[PropertySpec("Num Primes", NUMBER)],
    post_join=[PropertySpec("Total Num Primes", NUMBER)],
)


class TestPhasePartitioning:
    def test_standard_trace_partitions_cleanly(self):
        execution = synthetic_execution(primes_schedule())
        trace = build_phased_trace(execution, PRIMES_SPECS)
        assert [e.name for e in trace.pre_fork_events] == ["Random Numbers"]
        assert [e.name for e in trace.post_join_events] == ["Total Num Primes"]
        assert trace.mid_fork_root_events == []
        assert trace.worker_count == 4
        assert trace.total_iterations == 7
        assert trace.structure_errors() == []

    def test_values_are_live_objects(self):
        execution = synthetic_execution(primes_schedule())
        trace = build_phased_trace(execution, PRIMES_SPECS)
        assert trace.pre_fork.values["Random Numbers"] == [509, 578, 796, 129, 272, 594, 714]
        assert isinstance(trace.post_join.values["Total Num Primes"], int)

    def test_iteration_tuples_grouped_per_thread(self):
        execution = synthetic_execution(primes_schedule())
        trace = build_phased_trace(execution, PRIMES_SPECS)
        by_id = {w.thread_id: w for w in trace.workers}
        counts = sorted(w.iteration_count for w in trace.workers)
        assert counts == [1, 2, 2, 2]
        for worker in trace.workers:
            assert worker.post_iteration is not None
            assert set(worker.iterations[0].values) == {"Index", "Number", "Is Prime"}
        assert len(by_id) == 4

    def test_workers_ordered_by_first_output(self):
        execution = synthetic_execution(primes_schedule())
        trace = build_phased_trace(execution, PRIMES_SPECS)
        first_seqs = [w.events[0].seq for w in trace.workers]
        assert first_seqs == sorted(first_seqs)

    def test_root_output_during_fork_flagged(self):
        schedule = primes_schedule()
        # Inject a root print in the middle of the fork phase.
        schedule.insert(5, ("R", "Debug", "oops"))
        execution = synthetic_execution(schedule)
        trace = build_phased_trace(execution, PRIMES_SPECS)
        assert len(trace.mid_fork_root_events) == 1
        assert any("during the fork phase" in e for e in trace.structure_errors())

    def test_no_workers_everything_is_pre_fork(self):
        execution = synthetic_execution(
            [("R", "Random Numbers", [1, 2]), ("R", "Total Num Primes", 1)]
        )
        trace = build_phased_trace(execution, PRIMES_SPECS)
        assert len(trace.pre_fork_events) == 2
        assert trace.post_join_events == []
        assert trace.worker_count == 0


class TestStructureErrors:
    def test_torn_iteration_tuple_reported(self):
        schedule = [
            ("R", "Random Numbers", [5, 7]),
            ("A", "Index", 0),
            ("A", "Number", 5),
            # "Is Prime" missing -> next tuple starts early
            ("A", "Index", 1),
            ("A", "Number", 7),
            ("A", "Is Prime", True),
            ("A", "Num Primes", 2),
            ("R", "Total Num Primes", 2),
        ]
        trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
        [worker] = trace.workers
        assert worker.iteration_count == 1  # only the complete tuple
        assert any("was expected" in e for e in worker.structure_errors)

    def test_missing_post_iteration_reported(self):
        schedule = [
            ("R", "Random Numbers", [5]),
            ("A", "Index", 0),
            ("A", "Number", 5),
            ("A", "Is Prime", True),
            ("R", "Total Num Primes", 1),
        ]
        trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
        [worker] = trace.workers
        assert worker.post_iteration is None
        assert any("without printing its" in e for e in worker.structure_errors)

    def test_duplicate_post_iteration_reported(self):
        schedule = [
            ("R", "Random Numbers", [5]),
            ("A", "Index", 0),
            ("A", "Number", 5),
            ("A", "Is Prime", True),
            ("A", "Num Primes", 1),
            ("A", "Num Primes", 1),
            ("R", "Total Num Primes", 1),
        ]
        trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
        [worker] = trace.workers
        assert any("more than once" in e for e in worker.structure_errors)

    def test_unmatched_worker_line_reported(self):
        schedule = [
            ("R", "Random Numbers", [5]),
            ("A", "Garbage", 42),
            ("A", "Index", 0),
            ("A", "Number", 5),
            ("A", "Is Prime", True),
            ("A", "Num Primes", 1),
            ("R", "Total Num Primes", 1),
        ]
        trace = build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)
        [worker] = trace.workers
        assert any("matches no declared" in e for e in worker.structure_errors)
        assert worker.iteration_count == 1

    def test_no_worker_specs_means_unconstrained(self):
        specs = PhaseSpecs()
        schedule = [("A", "str", "Hello Concurrent World")]
        trace = build_phased_trace(synthetic_execution(schedule), specs)
        [worker] = trace.workers
        assert worker.structure_errors == []
        assert worker.iterations == []


class TestLookups:
    def test_worker_by_id(self):
        execution = synthetic_execution(primes_schedule())
        trace = build_phased_trace(execution, PRIMES_SPECS)
        known = trace.workers[0].thread_id
        assert trace.worker_by_id(known) is trace.workers[0]
        assert trace.worker_by_id(9999) is None

    def test_root_tuple_none_when_no_events(self):
        execution = synthetic_execution([("A", "Index", 0)])
        trace = build_phased_trace(execution, PRIMES_SPECS)
        assert trace.pre_fork is None
        assert trace.post_join is None
