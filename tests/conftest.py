"""Shared fixtures for the fork-join infrastructure tests."""

from __future__ import annotations

import pytest

import repro.workloads  # noqa: F401 - registers every workload variant
from repro.execution.runner import ProgramRunner
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RoundRobinPolicy, SerializedPolicy
from repro.tracing.session import current_session


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test must start and end without an active trace session."""
    assert current_session() is None, "a previous test leaked a trace session"
    yield
    assert current_session() is None, "this test leaked a trace session"


@pytest.fixture
def runner() -> ProgramRunner:
    return ProgramRunner(timeout=20.0)


@pytest.fixture
def round_robin_backend():
    """Deterministically interleaved execution for trace-shape tests."""
    backend = SimulationBackend(policy=RoundRobinPolicy())
    with use_backend(backend):
        yield backend


@pytest.fixture
def serialized_backend():
    """Deterministically serialized execution (the Fig. 10 schedule)."""
    backend = SimulationBackend(policy=SerializedPolicy())
    with use_backend(backend):
        yield backend
