"""Property-based tests of the deterministic concurrency substrate."""

from __future__ import annotations

import threading
from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.backend import SimulationBackend
from repro.simulation.clock import VirtualClock
from repro.simulation.scheduler import RandomPolicy, RoundRobinPolicy, SerializedPolicy

#: Keep the thread churn manageable: hypothesis runs each property many
#: times and every example spawns real threads.
_SETTINGS = settings(max_examples=20, deadline=None)


def run_gated(policy, iteration_counts: List[int]) -> List[Tuple[int, int]]:
    """Run one gated worker per count; return the (worker, step) log."""
    backend = SimulationBackend(policy=policy)
    log: List[Tuple[int, int]] = []
    lock = threading.Lock()

    def make_worker(key: int, steps: int):
        def body() -> None:
            for step in range(steps):
                with lock:
                    log.append((key, step))
                backend.checkpoint()

        return body

    threads = [
        backend.spawn(make_worker(key, steps))
        for key, steps in enumerate(iteration_counts)
    ]
    backend.start_all(threads)
    backend.join_all(threads)
    return log


iteration_lists = st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=5)


@_SETTINGS
@given(iteration_lists, st.integers(min_value=0, max_value=100))
def test_every_step_completes_under_any_random_schedule(counts, seed):
    log = run_gated(RandomPolicy(seed), counts)
    expected = {(k, s) for k, steps in enumerate(counts) for s in range(steps)}
    assert set(log) == expected
    assert len(log) == len(expected)


@_SETTINGS
@given(iteration_lists, st.integers(min_value=0, max_value=100))
def test_per_worker_order_is_program_order(counts, seed):
    log = run_gated(RandomPolicy(seed), counts)
    for key in range(len(counts)):
        steps = [s for k, s in log if k == key]
        assert steps == sorted(steps)


@_SETTINGS
@given(iteration_lists)
def test_serialized_policy_never_interleaves(counts):
    log = run_gated(SerializedPolicy(), counts)
    finished = set()
    current = None
    for key, _step in log:
        if key != current:
            if current is not None:
                finished.add(current)
            assert key not in finished, "a finished worker re-appeared"
            current = key


@_SETTINGS
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=4))
def test_round_robin_is_lockstep_for_equal_loads(workers, steps):
    log = run_gated(RoundRobinPolicy(), [steps] * workers)
    observed_steps = [s for _k, s in log]
    assert observed_steps == sorted(observed_steps)
    # Within each step, every worker appears exactly once.
    for step in range(steps):
        keys = [k for k, s in log if s == step]
        assert sorted(keys) == list(range(workers))


@_SETTINGS
@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=6),
    st.floats(min_value=0.0, max_value=5.0),
)
def test_makespan_bounds(worker_costs, root_cost):
    clock = VirtualClock()
    clock.set_root()
    clock.charge(root_cost)
    # Hold strong references: the clock keys threads by identity, so
    # letting a Thread be collected mid-accounting would conflate ids
    # (in real use the runner's join list keeps workers alive).
    workers = [threading.Thread() for _ in worker_costs]
    for worker, cost in zip(workers, worker_costs):
        clock.charge(cost, thread=worker)
    makespan = clock.makespan()
    assert makespan == pytest.approx(root_cost + max(worker_costs))
    assert makespan <= clock.serial_total() + 1e-9


@_SETTINGS
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=5))
def test_balanced_unit_work_gives_linear_virtual_speedup(threads, per_thread):
    def makespan_for(n_threads: int) -> float:
        backend = SimulationBackend()

        def make_worker():
            def body() -> None:
                for _ in range(per_thread * threads // n_threads):
                    backend.checkpoint(cost=1.0)

            return body

        spawned = [backend.spawn(make_worker()) for _ in range(n_threads)]
        backend.start_all(spawned)
        backend.join_all(spawned)
        return backend.makespan()

    serial = makespan_for(1)
    parallel = makespan_for(threads)
    assert serial / parallel == pytest.approx(threads)
