"""Tests of content-hash deduplication across the grading layers."""

from __future__ import annotations

from typing import List

import pytest

from repro.execution.supervisor import GradingSupervisor
from repro.graders import PrimesFunctionality
from repro.grading import grade_submissions
from repro.grading.dedup import clone_record, group_submissions, submission_digest
from repro.grading.journal import GradingJournal
from repro.grading.records import SubmissionRecord
from repro.testfw.suite import TestSuite


def primes_factory(identifier):
    return TestSuite("primes", [PrimesFunctionality(identifier)])


#: A roster where three students submitted byte-identical work.
ROSTER = {
    "alice": "primes.correct",
    "bob": "primes.correct",
    "carl": "primes.serialized",
    "dora": "primes.correct",
}


def normalized(book):
    """Gradebook contents with timing fields zeroed, for equality checks."""
    snapshot = {}
    for student in book.students():
        data = book.latest(student).to_dict()
        data["timestamp"] = 0.0
        data["elapsed"] = 0.0
        snapshot[student] = data
    return snapshot


class TestDigest:
    def test_equal_file_bytes_collapse_across_names(self, tmp_path):
        first = tmp_path / "one.py"
        second = tmp_path / "two.py"
        first.write_text("def main(args):\n    pass\n")
        second.write_text("def main(args):\n    pass\n")
        assert submission_digest(str(first)) == submission_digest(str(second))

    def test_different_file_bytes_stay_distinct(self, tmp_path):
        first = tmp_path / "one.py"
        second = tmp_path / "two.py"
        first.write_text("def main(args):\n    pass\n")
        second.write_text("def main(args):\n    return 1\n")
        assert submission_digest(str(first)) != submission_digest(str(second))

    def test_registered_names_hash_as_strings(self):
        assert submission_digest("primes.correct") == submission_digest(
            "primes.correct"
        )
        assert submission_digest("primes.correct") != submission_digest(
            "primes.racy"
        )

    def test_missing_file_falls_back_to_identifier_string(self, tmp_path):
        ghost = str(tmp_path / "ghost.py")
        assert submission_digest(ghost) == submission_digest(ghost)


class TestGrouping:
    def test_first_student_per_digest_is_representative(self):
        reps, clones = group_submissions(list(ROSTER.items()))
        assert reps == [("alice", "primes.correct"), ("carl", "primes.serialized")]
        assert clones == {
            "alice": [("bob", "primes.correct"), ("dora", "primes.correct")]
        }

    def test_no_duplicates_means_no_clones(self):
        pending = [("a", "primes.correct"), ("b", "primes.racy")]
        reps, clones = group_submissions(pending)
        assert reps == pending
        assert clones == {}


class TestCloneRecord:
    def test_clone_renames_student_and_shares_scores(self):
        _, live = grade_submissions(primes_factory, {"alice": "primes.correct"})
        record = SubmissionRecord.from_suite_result("alice", live["alice"])
        clone = clone_record(record, "bob")
        assert clone.student == "bob"
        original = record.to_dict()
        copied = clone.to_dict()
        copied["student"] = original["student"]
        assert copied == original


class TestBatchDedup:
    def test_deduped_gradebook_matches_full_grading(self):
        baseline, _ = grade_submissions(primes_factory, ROSTER)
        deduped, live = grade_submissions(primes_factory, ROSTER, dedup=True)
        assert normalized(deduped) == normalized(baseline)
        # Every student still has a live result for rendering.
        assert set(live) == set(ROSTER)

    def test_duplicates_grade_once(self):
        calls: List[str] = []

        def counting_factory(identifier):
            calls.append(identifier)
            return primes_factory(identifier)

        grade_submissions(counting_factory, ROSTER, dedup=True)
        assert calls == ["primes.correct", "primes.serialized"]


class TestSupervisorDedup:
    def test_fan_out_yields_identical_gradebook(self):
        baseline = GradingSupervisor(primes_factory).grade(ROSTER)
        deduped = GradingSupervisor(primes_factory, dedup=True).grade(ROSTER)
        assert normalized(deduped.gradebook) == normalized(baseline.gradebook)
        assert set(deduped.outcomes) == set(ROSTER)

    def test_duplicates_grade_once_under_supervision(self):
        calls: List[str] = []

        def counting_factory(identifier):
            calls.append(identifier)
            return primes_factory(identifier)

        report = GradingSupervisor(counting_factory, dedup=True).grade(ROSTER)
        assert sorted(calls) == ["primes.correct", "primes.serialized"]
        assert len(report.outcomes) == len(ROSTER)

    def test_clones_are_journaled_for_resume(self, tmp_path):
        journal = GradingJournal(tmp_path / "grading.jsonl")
        GradingSupervisor(primes_factory, journal=journal, dedup=True).grade(ROSTER)
        assert journal.completed_students() == sorted(ROSTER)

        # A resumed batch regrades nothing: every clone is durable.
        def exploding_factory(identifier):
            raise AssertionError(f"regraded {identifier} after dedup fan-out")

        resumed = GradingSupervisor(
            exploding_factory, journal=journal, dedup=True
        ).grade(ROSTER)
        assert resumed.resumed == sorted(ROSTER)

    def test_resume_gradebook_identical_with_and_without_dedup(self, tmp_path):
        plain_journal = GradingJournal(tmp_path / "plain.jsonl")
        dedup_journal = GradingJournal(tmp_path / "dedup.jsonl")
        plain = GradingSupervisor(primes_factory, journal=plain_journal).grade(
            ROSTER
        )
        deduped = GradingSupervisor(
            primes_factory, journal=dedup_journal, dedup=True
        ).grade(ROSTER)
        assert normalized(deduped.gradebook) == normalized(plain.gradebook)

        # Both journals resume to the same gradebook again.
        plain_resumed = GradingSupervisor(
            primes_factory, journal=plain_journal
        ).grade(ROSTER)
        dedup_resumed = GradingSupervisor(
            primes_factory, journal=dedup_journal, dedup=True
        ).grade(ROSTER)
        assert normalized(plain_resumed.gradebook) == normalized(
            dedup_resumed.gradebook
        )

    def test_partial_journal_resumes_clones_individually(self, tmp_path):
        # Grade only the representative's group, then resume the full
        # roster: the journaled clones must not be regraded.
        journal = GradingJournal(tmp_path / "grading.jsonl")
        first = {s: i for s, i in ROSTER.items() if i == "primes.correct"}
        GradingSupervisor(primes_factory, journal=journal, dedup=True).grade(first)
        assert journal.completed_students() == sorted(first)

        calls: List[str] = []

        def counting_factory(identifier):
            calls.append(identifier)
            return primes_factory(identifier)

        resumed = GradingSupervisor(
            counting_factory, journal=journal, dedup=True
        ).grade(ROSTER)
        assert calls == ["primes.serialized"]
        assert sorted(resumed.resumed) == sorted(first)
