"""Behavioural tests of the tested programs (workload variants).

These check the *programs themselves* — what they print, which threads
print it — independent of the graders, using deterministic simulation
backends where trace shape matters.
"""

from __future__ import annotations

import pytest

from repro.eventdb.queries import is_interleaved, load_counts, serialization_order
from repro.execution.runner import ProgramRunner
from repro.workloads import ALL_VARIANTS
from repro.workloads.common import is_prime


def run(identifier, args=("7", "4")):
    return ProgramRunner(timeout=20.0).run(identifier, list(args))


class TestRegistrations:
    def test_all_variant_identifiers_resolve(self):
        from repro.execution.registry import resolve_main

        for variants in ALL_VARIANTS.values():
            for identifier in variants:
                assert callable(resolve_main(identifier))

    def test_perf_identifiers_resolve(self):
        from repro.execution.registry import resolve_main

        for identifier in [
            "primes.perf.latency",
            "primes.perf.numpy",
            "primes.perf.cpu",
            "primes.perf.sim",
            "pi.perf.latency",
            "pi.perf.sim",
            "odds.perf.latency",
            "odds.perf.sim",
        ]:
            assert callable(resolve_main(identifier))


class TestPrimesCorrect:
    def test_trace_shape(self, round_robin_backend):
        result = run("primes.correct")
        assert result.ok
        names = [e.name for e in result.events]
        assert names[0] == "Random Numbers"
        assert names[-1] == "Total Num Primes"
        assert names.count("Index") == 7
        assert names.count("Num Primes") == 4
        assert len(result.worker_threads) == 4

    def test_totals_consistent(self, round_robin_backend):
        result = run("primes.correct")
        randoms = result.events[0].value
        total = result.events[-1].value
        assert total == sum(1 for n in randoms if is_prime(n))
        per_thread = [e.value for e in result.events if e.name == "Num Primes"]
        assert sum(per_thread) == total

    def test_interleaves_under_round_robin(self, round_robin_backend):
        result = run("primes.correct")
        assert is_interleaved(result.worker_events())

    def test_balanced_under_any_schedule(self, round_robin_backend):
        result = run("primes.correct")
        counts = load_counts(result.worker_events(), per_iteration_events=1)
        # 7 iterations * 3 prints + 1 post-iteration print per thread
        assert sorted(counts.values()) == [4, 7, 7, 7]

    def test_thread_count_follows_arg(self, round_robin_backend):
        result = run("primes.correct", ("6", "2"))
        assert len(result.worker_threads) == 2


class TestPrimesBugs:
    def test_serialized_variant_serializes_even_under_round_robin(self, round_robin_backend):
        result = run("primes.serialized")
        assert not is_interleaved(result.worker_events())
        assert len(serialization_order(result.worker_events())) == 4

    def test_serialized_variant_is_imbalanced(self, round_robin_backend):
        result = run("primes.serialized")
        counts = load_counts(result.worker_events(), per_iteration_events=1)
        assert max(counts.values()) > min(counts.values()) + 1

    def test_syntax_error_variant_misnames_and_undershoots(self, round_robin_backend):
        result = run("primes.syntax_error")
        names = [e.name for e in result.events]
        assert names[0] == "Randoms"
        assert names.count("Index") < 7

    def test_no_fork_produces_no_worker_events(self):
        result = run("primes.no_fork")
        assert result.worker_threads == []
        assert all(e.thread is result.root_thread for e in result.events)

    def test_wrong_semantics_inverts_every_verdict(self, round_robin_backend):
        result = run("primes.wrong_semantics")
        randoms = result.events[0].value
        verdicts = {
            e.value: None for e in result.events if e.name == "Is Prime"
        }
        pairs = [
            (e1.value, e2.value)
            for e1, e2 in zip(result.events, result.events[1:])
            if e1.name == "Number" and e2.name == "Is Prime"
        ]
        assert pairs
        for number, verdict in pairs:
            assert verdict == (not is_prime(number))

    def test_wrong_total_off_by_one(self, round_robin_backend):
        result = run("primes.wrong_total")
        per_thread = sum(e.value for e in result.events if e.name == "Num Primes")
        total = result.events[-1].value
        assert total == per_thread + 1

    def test_racy_variant_loses_updates_under_round_robin(self, round_robin_backend):
        result = run("primes.racy")
        per_thread = sum(e.value for e in result.events if e.name == "Num Primes")
        total = result.events[-1].value
        # Round-robin interleaves every read-modify-write: updates lost.
        assert total < per_thread


class TestHello:
    def test_correct_forks_requested_threads(self):
        result = run("hello.correct", ("3",))
        assert len(result.worker_threads) == 3
        assert result.output.count("Hello Concurrent World") == 3

    def test_no_fork_output_identical_but_trace_differs(self):
        forked = run("hello.correct", ("1",))
        direct = run("hello.no_fork", ("1",))
        assert forked.output == direct.output
        assert len(forked.worker_threads) == 1
        assert len(direct.worker_threads) == 0

    def test_omp_style_output_names_worker_indices(self):
        result = run("hello.omp_style", ("2",))
        assert "from thread = 0" in result.output
        assert "from thread = 1" in result.output

    def test_wrong_count_forks_one(self):
        result = run("hello.wrong_count", ("4",))
        assert len(result.worker_threads) == 1


class TestPi:
    def test_correct_trace_consistency(self, round_robin_backend):
        result = run("pi.correct", ("12", "3"))
        events = result.events
        assert events[0].name == "Num Points" and events[0].value == 12
        hits = [e.value for e in events if e.name == "Num In Circle"]
        total = next(e.value for e in events if e.name == "Total In Circle")
        pi = next(e.value for e in events if e.name == "PI")
        assert sum(hits) == total
        assert pi == pytest.approx(4.0 * total / 12)

    def test_darts_within_unit_square(self, round_robin_backend):
        result = run("pi.correct", ("12", "3"))
        xs = [e.value for e in result.events if e.name == "X"]
        ys = [e.value for e in result.events if e.name == "Y"]
        assert len(xs) == len(ys) == 12
        assert all(0.0 <= v < 1.0 for v in xs + ys)

    def test_wrong_final_misses_factor_four(self, round_robin_backend):
        result = run("pi.wrong_final", ("12", "3"))
        total = next(e.value for e in result.events if e.name == "Total In Circle")
        pi = next(e.value for e in result.events if e.name == "PI")
        assert pi == pytest.approx(total / 12)


class TestOdds:
    def test_correct_default_uses_27_iterations(self, round_robin_backend):
        result = run("odds.correct", ())
        names = [e.name for e in result.events]
        assert names.count("Index") == 27

    def test_totals_consistent(self, round_robin_backend):
        result = run("odds.correct", ("10", "2"))
        randoms = result.events[0].value
        total = result.events[-1].value
        assert total == sum(1 for n in randoms if n % 2 != 0)
