"""Unit tests of the scored mini test framework (the JUnit analogue)."""

from __future__ import annotations

import pytest

from repro.testfw.annotations import max_value, max_value_of
from repro.testfw.case import FunctionTestCase, ScoredTestCase
from repro.testfw.result import AspectOutcome, AspectStatus, SuiteResult, TestResult
from repro.testfw.suite import TestSuite, get_suite, register_suite, registered_suites
from repro.testfw.ui import SuiteUI


class TestAnnotations:
    def test_max_value_stored_and_read(self):
        @max_value(40)
        class Annotated:
            pass

        assert max_value_of(Annotated) == 40.0
        assert max_value_of(Annotated()) == 40.0

    def test_default_max_value_is_100(self):
        class Plain:
            pass

        assert max_value_of(Plain) == 100.0

    def test_non_positive_max_rejected(self):
        with pytest.raises(ValueError):
            max_value(0)


class TestResults:
    def make_result(self):
        return TestResult(
            test_name="T",
            score=32.0,
            max_score=40.0,
            outcomes=[
                AspectOutcome("syntax", AspectStatus.PASSED, points_earned=10, points_possible=10),
                AspectOutcome(
                    "interleaving",
                    AspectStatus.FAILED,
                    message="serialized",
                    points_earned=0,
                    points_possible=8,
                ),
                AspectOutcome("semantics", AspectStatus.SKIPPED, points_possible=2),
            ],
        )

    def test_percent(self):
        assert self.make_result().percent == pytest.approx(80.0)

    def test_aspect_partitions(self):
        result = self.make_result()
        assert [o.aspect for o in result.passed_aspects()] == ["syntax"]
        assert [o.aspect for o in result.failed_aspects()] == ["interleaving"]
        assert [o.aspect for o in result.skipped_aspects()] == ["semantics"]

    def test_render_contains_score_and_messages(self):
        text = self.make_result().render()
        assert "32 / 40" in text
        assert "(80%)" in text
        assert "- interleaving" in text and "serialized" in text
        assert "~ semantics" in text

    def test_passed_requires_full_score(self):
        assert not self.make_result().passed
        full = TestResult("T", 40.0, 40.0)
        assert full.passed

    def test_fatal_renders(self):
        result = TestResult("T", 0, 10, fatal="program crashed")
        assert "! program crashed" in result.render()

    def test_suite_result_aggregates(self):
        suite_result = SuiteResult("s", [TestResult("a", 10, 20), TestResult("b", 5, 5)])
        assert suite_result.score == 15
        assert suite_result.max_score == 25
        assert suite_result.percent == pytest.approx(60.0)
        assert suite_result.result_for("b").score == 5
        assert suite_result.result_for("zzz") is None
        assert "Suite s" in suite_result.render()


class TestFunctionCase:
    def test_passing_function_earns_full(self):
        case = FunctionTestCase(lambda: None, name="ok", max_score=7)
        result = case.run()
        assert result.score == 7 and result.passed

    def test_assertion_failure_earns_zero_with_message(self):
        def failing():
            assert 1 == 2, "one is not two"

        result = FunctionTestCase(failing).run()
        assert result.score == 0
        assert "one is not two" in result.outcomes[0].message

    def test_unexpected_exception_is_fatal(self):
        def broken():
            raise OSError("disk on fire")

        result = FunctionTestCase(broken).run()
        assert result.fatal.startswith("OSError")

    def test_run_safely_catches_harness_bugs(self):
        class Broken(ScoredTestCase):
            def run(self):
                raise RuntimeError("harness bug")

        result = Broken().run_safely()
        assert result.score == 0
        assert "harness bug" in result.fatal


class TestSuites:
    def make_suite(self):
        return TestSuite(
            "demo",
            [
                FunctionTestCase(lambda: None, name="good", max_score=10),
                FunctionTestCase(lambda: (_ for _ in ()).throw(AssertionError()), name="bad", max_score=10),
            ],
        )

    def test_run_all(self):
        result = self.make_suite().run()
        assert result.score == 10 and result.max_score == 20

    def test_run_one(self):
        result = self.make_suite().run_one("good")
        assert [r.test_name for r in result.results] == ["good"]

    def test_unknown_test_name(self):
        with pytest.raises(KeyError, match="no test named"):
            self.make_suite().run_one("nope")

    def test_registry_round_trip(self):
        suite = register_suite(self.make_suite())
        assert get_suite("demo") is suite
        assert "demo" in registered_suites()

    def test_unknown_suite_lists_known(self):
        with pytest.raises(KeyError, match="known suites"):
            get_suite("never-registered")

    def test_add_returns_self(self):
        suite = TestSuite("chained")
        assert suite.add(FunctionTestCase(lambda: None)) is suite
        assert len(suite) == 1


class TestUI:
    def test_listing_shows_unrun_tests_with_dashes(self):
        ui = SuiteUI(TestSuite("s", [FunctionTestCase(lambda: None, name="t1", max_score=5)]))
        listing = ui.render_listing()
        assert "[1] t1" in listing
        assert "-- / 5" in listing

    def test_run_test_at_updates_listing(self):
        ui = SuiteUI(TestSuite("s", [FunctionTestCase(lambda: None, name="t1", max_score=5)]))
        result = ui.run_test_at(1)
        assert result.score == 5
        assert "5 / 5" in ui.render_listing()

    def test_run_test_at_out_of_range(self):
        ui = SuiteUI(TestSuite("s", [FunctionTestCase(lambda: None, name="t1")]))
        with pytest.raises(IndexError):
            ui.run_test_at(2)

    def test_scripted_interactive_loop(self):
        ui = SuiteUI(TestSuite("s", [FunctionTestCase(lambda: None, name="t1", max_score=5)]))
        script = iter(["1", "a", "junk", "9", "", "q"])
        transcript = []
        ui.loop(input_fn=lambda prompt: next(script), output_fn=transcript.append)
        text = "\n".join(transcript)
        assert "t1: 5 / 5" in text
        assert "unrecognized choice 'junk'" in text
        assert "between 1 and 1" in text

    def test_loop_exits_on_eof(self):
        ui = SuiteUI(TestSuite("s", []))

        def raise_eof(prompt):
            raise EOFError

        ui.loop(input_fn=raise_eof, output_fn=lambda _line: None)
