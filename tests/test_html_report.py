"""Tests of the HTML report renderer and its CLI command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.grading import suite_result_html, write_html_report
from repro.graders import PrimesFunctionality
from repro.testfw.result import (
    AspectOutcome,
    AspectStatus,
    SuiteResult,
    TestResult,
)
from repro.testfw.suite import TestSuite


def make_suite_result() -> SuiteResult:
    return SuiteResult(
        "primes",
        [
            TestResult(
                "Functionality",
                32.0,
                40.0,
                outcomes=[
                    AspectOutcome(
                        "fork syntax",
                        AspectStatus.PASSED,
                        points_earned=6,
                        points_possible=6,
                    ),
                    AspectOutcome(
                        "thread interleaving",
                        AspectStatus.FAILED,
                        message="serialized <order>",
                        points_earned=0,
                        points_possible=4,
                    ),
                    AspectOutcome(
                        "iteration semantics",
                        AspectStatus.SKIPPED,
                        points_possible=6,
                    ),
                ],
            )
        ],
    )


class TestHtmlRendering:
    def test_document_structure(self):
        html_text = suite_result_html(make_suite_result(), student="ada")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "Fork-Join Test Report — primes — ada" in html_text
        assert "32 / 40" in html_text

    def test_status_badges(self):
        html_text = suite_result_html(make_suite_result())
        assert '<span class="status passed">PASS</span>' in html_text
        assert '<span class="status failed">FAIL</span>' in html_text
        assert '<span class="status skipped">SKIP</span>' in html_text

    def test_messages_are_escaped(self):
        html_text = suite_result_html(make_suite_result())
        assert "serialized &lt;order&gt;" in html_text
        assert "serialized <order>" not in html_text

    def test_fatal_result(self):
        suite = SuiteResult("s", [TestResult("t", 0, 10, fatal="<boom>")])
        html_text = suite_result_html(suite)
        assert "FATAL: &lt;boom&gt;" in html_text

    def test_trace_section_with_real_report(self, round_robin_backend):
        checker = PrimesFunctionality("primes.correct")
        report = checker.check()
        suite_result = SuiteResult("primes", [report.result])
        html_text = suite_result_html(suite_result, reports=[report])
        assert "Annotated trace" in html_text
        assert "// pre-fork phase (root thread)" in html_text
        # Per-thread colour classes assigned.
        assert 'class="t0"' in html_text and 'class="t1"' in html_text

    def test_write_to_file(self, tmp_path):
        path = write_html_report(make_suite_result(), tmp_path / "r.html")
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestReportCommand:
    def test_cli_report_writes_html(self, tmp_path, capsys, round_robin_backend):
        out = tmp_path / "report.html"
        code = main(
            [
                "report",
                "primes",
                "--submission",
                "primes.serialized",
                "--out",
                str(out),
                "--student",
                "bob",
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "bob" in text
        assert "Annotated trace" in text
        assert "serialized in the order" in text
