"""Failure-injection tests: the harness under misbehaving components.

A grading harness meets broken student code, broken observers, and
broken test programs; these tests pin down how each failure surfaces —
loudly where silence would corrupt grades, gracefully where one student
must not take down the session.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import List

import pytest

from repro.core.checker import AbstractForkJoinChecker
from repro.core.outcome import Aspect
from repro.core.properties import NUMBER
from repro.execution.registry import UnknownMainError, register_main, resolve_main, unregister_main
from repro.execution.runner import ProgramRunner
from repro.testfw.result import AspectStatus
from repro.tracing import print_property
from repro.tracing.session import TraceSession


class TestObserverFailures:
    def test_broken_observer_fails_loudly_on_the_printing_thread(self):
        """A broken observer is a broken harness: the exception must not
        be swallowed (silently dropping trace data corrupts grades)."""
        session = TraceSession()

        class Broken:
            def notify(self, event):
                raise RuntimeError("observer bug")

        session.add_observer(Broken())
        with session.activate():
            with pytest.raises(RuntimeError, match="observer bug"):
                print_property("X", 1)
        # ...but the event itself was recorded before observers ran.
        assert len(session.database) == 1

    def test_callback_observer_sees_every_event(self):
        from repro.tracing.observable import CallbackObserver

        session = TraceSession()
        seen: List[str] = []
        session.add_observer(CallbackObserver(lambda e: seen.append(e.name)))
        with session.activate():
            print_property("A", 1)
            print("plain")
        assert seen == ["A", "str"]

    def test_observer_removal(self):
        from repro.tracing.observable import CallbackObserver, ObserverRegistry

        registry = ObserverRegistry()
        observer = CallbackObserver(lambda e: None)
        registry.add(observer)
        registry.add(observer)  # idempotent
        assert len(registry) == 1
        registry.remove(observer)
        registry.remove(observer)  # idempotent
        assert len(registry) == 0


class TestInterceptorEdgeCases:
    def test_write_rejects_non_strings(self):
        session = TraceSession()
        with session.activate():
            with pytest.raises(TypeError, match="must be str"):
                sys.stdout.write(b"bytes")  # type: ignore[arg-type]

    def test_echo_mode_forwards_to_real_stdout(self, capsys):
        session = TraceSession(echo=True)
        with session.activate():
            print("visible to the operator")
        assert "visible to the operator" in capsys.readouterr().out
        assert len(session.database) == 1

    def test_print_with_explicit_stdout_file_is_captured(self):
        session = TraceSession()
        with session.activate():
            print("routed", file=sys.stdout)
        assert session.output_lines() == ["routed"]

    def test_print_with_custom_end(self):
        session = TraceSession()
        with session.activate():
            print("a", end="")
            print("b")
        assert session.output_lines() == ["ab"]

    def test_interleaved_partial_writes_keep_lines_intact(self):
        session = TraceSession()
        barrier = threading.Barrier(2)
        with session.activate():
            def writer(tag: str) -> None:
                barrier.wait()
                for _ in range(20):
                    sys.stdout.write(tag)
                    time.sleep(0.0002)
                    sys.stdout.write(tag + "\n")

            threads = [threading.Thread(target=writer, args=(t,)) for t in "ab"]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for line in session.output_lines():
            assert line in ("aa", "bb"), f"torn line: {line!r}"


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestBrokenStudentPrograms:
    def test_worker_crash_truncates_trace_but_run_completes(self, runner):
        @register_main("inject.worker_crash")
        def program(args: List[str]) -> None:
            print_property("Numbers", [1, 2])

            def worker():
                print_property("Index", 0)
                raise ValueError("worker died")

            t = threading.Thread(target=worker)
            t.start()
            t.join()
            print_property("Total", 0)

        try:
            result = runner.run("inject.worker_crash")
        finally:
            unregister_main("inject.worker_crash")
        # The root completed; the worker's death left a truncated trace.
        assert result.ok
        names = [e.name for e in result.events]
        assert names == ["Numbers", "Index", "Total"]

    def test_checker_reports_truncated_worker_as_syntax_error(self, runner):
        @register_main("inject.truncated")
        def program(args: List[str]) -> None:
            print_property("Numbers", [1, 2])

            def worker():
                print_property("Index", 0)
                raise ValueError("died before Is Odd")

            t = threading.Thread(target=worker)
            t.start()
            t.join()
            print_property("Total", 0)

        class Checker(AbstractForkJoinChecker):
            def main_class_identifier(self):
                return "inject.truncated"

            def num_expected_forked_threads(self):
                return 1

            def total_iterations(self):
                return 2

            def pre_fork_property_names_and_types(self):
                return (("Numbers", list),)

            def iteration_property_names_and_types(self):
                return (("Index", NUMBER), ("Is Odd", bool))

            def post_join_property_names_and_types(self):
                return (("Total", NUMBER),)

        try:
            result = Checker().run()
        finally:
            unregister_main("inject.truncated")
        statuses = {o.aspect: o.status for o in result.outcomes}
        assert statuses[Aspect.FORK_SYNTAX] is AspectStatus.FAILED

    def test_program_mutating_stdout_is_contained(self, runner):
        """A program that replaces sys.stdout mid-run cannot corrupt the
        harness: the session restores the original stream on exit."""

        @register_main("inject.stdout_thief")
        def program(args: List[str]) -> None:
            import io

            print_property("Before", 1)
            sys.stdout = io.StringIO()  # the theft
            print("swallowed")

        before = sys.stdout
        try:
            result = runner.run("inject.stdout_thief")
        finally:
            unregister_main("inject.stdout_thief")
        assert sys.stdout is before
        assert result.events[0].name == "Before"

    def test_daemon_threads_left_running_do_not_wedge_the_harness(self, runner):
        @register_main("inject.daemon")
        def program(args: List[str]) -> None:
            def immortal():
                while True:
                    time.sleep(0.2)

            t = threading.Thread(target=immortal, daemon=True)
            t.start()
            print_property("Spawned", True)

        try:
            result = runner.run("inject.daemon", timeout=5.0)
        finally:
            unregister_main("inject.daemon")
        assert result.ok  # main returned; the daemon is not joined


class TestRegistryFileLoading:
    def test_py_file_with_import_error_reports_cleanly(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("import nonexistent_module_xyz\n")
        with pytest.raises(UnknownMainError, match="importing"):
            resolve_main(str(bad))

    def test_py_file_without_main(self, tmp_path):
        nomain = tmp_path / "nomain.py"
        nomain.write_text("x = 1\n")
        with pytest.raises(UnknownMainError, match="no callable"):
            resolve_main(str(nomain))

    def test_py_file_with_custom_entry_point(self, tmp_path):
        custom = tmp_path / "custom.py"
        custom.write_text("def grade_me(args):\n    pass\n")
        func = resolve_main(f"{custom}:grade_me")
        assert callable(func)

    def test_missing_py_file(self):
        with pytest.raises(UnknownMainError, match="does not exist"):
            resolve_main("/nowhere/never.py")

    def test_py_file_loads_and_runs(self, tmp_path, runner):
        ok = tmp_path / "fine.py"
        ok.write_text(
            "from repro.tracing import print_property\n"
            "def main(args):\n"
            "    print_property('Echo', list(args))\n"
        )
        result = runner.run(str(ok), ["x"])
        assert result.ok
        assert result.events[0].value == ["x"]
