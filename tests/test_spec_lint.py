"""Tests of the test-program configuration linter."""

from __future__ import annotations

from typing import List, Mapping, Optional

import pytest

from repro.core.checker import AbstractForkJoinChecker
from repro.core.properties import BOOLEAN, NUMBER
from repro.core.spec_lint import LintLevel, lint_checker
from repro.graders import (
    HelloFunctionality,
    OddsFunctionality,
    PiFunctionality,
    PrimesFunctionality,
)


class _Base(AbstractForkJoinChecker):
    """A clean baseline configuration to mutate per test."""

    def main_class_identifier(self) -> str:
        return "primes.correct"

    def num_expected_forked_threads(self) -> int:
        return 4

    def total_iterations(self) -> int:
        return 8

    def pre_fork_property_names_and_types(self):
        return (("Input", list),)

    def iteration_property_names_and_types(self):
        return (("Index", NUMBER), ("Verdict", BOOLEAN))

    def post_iteration_property_names_and_types(self):
        return (("Count", NUMBER),)

    def post_join_property_names_and_types(self):
        return (("Total", NUMBER),)


def rules(findings, level=None):
    return [
        f.rule
        for f in findings
        if level is None or f.level is level
    ]


class TestCleanConfigurations:
    def test_baseline_is_clean(self):
        assert lint_checker(_Base()) == []

    @pytest.mark.parametrize(
        "checker",
        [
            PrimesFunctionality(),
            OddsFunctionality(),
            PiFunctionality(),
            HelloFunctionality(),
        ],
        ids=["primes", "odds", "pi", "hello"],
    )
    def test_shipped_graders_have_no_errors(self, checker):
        findings = lint_checker(checker)
        assert rules(findings, LintLevel.ERROR) == [], [
            f.render() for f in findings
        ]


class TestSpecRules:
    def test_phase_name_collision_is_an_error(self):
        class Collides(_Base):
            def post_iteration_property_names_and_types(self):
                return (("Index", NUMBER),)  # also an iteration property

        assert "phase-name-collision" in rules(lint_checker(Collides()), LintLevel.ERROR)

    def test_ambiguous_tuple_boundary(self):
        class Ambiguous(_Base):
            def iteration_property_names_and_types(self):
                return (("Index", NUMBER), ("Count", NUMBER))

            def post_iteration_property_names_and_types(self):
                return (("Count", NUMBER), ("Extra", NUMBER))

        found = rules(lint_checker(Ambiguous()), LintLevel.ERROR)
        # Count appears in both phases -> collision; and it is also the
        # post-iteration tuple's first name appearing mid-iteration.
        assert "phase-name-collision" in found

    def test_root_worker_overlap_is_a_warning(self):
        class Overlap(_Base):
            def post_join_property_names_and_types(self):
                return (("Count", NUMBER),)  # worker's post-iteration name

        findings = lint_checker(Overlap())
        assert "root-worker-name-overlap" in rules(findings, LintLevel.WARNING)
        assert rules(findings, LintLevel.ERROR) == []

    def test_duplicate_names_within_a_phase_reported(self):
        class Duplicate(_Base):
            def iteration_property_names_and_types(self):
                return (("Index", NUMBER), ("Index", NUMBER))

        assert "invalid-specs" in rules(lint_checker(Duplicate()), LintLevel.ERROR)


class TestCountRules:
    def test_zero_threads_is_an_error(self):
        class NoThreads(_Base):
            def num_expected_forked_threads(self):
                return 0

        assert "no-threads-expected" in rules(lint_checker(NoThreads()), LintLevel.ERROR)

    def test_negative_iterations(self):
        class Negative(_Base):
            def total_iterations(self):
                return -1

        assert "negative-iterations" in rules(lint_checker(Negative()), LintLevel.ERROR)

    def test_fewer_iterations_than_threads_warns(self):
        class Sparse(_Base):
            def total_iterations(self):
                return 2

        assert "fewer-iterations-than-threads" in rules(
            lint_checker(Sparse()), LintLevel.WARNING
        )

    def test_unbounded_iterations_warns(self):
        class Unbounded(_Base):
            def total_iterations(self):
                return None

        assert "unbounded-iterations" in rules(
            lint_checker(Unbounded()), LintLevel.WARNING
        )


class TestCreditRules:
    def test_bad_thread_count_credit(self):
        class Bad(_Base):
            def thread_count_credit(self):
                return 1.5

        assert "bad-thread-count-credit" in rules(lint_checker(Bad()), LintLevel.ERROR)

    def test_unknown_credit_aspects_warn(self):
        class Unknown(_Base):
            def credit_weights(self) -> Optional[Mapping[str, float]]:
                return {"style points": 10.0}

        assert "unknown-credit-aspects" in rules(
            lint_checker(Unknown()), LintLevel.WARNING
        )

    def test_negative_weight_is_an_error(self):
        class Negative(_Base):
            def credit_weights(self):
                return {"fork syntax": -1.0}

        assert "negative-credit-weight" in rules(
            lint_checker(Negative()), LintLevel.ERROR
        )

    def test_all_zero_weights_is_an_error(self):
        from repro.core.credit import DEFAULT_WEIGHTS

        class Zeroed(_Base):
            def credit_weights(self):
                return {k: 0.0 for k in DEFAULT_WEIGHTS}

        assert "all-credit-zeroed" in rules(lint_checker(Zeroed()), LintLevel.ERROR)

    def test_negative_tolerance(self):
        class Negative(_Base):
            def load_balance_tolerance(self):
                return -1

        assert "negative-balance-tolerance" in rules(
            lint_checker(Negative()), LintLevel.ERROR
        )


class TestFindingRendering:
    def test_render_includes_level_and_rule(self):
        class NoThreads(_Base):
            def num_expected_forked_threads(self):
                return 0

        [finding] = lint_checker(NoThreads())
        text = finding.render()
        assert text.startswith("[error] no-threads-expected:")
