"""Unit + property tests of the standard trace line format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tracing.formatting import (
    PROPERTY_LINE_RE,
    format_property_line,
    format_value,
    parse_property_line,
)


class TestFormatValue:
    def test_booleans_render_java_style(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"

    def test_numpy_bool(self):
        assert format_value(np.bool_(True)) == "true"

    def test_none_renders_null(self):
        assert format_value(None) == "null"

    def test_int(self):
        assert format_value(509) == "509"
        assert format_value(-3) == "-3"

    def test_float_keeps_fraction(self):
        assert format_value(3.0) == "3.0"
        assert format_value(0.5) == "0.5"

    def test_list_renders_bracketed(self):
        assert format_value([509, 578, 796]) == "[509, 578, 796]"

    def test_nested_list(self):
        assert format_value([[1, 2], [3]]) == "[[1, 2], [3]]"

    def test_tuple_renders_like_list(self):
        assert format_value((1, 2)) == "[1, 2]"

    def test_ndarray_renders_like_list(self):
        assert format_value(np.array([1, 2, 3])) == "[1, 2, 3]"

    def test_numpy_scalar(self):
        assert format_value(np.int64(7)) == "7"

    def test_booleans_inside_list(self):
        assert format_value([True, False]) == "[true, false]"

    def test_string_verbatim(self):
        assert format_value("Hello Concurrent World") == "Hello Concurrent World"


class TestPropertyLine:
    def test_matches_paper_figure_3(self):
        line = format_property_line(23, "Total Num Primes", 1)
        assert line == "Thread 23->Total Num Primes:1"

    def test_matches_paper_figure_4(self):
        assert format_property_line(24, "Index", 0) == "Thread 24->Index:0"
        assert format_property_line(24, "Is Prime", True) == "Thread 24->Is Prime:true"

    def test_parse_round_trip(self):
        line = format_property_line(31, "Random Numbers", [509, 578])
        parsed = parse_property_line(line)
        assert parsed == (31, "Random Numbers", "[509, 578]")

    def test_parse_rejects_non_property_line(self):
        assert parse_property_line("Hello Concurrent World") is None

    def test_generic_regex_matches(self):
        line = format_property_line(23, "X", 0.25)
        match = PROPERTY_LINE_RE.match(line)
        assert match is not None
        assert match.group("tid") == "23"


@given(
    tid=st.integers(min_value=0, max_value=10_000),
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" "),
        min_size=1,
        max_size=30,
    ).filter(lambda s: ":" not in s and s.strip() == s),
    value=st.one_of(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.booleans(),
        st.lists(st.integers(min_value=0, max_value=999), max_size=8),
    ),
)
def test_property_line_always_parses_back(tid, name, value):
    """format -> parse is the identity on (tid, name) and the value text."""
    line = format_property_line(tid, name, value)
    parsed = parse_property_line(line)
    assert parsed is not None
    parsed_tid, parsed_name, parsed_value = parsed
    assert parsed_tid == tid
    assert parsed_name == name
    assert parsed_value == format_value(value)


@given(st.lists(st.integers(min_value=-999, max_value=999), max_size=10))
def test_list_format_has_matching_brackets(values):
    text = format_value(values)
    assert text.startswith("[") and text.endswith("]")
    assert text.count("[") == text.count("]")
