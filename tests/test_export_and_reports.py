"""Tests of gradebook exports: CSV, markdown timings, HTML class report.

Golden-file style: the CSV and markdown renderers are checked against
exact expected text (they are hand-off formats — a silent column shuffle
corrupts an LMS import), the JSON gradebook against a save/load
round-trip, and the HTML class report against its structural invariants
(summary rows linking ``#timing-<student>`` anchors to span-tree
sections).
"""

from __future__ import annotations

from repro.grading.export import (
    gradebook_csv,
    gradebook_markdown,
    write_gradebook_csv,
)
from repro.grading.gradebook import Gradebook
from repro.grading.html_report import gradebook_html, write_gradebook_html
from repro.grading.logs import ProgressLog
from repro.grading.records import SubmissionRecord
from repro.testfw.result import SuiteResult, TestResult


def make_suite_result(score: float) -> SuiteResult:
    return SuiteResult("primes", [TestResult("Functionality", score, 40.0)])


def make_gradebook() -> Gradebook:
    book = Gradebook("primes")
    book.record(
        SubmissionRecord.from_suite_result(
            "alice", make_suite_result(40.0), timestamp=1
        )
    )
    book.record(
        SubmissionRecord.from_suite_result(
            "bob", make_suite_result(20.0), timestamp=1
        )
    )
    book.record(
        SubmissionRecord.from_suite_result(
            "bob",
            make_suite_result(30.0),
            timestamp=2,
            failure_kind="timeout",
            schedule_seed=7,
        )
    )
    return book


class TestCsvExport:
    def test_golden_render(self):
        expected = (
            "student,best_score,max_score,best_percent,latest_percent,"
            "submissions,failure_kind,schedule_seed,"
            "interleavings_failing,interleavings_total,"
            "concurrency_verdict,race_count,race_pairs\n"
            "alice,40,40,100.0,100.0,1,ok,,,,,,\n"
            "bob,30,40,75.0,75.0,2,timeout,7,,,,,\n"
        )
        assert gradebook_csv(make_gradebook()) == expected

    def test_write_and_reparse(self, tmp_path):
        import csv

        path = write_gradebook_csv(make_gradebook(), tmp_path / "book.csv")
        rows = list(csv.DictReader(path.read_text().splitlines()))
        assert [row["student"] for row in rows] == ["alice", "bob"]
        assert rows[1]["schedule_seed"] == "7"


class TestJsonRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        book = make_gradebook()
        path = tmp_path / "book.json"
        book.save(path)
        clone = Gradebook.load(path)
        assert clone.students() == book.students()
        assert clone.class_percentages() == book.class_percentages()
        latest = clone.latest("bob")
        assert latest is not None
        assert latest.failure_kind == "timeout"
        assert latest.schedule_seed == 7
        # the CSV of the reloaded book is byte-identical
        assert gradebook_csv(clone) == gradebook_csv(book)


class TestMarkdownTimings:
    def test_without_timings_is_unchanged_shape(self):
        text = gradebook_markdown(make_gradebook())
        assert "| student | best | latest | submissions |" in text
        assert "grading time" not in text

    def test_timings_add_a_column(self):
        timings = {"alice": {"duration": 1.25, "attempts": 1}}
        text = gradebook_markdown(make_gradebook(), timings=timings)
        assert "| student | best | latest | submissions | grading time |" in text
        assert "| alice | 100% | 100% | 1 | 1.25s |" in text
        assert "| bob | 75% | 75% | 2 | — |" in text


class TestGradebookHtml:
    def test_summary_rows_link_timing_sections(self, tmp_path):
        timelines = {
            "alice": {
                "duration": 2.5,
                "attempts": 3,
                "tree": "supervisor.submission — 2.500s\n  runner.run — 1.0ms",
            }
        }
        path = write_gradebook_html(
            make_gradebook(), tmp_path / "class.html", timelines=timelines
        )
        text = path.read_text()
        assert '<a href="#timing-alice">2.50s</a>' in text
        assert '<h2 id="timing-alice">' in text
        assert "3 attempt(s)" in text
        assert "supervisor.submission" in text  # the span tree section
        assert "bob" in text  # row rendered even without a timeline

    def test_without_timelines_no_timing_column(self):
        text = gradebook_html(make_gradebook())
        assert "grading time" not in text
        assert "timing-" not in text
        assert "Class mean" in text

    def test_failure_kind_badges(self):
        text = gradebook_html(make_gradebook())
        assert '<span class="status passed">ok</span>' in text
        assert '<span class="status failed">timeout</span>' in text


class TestLockContention:
    CONTENTION = [
        {"lock": 1, "acquisitions": 5, "blocks": 2, "try_failures": 1},
        {"lock": 2, "acquisitions": 3, "blocks": 0, "try_failures": 0},
    ]

    def make_record(self) -> SubmissionRecord:
        return SubmissionRecord.from_suite_result(
            "alice",
            make_suite_result(40.0),
            timestamp=1,
            race_contention=self.CONTENTION,
        )

    def test_contention_survives_a_dict_round_trip(self):
        record = self.make_record()
        clone = SubmissionRecord.from_dict(record.to_dict())
        assert clone.race_contention == self.CONTENTION
        # the record holds copies, not aliases, of the caller's dicts
        assert clone.race_contention[0] is not self.CONTENTION[0]

    def test_html_renders_a_contention_table(self):
        book = Gradebook("primes")
        book.record(self.make_record())
        text = gradebook_html(book)
        assert "<h2>Lock contention</h2>" in text
        assert "<td>lock-1</td>" in text
        assert "<td>lock-2</td>" in text
        assert "<td class='points'>5</td>" in text  # acquisitions
        assert "<td class='points'>2</td>" in text  # blocks
        assert "<td class='points'>1</td>" in text  # try failures

    def test_no_contention_no_table(self):
        text = gradebook_html(make_gradebook())
        assert "Lock contention" not in text


class TestProgressLogElapsed:
    def test_log_run_stamps_monotonic_elapsed(self):
        log = ProgressLog()
        first = log.log_run("alice", make_suite_result(10.0))
        second = log.log_run("alice", make_suite_result(20.0))
        assert first.elapsed > 0.0
        assert second.elapsed >= first.elapsed

    def test_elapsed_survives_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        log = ProgressLog(path)
        record = log.log_run("bob", make_suite_result(10.0))
        reloaded = ProgressLog(path).entries()[0]
        assert reloaded.elapsed == record.elapsed
        assert reloaded.timestamp == record.timestamp
