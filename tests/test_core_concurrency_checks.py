"""Unit tests of the concurrency checks: count, interleaving, balance."""

from __future__ import annotations

import pytest

from repro.core.concurrency_checks import (
    check_concurrency,
    check_interleaving,
    check_load_balance,
    check_thread_count,
)
from repro.core.outcome import Aspect
from repro.core.trace_model import build_phased_trace
from tests.helpers import primes_schedule, synthetic_execution
from tests.test_core_trace_model import PRIMES_SPECS


def trace_of(schedule):
    return build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)


class TestThreadCount:
    def test_exact_count_passes(self):
        trace = trace_of(primes_schedule())
        assert check_thread_count(trace, expected_threads=4).ok

    def test_wrong_count_fails_with_zero_credit_by_default(self):
        trace = trace_of(primes_schedule(worker_slices={"A": [0, 1, 2, 3, 4, 5, 6]}))
        outcome = check_thread_count(trace, expected_threads=4)
        assert not outcome.ok
        assert outcome.partial_credit == 0.0
        assert "4" in outcome.errors[0] and "1" in outcome.errors[0]

    def test_consolation_credit_for_some_forking(self):
        trace = trace_of(primes_schedule(worker_slices={"A": [0, 1, 2, 3, 4, 5, 6]}))
        outcome = check_thread_count(trace, expected_threads=4, exact_fraction=0.8)
        assert outcome.partial_credit == pytest.approx(0.2)

    def test_zero_workers_message_mentions_forking(self):
        trace = trace_of([("R", "Random Numbers", [1]), ("R", "Total Num Primes", 0)])
        outcome = check_thread_count(trace, expected_threads=4, exact_fraction=0.8)
        assert outcome.partial_credit == 0.0
        assert "must fork" in outcome.errors[0]

    def test_invalid_fraction_rejected(self):
        trace = trace_of(primes_schedule())
        with pytest.raises(ValueError):
            check_thread_count(trace, expected_threads=4, exact_fraction=1.5)


class TestInterleaving:
    def test_interleaved_trace_passes(self):
        outcome = check_interleaving(trace_of(primes_schedule(interleave=True)))
        assert outcome.ok

    def test_serialized_trace_fails_with_order(self):
        outcome = check_interleaving(trace_of(primes_schedule(interleave=False)))
        assert not outcome.ok
        assert "serialized in the order" in outcome.errors[0]
        assert "synchronization" in outcome.errors[0]


class TestLoadBalance:
    def test_fair_split_passes(self):
        outcome = check_load_balance(
            trace_of(primes_schedule()), total_iterations=7, expected_threads=4
        )
        assert outcome.ok

    def test_lopsided_split_fails_with_counts(self):
        trace = trace_of(
            primes_schedule(worker_slices={"A": [0, 1, 2, 3], "B": [4], "C": [5], "D": [6]})
        )
        outcome = check_load_balance(trace, total_iterations=7, expected_threads=4)
        assert not outcome.ok
        assert "imbalanced" in outcome.errors[0]
        assert "performed 4" in outcome.errors[0]

    def test_tolerance_allows_slack(self):
        trace = trace_of(
            primes_schedule(worker_slices={"A": [0, 1, 2], "B": [3], "C": [4, 5], "D": [6]})
        )
        assert not check_load_balance(
            trace, total_iterations=7, expected_threads=4, tolerance=0
        ).ok
        assert check_load_balance(
            trace, total_iterations=7, expected_threads=4, tolerance=1
        ).ok

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            check_load_balance(
                trace_of(primes_schedule()), total_iterations=7, expected_threads=0
            )

    def test_no_workers_is_imbalanced(self):
        trace = trace_of([("R", "Random Numbers", [1])])
        outcome = check_load_balance(trace, total_iterations=7, expected_threads=4)
        assert not outcome.ok

    def test_no_workers_fails_even_with_tolerance(self):
        # An empty counts dict must never read as "balanced", no matter
        # how forgiving the tolerance: nobody did any work.
        trace = trace_of([("R", "Random Numbers", [1])])
        outcome = check_load_balance(
            trace, total_iterations=7, expected_threads=4, tolerance=10
        )
        assert not outcome.ok

    def test_fewer_iterations_than_threads_allows_idle_threads(self):
        # 3 iterations over 4 threads: fair range is floor(3/4)=0 to
        # ceil(3/4)=1, so threads doing 0 or 1 iterations are balanced.
        trace = trace_of(
            primes_schedule(worker_slices={"A": [0], "B": [1], "C": [2]})
        )
        outcome = check_load_balance(trace, total_iterations=3, expected_threads=4)
        assert outcome.ok

    def test_fewer_iterations_than_threads_still_catches_hogs(self):
        # Same 3-over-4 split, but one thread did everything: 3 > ceil(3/4).
        trace = trace_of(primes_schedule(worker_slices={"A": [0, 1, 2]}))
        outcome = check_load_balance(trace, total_iterations=3, expected_threads=4)
        assert not outcome.ok

    def test_tolerance_widens_both_bounds(self):
        # 7 over 4 gives a fair range of 1..2; a worker with 4 iterations
        # is 2 over the high bound, so tolerance 1 still fails and
        # tolerance 2 passes.
        trace = trace_of(
            primes_schedule(
                worker_slices={"A": [0], "B": [1], "C": [2, 3, 4, 5], "D": [6]}
            )
        )
        assert not check_load_balance(
            trace, total_iterations=7, expected_threads=4, tolerance=1
        ).ok
        assert check_load_balance(
            trace, total_iterations=7, expected_threads=4, tolerance=2
        ).ok

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError):
            check_load_balance(
                trace_of(primes_schedule()), total_iterations=7, expected_threads=-1
            )


class TestAggregation:
    def test_all_three_aspects_for_full_specs(self):
        outcomes = check_concurrency(
            trace_of(primes_schedule()),
            expected_threads=4,
            total_iterations=7,
        )
        assert {o.aspect for o in outcomes} == {
            Aspect.THREAD_COUNT,
            Aspect.INTERLEAVING,
            Aspect.LOAD_BALANCE,
        }

    def test_single_thread_skips_interleaving_and_balance(self):
        outcomes = check_concurrency(
            trace_of(primes_schedule(worker_slices={"A": [0, 1, 2, 3, 4, 5, 6]})),
            expected_threads=1,
            total_iterations=7,
        )
        assert [o.aspect for o in outcomes] == [Aspect.THREAD_COUNT]

    def test_no_iteration_specs_skips_interleaving(self):
        from repro.core.trace_model import PhaseSpecs

        trace = build_phased_trace(
            synthetic_execution([("A", "str", "hi"), ("B", "str", "hi")]),
            PhaseSpecs(),
        )
        outcomes = check_concurrency(trace, expected_threads=2, total_iterations=None)
        assert [o.aspect for o in outcomes] == [Aspect.THREAD_COUNT]
