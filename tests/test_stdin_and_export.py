"""Tests of scripted stdin and the Gradescope / markdown exports."""

from __future__ import annotations

import json
import sys
from typing import List

import pytest

from repro.execution.registry import register_main, unregister_main
from repro.execution.runner import ProgramRunner
from repro.execution.stdin_feed import ScriptedInputExhausted, StdinFeed
from repro.grading import (
    Gradebook,
    gradebook_markdown,
    gradescope_document,
    suite_result_markdown,
    write_gradescope_results,
)
from repro.grading.records import SubmissionRecord
from repro.testfw.result import (
    AspectOutcome,
    AspectStatus,
    SuiteResult,
    TestResult,
)
from repro.tracing import print_property


class TestStdinFeed:
    def test_lines_served_in_order(self):
        feed = StdinFeed(["a", "b"])
        assert feed.next_line() == "a"
        assert feed.next_line() == "b"
        assert feed.consumed_lines() == ["a", "b"]
        assert feed.remaining == 0

    def test_exhaustion_raises_eoferror_subclass(self):
        feed = StdinFeed([])
        with pytest.raises(EOFError):
            feed.next_line()
        with pytest.raises(ScriptedInputExhausted):
            feed.next_line()

    def test_install_replaces_input_and_stdin(self):
        feed = StdinFeed(["42"])
        feed.install()
        try:
            assert input() == "42"
        finally:
            feed.uninstall()

    def test_double_install_rejected(self):
        feed = StdinFeed([])
        feed.install()
        try:
            with pytest.raises(RuntimeError):
                feed.install()
        finally:
            feed.uninstall()

    def test_stream_reads(self):
        feed = StdinFeed(["x", "y"])
        feed.install()
        try:
            assert sys.stdin.readline() == "x\n"
            assert sys.stdin.read() == "y\n"
            assert sys.stdin.readline() == ""  # EOF
        finally:
            feed.uninstall()

    def test_iteration(self):
        feed = StdinFeed(["1", "2"])
        feed.install()
        try:
            assert list(sys.stdin) == ["1\n", "2\n"]
        finally:
            feed.uninstall()


class TestRunnerWithStdin:
    def test_program_reads_scripted_input(self, runner):
        @register_main("stdin.echo")
        def echo(args: List[str]) -> None:
            count = int(input("how many? "))
            for _ in range(count):
                print_property("Line", input())

        try:
            result = runner.run("stdin.echo", [], stdin_lines=["2", "alpha", "beta"])
        finally:
            unregister_main("stdin.echo")
        assert result.ok
        values = [e.value for e in result.events if e.name == "Line"]
        assert values == ["alpha", "beta"]
        # The prompt went through the intercepted stdout.
        assert "how many?" in result.output

    def test_underprovisioned_input_fails_the_run(self, runner):
        @register_main("stdin.greedy")
        def greedy(args: List[str]) -> None:
            input()
            input()

        try:
            result = runner.run("stdin.greedy", [], stdin_lines=["only one"])
        finally:
            unregister_main("stdin.greedy")
        assert not result.ok
        assert "more input than the test provided" in result.failure_reason()

    def test_input_restored_after_run(self, runner):
        import builtins

        before = builtins.input
        runner.run("primes.correct", ["3", "2"], stdin_lines=["unused"])
        assert builtins.input is before


def make_suite_result() -> SuiteResult:
    return SuiteResult(
        "primes",
        [
            TestResult(
                "Functionality",
                32.0,
                40.0,
                outcomes=[
                    AspectOutcome(
                        "fork syntax", AspectStatus.PASSED, points_earned=6, points_possible=6
                    ),
                    AspectOutcome(
                        "thread interleaving",
                        AspectStatus.FAILED,
                        message="serialized | in order",
                        points_earned=0,
                        points_possible=4,
                    ),
                    AspectOutcome("iteration semantics", AspectStatus.SKIPPED, points_possible=6),
                ],
            ),
            TestResult("Performance", 20.0, 20.0),
        ],
    )


class TestGradescopeExport:
    def test_document_shape(self):
        document = gradescope_document(make_suite_result(), execution_time=1.25)
        assert document["score"] == pytest.approx(52.0)
        assert document["execution_time"] == 1.25
        assert len(document["tests"]) == 2
        functionality = document["tests"][0]
        assert functionality["name"] == "Functionality"
        assert functionality["max_score"] == 40.0
        assert functionality["status"] == "failed"
        assert "thread interleaving" in functionality["output"]

    def test_fatal_result_in_output(self):
        suite = SuiteResult("s", [TestResult("t", 0, 10, fatal="crashed hard")])
        document = gradescope_document(suite)
        assert "FATAL: crashed hard" in document["tests"][0]["output"]

    def test_written_file_is_valid_json(self, tmp_path):
        path = write_gradescope_results(make_suite_result(), tmp_path / "results.json")
        payload = json.loads(path.read_text())
        assert payload["score"] == pytest.approx(52.0)


class TestMarkdown:
    def test_suite_markdown_contains_tables_and_totals(self):
        text = suite_result_markdown(make_suite_result(), student="alice")
        assert "## primes — alice" in text
        assert "**Total: 52 / 60 (87%)**" in text
        assert "| thread interleaving | FAIL |" in text
        assert "serialized \\| in order" in text  # pipe escaped
        assert "| iteration semantics | skip |" in text

    def test_fatal_marker(self):
        suite = SuiteResult("s", [TestResult("t", 0, 10, fatal="boom")])
        text = suite_result_markdown(suite)
        assert "> **FATAL** — boom" in text

    def test_gradebook_markdown(self):
        book = Gradebook("primes")
        book.record(
            SubmissionRecord.from_suite_result("alice", make_suite_result(), timestamp=1.0)
        )
        book.record(
            SubmissionRecord.from_suite_result("alice", make_suite_result(), timestamp=2.0)
        )
        text = gradebook_markdown(book)
        assert "## Gradebook — primes" in text
        assert "| alice | 87% | 87% | 2 |" in text
