"""Tests of subprocess execution of tested programs."""

from __future__ import annotations

import textwrap

import pytest

from repro.execution.registry import UnknownMainError
from repro.execution.subprocess_runner import SubprocessRunner
from repro.graders import HelloFunctionality, PrimesFunctionality


@pytest.fixture(scope="module")
def runner():
    return SubprocessRunner(timeout=60.0)


class TestReconstruction:
    def test_correct_primes_trace_rebuilt(self, runner):
        result = runner.run("primes.correct", ["7", "4"])
        assert result.ok
        assert result.root_thread_id == 23
        assert len(result.worker_threads) == 4
        names = [e.name for e in result.events]
        assert names[0] == "Random Numbers"
        assert names[-1] == "Total Num Primes"
        assert names.count("Index") == 7
        # Values are text at this level; typed parsing happens in the
        # phased-trace builder.
        assert isinstance(result.events[0].value, str)

    def test_root_marker_not_part_of_output(self, runner):
        result = runner.run("primes.correct", ["4", "2"])
        assert "__root__" not in result.output

    def test_plain_print_lines_attributed_via_annotations(self, runner):
        result = runner.run("hello.correct", ["3"])
        assert result.output.count("Hello Concurrent World") == 3
        assert len(result.worker_threads) == 3
        assert all(e.thread is not result.root_thread for e in result.events)

    def test_no_fork_hello_attributed_to_root(self, runner):
        result = runner.run("hello.no_fork", ["1"])
        assert result.worker_threads == []
        assert len(result.root_events()) == 1

    def test_hidden_run_produces_nothing(self, runner):
        result = runner.run("primes.correct", ["5", "2"], hide_prints=True)
        assert result.ok
        assert result.events == []
        assert result.output == ""

    def test_torn_lines_do_not_occur(self, runner):
        """Concurrent prints in the child must never interleave within a
        line (the child buffers per thread and writes lines atomically)."""
        for _ in range(3):
            result = runner.run("primes.correct", ["12", "4"])
            for event in result.events:
                assert event.raw_line.count("Thread ") == 1, event.raw_line


class TestFailureModes:
    def test_unknown_identifier_raises(self, runner):
        with pytest.raises(UnknownMainError):
            runner.run("totally.unknown.program")

    def test_program_exception_reported(self, runner):
        with pytest.raises(UnknownMainError):
            # resolvable module but non-callable attr -> unknown-main exit
            runner.run("repro.workloads.primes.spec:RANDOM_NUMBERS")

    def test_timeout_reported(self, tmp_path):
        slow = tmp_path / "slow.py"
        slow.write_text(
            textwrap.dedent(
                """
                import time

                def main(args):
                    time.sleep(30)
                """
            )
        )
        result = SubprocessRunner(timeout=2.0).run(str(slow))
        assert result.timed_out
        assert not result.ok

    def test_crashing_file_reported(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def main(args):\n    raise ValueError('student bug')\n")
        runner = SubprocessRunner(timeout=30.0)
        result = runner.run(str(bad))
        assert not result.ok
        assert "student bug" in result.failure_reason()


class TestGradingStudentFiles:
    """The real-world path: grade an actual .py file submission."""

    SUBMISSION = textwrap.dedent(
        """
        import threading
        import time
        from repro.tracing import print_property

        def main(args):
            num_randoms = int(args[0]); num_threads = int(args[1])
            randoms = [509, 578, 796, 129, 272, 594, 714][:num_randoms]
            print_property("Random Numbers", randoms)
            counts = []
            lock = threading.Lock()
            barrier = threading.Barrier(num_threads)

            def worker(lo, hi):
                barrier.wait()
                count = 0
                for i in range(lo, hi):
                    n = randoms[i]
                    print_property("Index", i)
                    print_property("Number", n)
                    prime = n > 1 and all(n % d for d in range(2, int(n ** 0.5) + 1))
                    print_property("Is Prime", prime)
                    if prime:
                        count += 1
                    time.sleep(0.002)
                print_property("Num Primes", count)
                with lock:
                    counts.append(count)

            base, extra = divmod(num_randoms, num_threads)
            threads, start = [], 0
            for t in range(num_threads):
                size = base + (1 if t < extra else 0)
                threads.append(threading.Thread(target=worker, args=(start, start + size)))
                start += size
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            print_property("Total Num Primes", sum(counts))
        """
    )

    def test_student_file_earns_full_marks(self, tmp_path):
        submission = tmp_path / "alice_primes.py"
        submission.write_text(self.SUBMISSION)

        class SubprocessPrimes(PrimesFunctionality):
            def make_runner(self):
                return SubprocessRunner(timeout=60.0)

        result = SubprocessPrimes(str(submission)).run()
        assert result.percent == pytest.approx(100.0), result.render()

    def test_registered_variants_grade_identically_in_both_regimes(self):
        class SubprocessPrimes(PrimesFunctionality):
            def make_runner(self):
                return SubprocessRunner(timeout=60.0)

        for identifier, expected in [
            ("primes.serialized", 80.0),
            ("primes.syntax_error", 10.0),
            ("primes.no_fork", 5.0),
        ]:
            result = SubprocessPrimes(identifier).run()
            assert result.percent == pytest.approx(expected), identifier

    def test_hello_checker_via_subprocess(self):
        class SubprocessHello(HelloFunctionality):
            def make_runner(self):
                return SubprocessRunner(timeout=60.0)

        assert SubprocessHello("hello.correct").run().percent == 100.0
        assert SubprocessHello("hello.no_fork").run().percent == 0.0
