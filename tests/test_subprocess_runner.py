"""Tests of subprocess execution of tested programs."""

from __future__ import annotations

import textwrap

import pytest

from repro.execution.registry import UnknownMainError
from repro.execution.subprocess_runner import SubprocessRunner, active_child_count
from repro.execution.taxonomy import FailureKind
from repro.graders import HelloFunctionality, PrimesFunctionality


@pytest.fixture(scope="module")
def runner():
    return SubprocessRunner(timeout=60.0)


class TestReconstruction:
    def test_correct_primes_trace_rebuilt(self, runner):
        result = runner.run("primes.correct", ["7", "4"])
        assert result.ok
        assert result.root_thread_id == 23
        assert len(result.worker_threads) == 4
        names = [e.name for e in result.events]
        assert names[0] == "Random Numbers"
        assert names[-1] == "Total Num Primes"
        assert names.count("Index") == 7
        # Values are text at this level; typed parsing happens in the
        # phased-trace builder.
        assert isinstance(result.events[0].value, str)

    def test_root_marker_not_part_of_output(self, runner):
        result = runner.run("primes.correct", ["4", "2"])
        assert "__root__" not in result.output

    def test_plain_print_lines_attributed_via_annotations(self, runner):
        result = runner.run("hello.correct", ["3"])
        assert result.output.count("Hello Concurrent World") == 3
        assert len(result.worker_threads) == 3
        assert all(e.thread is not result.root_thread for e in result.events)

    def test_no_fork_hello_attributed_to_root(self, runner):
        result = runner.run("hello.no_fork", ["1"])
        assert result.worker_threads == []
        assert len(result.root_events()) == 1

    def test_hidden_run_produces_nothing(self, runner):
        result = runner.run("primes.correct", ["5", "2"], hide_prints=True)
        assert result.ok
        assert result.events == []
        assert result.output == ""

    def test_torn_lines_do_not_occur(self, runner):
        """Concurrent prints in the child must never interleave within a
        line (the child buffers per thread and writes lines atomically)."""
        for _ in range(3):
            result = runner.run("primes.correct", ["12", "4"])
            for event in result.events:
                assert event.raw_line.count("Thread ") == 1, event.raw_line


class TestFailureModes:
    def test_unknown_identifier_raises(self, runner):
        with pytest.raises(UnknownMainError):
            runner.run("totally.unknown.program")

    def test_program_exception_reported(self, runner):
        with pytest.raises(UnknownMainError):
            # resolvable module but non-callable attr -> unknown-main exit
            runner.run("repro.workloads.primes.spec:RANDOM_NUMBERS")

    def test_timeout_reported(self, tmp_path):
        slow = tmp_path / "slow.py"
        slow.write_text(
            textwrap.dedent(
                """
                import time

                def main(args):
                    time.sleep(30)
                """
            )
        )
        result = SubprocessRunner(timeout=2.0).run(str(slow))
        assert result.timed_out
        assert not result.ok

    def test_crashing_file_reported(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def main(args):\n    raise ValueError('student bug')\n")
        runner = SubprocessRunner(timeout=30.0)
        result = runner.run(str(bad))
        assert not result.ok
        assert "student bug" in result.failure_reason()


class TestFailureTaxonomyPaths:
    """The failure shapes a batch of real submissions actually produces."""

    def test_timeout_preserves_partial_output(self):
        result = SubprocessRunner(timeout=2.0).run("faults.hang")
        assert result.timed_out
        assert not result.ok
        assert result.failure_kind is FailureKind.TIMEOUT
        # The child flushed before hanging: the evidence survives the kill.
        assert "Fault:hang" in result.output
        assert "Progress:1" in result.output
        assert active_child_count() == 0

    def test_signal_killed_child_distinct_from_timeout(self):
        result = SubprocessRunner(timeout=30.0).run("faults.signal", ["9"])
        assert not result.timed_out
        assert not result.ok
        assert result.signal_number == 9
        assert result.failure_kind is FailureKind.SIGNAL
        assert "SIGKILL" in result.failure_reason()
        assert "Fault:signal" in result.output

    def test_simulated_segfault(self):
        result = SubprocessRunner(timeout=30.0).run("faults.signal", ["11"])
        assert result.signal_number == 11
        assert result.failure_kind is FailureKind.SIGNAL
        assert "SIGSEGV" in result.failure_reason()

    def test_crash_carries_child_error_text(self, runner):
        result = runner.run("faults.crash")
        assert not result.ok
        assert result.failure_kind is FailureKind.CRASH
        assert "injected crash" in result.failure_reason()

    def test_garbled_property_lines_flagged(self, runner):
        result = runner.run("faults.garble")
        assert result.exception is None
        assert result.signal_number is None
        assert result.failure_kind is FailureKind.GARBLED_TRACE
        assert "Thread 9->NoColonHere" in result.garbled_lines
        assert "Thread notanumber->X:1" in result.garbled_lines

    def test_trace_truncated_mid_line_flagged(self, runner):
        result = runner.run("faults.truncate")
        assert result.failure_kind is FailureKind.GARBLED_TRACE
        # The torn line parses as a property — only the missing newline
        # betrays it.
        assert result.garbled_lines == ["Thread 9->Index:4"]

    def test_clean_fault_program_is_ok(self, runner):
        result = runner.run("faults.ok")
        assert result.ok
        assert result.failure_kind is FailureKind.OK
        assert result.garbled_lines == []

    def test_whitespace_only_stderr_on_unknown_main_exit(self, tmp_path):
        # A child that dies with the unknown-main status but writes only
        # whitespace to stderr used to raise IndexError in the parent.
        fake = tmp_path / "fake-python"
        fake.write_text("#!/bin/sh\nprintf '\\n' >&2\nexit 71\n")
        fake.chmod(0o755)
        runner = SubprocessRunner(timeout=10.0, python=str(fake))
        with pytest.raises(UnknownMainError):
            runner.run("whatever")


class TestGradingStudentFiles:
    """The real-world path: grade an actual .py file submission."""

    SUBMISSION = textwrap.dedent(
        """
        import threading
        import time
        from repro.tracing import print_property

        def main(args):
            num_randoms = int(args[0]); num_threads = int(args[1])
            randoms = [509, 578, 796, 129, 272, 594, 714][:num_randoms]
            print_property("Random Numbers", randoms)
            counts = []
            lock = threading.Lock()
            barrier = threading.Barrier(num_threads)

            def worker(lo, hi):
                barrier.wait()
                count = 0
                for i in range(lo, hi):
                    n = randoms[i]
                    print_property("Index", i)
                    print_property("Number", n)
                    prime = n > 1 and all(n % d for d in range(2, int(n ** 0.5) + 1))
                    print_property("Is Prime", prime)
                    if prime:
                        count += 1
                    time.sleep(0.002)
                print_property("Num Primes", count)
                with lock:
                    counts.append(count)

            base, extra = divmod(num_randoms, num_threads)
            threads, start = [], 0
            for t in range(num_threads):
                size = base + (1 if t < extra else 0)
                threads.append(threading.Thread(target=worker, args=(start, start + size)))
                start += size
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            print_property("Total Num Primes", sum(counts))
        """
    )

    def test_student_file_earns_full_marks(self, tmp_path):
        submission = tmp_path / "alice_primes.py"
        submission.write_text(self.SUBMISSION)

        class SubprocessPrimes(PrimesFunctionality):
            def make_runner(self):
                return SubprocessRunner(timeout=60.0)

        result = SubprocessPrimes(str(submission)).run()
        assert result.percent == pytest.approx(100.0), result.render()

    def test_registered_variants_grade_identically_in_both_regimes(self):
        class SubprocessPrimes(PrimesFunctionality):
            def make_runner(self):
                return SubprocessRunner(timeout=60.0)

        for identifier, expected in [
            ("primes.serialized", 80.0),
            ("primes.syntax_error", 10.0),
            ("primes.no_fork", 5.0),
        ]:
            result = SubprocessPrimes(identifier).run()
            assert result.percent == pytest.approx(expected), identifier

    def test_hello_checker_via_subprocess(self):
        class SubprocessHello(HelloFunctionality):
            def make_runner(self):
                return SubprocessRunner(timeout=60.0)

        assert SubprocessHello("hello.correct").run().percent == 100.0
        assert SubprocessHello("hello.no_fork").run().percent == 0.0
