"""Integration tests of AbstractForkJoinChecker's full pipeline."""

from __future__ import annotations

import threading
import time
from typing import List

import pytest

from repro.core.checker import AbstractForkJoinChecker
from repro.core.outcome import Aspect
from repro.core.properties import ARRAY, BOOLEAN, NUMBER
from repro.execution.registry import register_main, unregister_main
from repro.testfw.annotations import max_value
from repro.testfw.result import AspectStatus
from repro.tracing import print_property


@register_main("checker.test.program")
def _configurable_program(args: List[str]) -> None:
    """A tiny fork-join program whose behaviour is driven by its args."""
    mode = args[0] if args else "correct"
    numbers = [4, 7, 9, 11]
    pre_fork = "Numbers" if mode != "bad-name" else "Nums"
    print_property(pre_fork, numbers)

    total: List[int] = []
    barrier = threading.Barrier(2)

    def worker(lo: int, hi: int) -> None:
        if mode != "no-fork":
            barrier.wait()  # start together so output interleaves
        count = 0
        for index in range(lo, hi):
            print_property("Index", index)
            odd = numbers[index] % 2 == 1
            if mode == "bad-verdict":
                odd = not odd
            print_property("Is Odd", odd)
            count += odd
            time.sleep(0.002)
        print_property("Count", count)
        total.append(count)

    if mode == "no-fork":
        worker(0, 4)
    else:
        threads = [
            threading.Thread(target=worker, args=(0, 2)),
            threading.Thread(target=worker, args=(2, 4)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    print_property("Total", sum(total) + (1 if mode == "bad-total" else 0))


@max_value(50)
class _Checker(AbstractForkJoinChecker):
    def __init__(self, mode: str = "correct") -> None:
        self.mode = mode
        self.reset_state()

    def reset_state(self) -> None:
        self.sum_counts = 0
        self.current = 0

    def main_class_identifier(self) -> str:
        return "checker.test.program"

    def args(self) -> List[str]:
        return [self.mode]

    def num_expected_forked_threads(self) -> int:
        return 2

    def total_iterations(self) -> int:
        return 4

    def pre_fork_property_names_and_types(self):
        return (("Numbers", ARRAY),)

    def iteration_property_names_and_types(self):
        return (("Index", NUMBER), ("Is Odd", BOOLEAN))

    def post_iteration_property_names_and_types(self):
        return (("Count", NUMBER),)

    def post_join_property_names_and_types(self):
        return (("Total", NUMBER),)

    def pre_fork_events_message(self, thread, values):
        self.numbers = list(values["Numbers"])
        return None

    def iteration_events_message(self, thread, values):
        actual = self.numbers[values["Index"]] % 2 == 1
        if values["Is Odd"] != actual:
            return f"Is Odd wrong at index {values['Index']}"
        self.current += actual
        return None

    def post_iteration_events_message(self, thread, values):
        if values["Count"] != self.current:
            return "per-thread count inconsistent"
        self.sum_counts += values["Count"]
        self.current = 0
        return None

    def post_join_events_message(self, thread, values):
        if values["Total"] != self.sum_counts:
            return "total is not the sum of thread counts"
        return None


class TestFullPipeline:
    def test_correct_program_earns_full_score(self):
        result = _Checker("correct").run()
        assert result.score == pytest.approx(50.0)
        assert result.passed
        assert all(o.status is AspectStatus.PASSED for o in result.outcomes)

    def test_max_value_annotation_respected(self):
        checker = _Checker()
        assert checker.max_score == 50.0

    def test_bad_name_gates_semantics(self):
        result = _Checker("bad-name").run()
        statuses = {o.aspect: o.status for o in result.outcomes}
        assert statuses[Aspect.PRE_FORK_SYNTAX] is AspectStatus.FAILED
        assert statuses[Aspect.ITERATION_SEMANTICS] is AspectStatus.SKIPPED
        assert statuses[Aspect.THREAD_COUNT] is AspectStatus.SKIPPED
        assert 0 < result.score < result.max_score

    def test_bad_verdict_fails_iteration_semantics_only_in_semantics(self):
        result = _Checker("bad-verdict").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert Aspect.ITERATION_SEMANTICS in failed
        assert Aspect.PRE_FORK_SYNTAX not in failed

    def test_bad_total_fails_post_join_semantics(self):
        result = _Checker("bad-total").run()
        failed = {o.aspect for o in result.failed_aspects()}
        assert failed == {Aspect.POST_JOIN_SEMANTICS}

    def test_no_fork_reported_via_syntax_gate(self):
        result = _Checker("no-fork").run()
        assert result.score < result.max_score
        failed = {o.aspect for o in result.failed_aspects()}
        assert Aspect.FORK_SYNTAX in failed

    def test_state_reset_between_runs(self):
        checker = _Checker("correct")
        first = checker.run()
        second = checker.run()
        assert first.score == second.score == pytest.approx(50.0)

    def test_check_returns_full_report(self):
        report = _Checker("correct").check()
        assert report.result.passed
        assert report.trace is not None
        assert report.execution is not None
        annotated = report.annotated_trace()
        assert "// pre-fork phase (root thread)" in annotated
        assert "// post-join phase (root thread)" in annotated
        assert "// fork phase" in annotated


class TestFatalPaths:
    def test_unknown_program_is_fatal(self):
        class Missing(AbstractForkJoinChecker):
            def main_class_identifier(self):
                return "does.not.exist"

        result = Missing().run()
        assert result.score == 0
        assert "no tested program" in result.fatal

    def test_crashing_program_is_fatal_with_reason(self):
        @register_main("checker.test.crash")
        def crash(args):
            raise ZeroDivisionError("by zero")

        class Crash(AbstractForkJoinChecker):
            def main_class_identifier(self):
                return "checker.test.crash"

        try:
            result = Crash().run()
        finally:
            unregister_main("checker.test.crash")
        assert result.score == 0
        assert "did not run to completion" in result.fatal
        assert "ZeroDivisionError" in result.fatal

    def test_unimplemented_identifier_raises_via_run_safely(self):
        class Bare(AbstractForkJoinChecker):
            pass

        result = Bare().run_safely()
        assert result.score == 0
        assert "must override main_class_identifier" in result.fatal


class TestParameterDefaults:
    def test_defaults(self):
        class Minimal(AbstractForkJoinChecker):
            def main_class_identifier(self):
                return "x"

        checker = Minimal()
        assert checker.args() == []
        assert checker.total_iterations() is None
        assert checker.num_expected_forked_threads() == 1
        assert checker.thread_count_credit() == 1.0
        assert checker.credit_weights() is None
        assert checker.load_balance_tolerance() == 0
        assert checker.max_score == 100.0

    def test_credit_weight_overrides_flow_through(self):
        class Weighted(_Checker):
            def credit_weights(self):
                # All credit on the post-join semantics.
                return {a: 0.0 for a in [
                    Aspect.PRE_FORK_SYNTAX, Aspect.FORK_SYNTAX, Aspect.POST_JOIN_SYNTAX,
                    Aspect.THREAD_COUNT, Aspect.INTERLEAVING, Aspect.LOAD_BALANCE,
                    Aspect.PRE_FORK_SEMANTICS, Aspect.ITERATION_SEMANTICS,
                    Aspect.POST_ITERATION_SEMANTICS,
                ]} | {Aspect.POST_JOIN_SEMANTICS: 1.0}

        result = Weighted("bad-total").run()
        assert result.score == pytest.approx(0.0)
        ok_result = Weighted("correct").run()
        assert ok_result.score == pytest.approx(50.0)
