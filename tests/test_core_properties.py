"""Unit + property tests of the trace property type system."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.properties import (
    ANY,
    ARRAY,
    BOOLEAN,
    NUMBER,
    STRING,
    PropertySpec,
    coerce_type,
    normalize_specs,
)
from repro.tracing.formatting import format_property_line


class TestTypeMatching:
    def test_number_matches_ints_and_floats(self):
        assert NUMBER.matches_value(3)
        assert NUMBER.matches_value(-2.5)
        assert NUMBER.matches_value(np.int64(7))
        assert NUMBER.matches_value(np.float64(1.5))

    def test_number_rejects_bool(self):
        # As in Java: a Boolean is not a Number.
        assert not NUMBER.matches_value(True)
        assert not NUMBER.matches_value(np.bool_(False))

    def test_boolean_matches_only_bools(self):
        assert BOOLEAN.matches_value(True)
        assert not BOOLEAN.matches_value(1)
        assert not BOOLEAN.matches_value("true")

    def test_array_matches_sequences(self):
        assert ARRAY.matches_value([1, 2])
        assert ARRAY.matches_value((1, 2))
        assert ARRAY.matches_value(np.array([1]))
        assert not ARRAY.matches_value("not an array")

    def test_string_and_any(self):
        assert STRING.matches_value("x")
        assert not STRING.matches_value(1)
        assert ANY.matches_value(object())


class TestCoercion:
    @pytest.mark.parametrize(
        "python_type,expected",
        [(int, NUMBER), (float, NUMBER), (bool, BOOLEAN), (list, ARRAY), (tuple, ARRAY), (str, STRING), (object, ANY)],
    )
    def test_python_types_map(self, python_type, expected):
        assert coerce_type(python_type) is expected

    def test_property_type_passes_through(self):
        assert coerce_type(NUMBER) is NUMBER

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="unsupported property type"):
            coerce_type(dict)


class TestSpecs:
    def test_normalize_pairs(self):
        specs = normalize_specs([("Index", NUMBER), ("Is Prime", bool)])
        assert specs[0] == PropertySpec("Index", NUMBER)
        assert specs[1].type is BOOLEAN

    def test_normalize_accepts_spec_objects(self):
        spec = PropertySpec("X", NUMBER)
        assert normalize_specs([spec]) == [spec]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate property names"):
            normalize_specs([("X", NUMBER), ("X", NUMBER)])

    def test_bad_shape_rejected(self):
        with pytest.raises(TypeError):
            normalize_specs([42])

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError, match="name must be a string"):
            normalize_specs([(42, NUMBER)])

    def test_line_regex_anchors_full_line(self):
        spec = PropertySpec("Index", NUMBER)
        assert spec.matches_line("Thread 24->Index:0")
        assert not spec.matches_line("Thread 24->Index:0 extra")
        assert not spec.matches_line("prefix Thread 24->Index:0")

    def test_regex_distinguishes_names(self):
        spec = PropertySpec("Random Numbers", ARRAY)
        assert spec.matches_line("Thread 23->Random Numbers:[1, 2]")
        assert not spec.matches_line("Thread 23->Randoms:[1, 2]")

    def test_regex_name_with_special_chars_escaped(self):
        spec = PropertySpec("A+B (sum)", NUMBER)
        assert spec.matches_line("Thread 1->A+B (sum):5")
        assert not spec.matches_line("Thread 1->AxB (sum):5")

    def test_boolean_regex(self):
        spec = PropertySpec("Is Prime", BOOLEAN)
        assert spec.matches_line("Thread 24->Is Prime:true")
        assert spec.matches_line("Thread 24->Is Prime:false")
        assert not spec.matches_line("Thread 24->Is Prime:maybe")

    def test_describe(self):
        assert PropertySpec("X", NUMBER).describe() == "'X' (Number)"


# ----------------------------------------------------------------------
# Consistency between the two faces of the type system: any value a type
# accepts must, once formatted the standard way, match the type's regex.
# ----------------------------------------------------------------------

_typed_values = st.one_of(
    st.tuples(st.just(NUMBER), st.integers(min_value=-(10**12), max_value=10**12)),
    st.tuples(st.just(NUMBER), st.floats(allow_nan=False, allow_infinity=False, width=32)),
    st.tuples(st.just(BOOLEAN), st.booleans()),
    st.tuples(st.just(ARRAY), st.lists(st.integers(min_value=-999, max_value=999), max_size=6)),
    st.tuples(st.just(STRING), st.text(alphabet=st.characters(blacklist_characters="\n\r"), max_size=20)),
)


@given(_typed_values, st.integers(min_value=0, max_value=99))
def test_value_match_implies_line_match(typed_value, tid):
    prop_type, value = typed_value
    assert prop_type.matches_value(value)
    spec = PropertySpec("P", prop_type)
    line = format_property_line(tid, "P", value)
    assert spec.matches_line(line), f"regex rejected {line!r}"
