"""Tests of automatic trace generation (the §6 instrumentation)."""

from __future__ import annotations

import threading
from typing import List

import pytest

from repro.instrument import VariableWatcher, instrument
from repro.instrument.watcher import stores_by_line
from repro.tracing.session import TraceSession


def traced_events(func, *args):
    """Run *func* under a session and return its (name, value) events."""
    session = TraceSession()
    with session.activate():
        func(*args)
    return [(e.name, e.value) for e in session.database.snapshot()]


class TestStoresByLine:
    def test_finds_assignment_lines(self):
        def sample():
            x = 1
            y = x + 1
            return y

        code = sample.__code__
        stores = stores_by_line(code, {"x", "y"})
        lines = sorted(stores)
        assert len(lines) == 2
        assert stores[lines[0]] == ["x"]
        assert stores[lines[1]] == ["y"]

    def test_ignores_unwatched_names(self):
        def sample():
            x = 1
            z = 2
            return x + z

        stores = stores_by_line(sample.__code__, {"x"})
        assert all(names == ["x"] for names in stores.values())


class TestInstrumentedLoop:
    def test_every_iteration_traced_even_with_repeated_values(self):
        @instrument(
            watch={"i": "Index", "odd": "Is Odd"},
            loop_var="i",
        )
        def count_odds(numbers: List[int]) -> int:
            total = 0
            for i in range(len(numbers)):
                odd = numbers[i] % 2 == 1
                if odd:
                    total += 1
            return total

        # Consecutive equal "Is Odd" values: the case value-diffing loses.
        events = traced_events(count_odds, [2, 4, 6, 3])
        assert events == [
            ("Index", 0),
            ("Is Odd", False),
            ("Index", 1),
            ("Is Odd", False),
            ("Index", 2),
            ("Is Odd", False),
            ("Index", 3),
            ("Is Odd", True),
        ]

    def test_loop_exhaustion_emits_no_spurious_index(self):
        @instrument(watch={"i": "Index"}, loop_var="i")
        def loop():
            for i in range(3):
                pass

        events = traced_events(loop)
        assert events == [("Index", 0), ("Index", 1), ("Index", 2)]

    def test_finals_emitted_once_at_return(self):
        @instrument(watch={"i": "Index"}, loop_var="i", finals={"total": "Total"})
        def summing():
            total = 0
            for i in range(3):
                total += i
            return total

        events = traced_events(summing)
        assert events[-1] == ("Total", 3)
        assert [e for e in events if e[0] == "Total"] == [("Total", 3)]

    def test_conditional_assignment_traced_only_when_executed(self):
        @instrument(watch={"i": "Index", "flag": "Flag"}, loop_var="i")
        def conditional():
            for i in range(4):
                if i % 2 == 0:
                    flag = True

        events = traced_events(conditional)
        assert events == [
            ("Index", 0),
            ("Flag", True),
            ("Index", 1),
            ("Index", 2),
            ("Flag", True),
            ("Index", 3),
        ]

    def test_while_loop_with_manual_increment(self):
        @instrument(watch={"i": "Index"}, loop_var="i")
        def manual():
            i = 0
            while i < 3:
                i += 1

        events = traced_events(manual)
        assert events == [("Index", 0), ("Index", 1), ("Index", 2), ("Index", 3)]

    def test_loop_var_must_be_watched(self):
        with pytest.raises(ValueError, match="loop_var"):
            instrument(watch={"x": "X"}, loop_var="y")(lambda: None)


class TestThreadScoping:
    def test_each_thread_traces_its_own_execution(self):
        @instrument(watch={"i": "Index"}, loop_var="i", finals={"done": "Done"})
        def worker():
            for i in range(2):
                pass
            done = True

        session = TraceSession()
        with session.activate():
            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        events = session.database.snapshot()
        per_thread = {}
        for event in events:
            per_thread.setdefault(event.thread_id, []).append(event.name)
        assert len(per_thread) == 2
        for names in per_thread.values():
            assert names == ["Index", "Index", "Done"]

    def test_previous_trace_function_restored(self):
        import sys

        sentinel_calls = []

        def sentinel(frame, event, arg):
            sentinel_calls.append(event)
            return None

        @instrument(watch={"x": "X"})
        def traced():
            x = 1

        old = sys.gettrace()
        sys.settrace(sentinel)
        try:
            traced()
            assert sys.gettrace() is sentinel
        finally:
            sys.settrace(old)


class TestEndToEndAutoGrading:
    def test_uninstrumented_primes_earns_full_marks(self, round_robin_backend):
        """The §6 headline: zero print calls in the student code, full
        score from the unchanged grader."""
        from repro.graders import PrimesFunctionality

        result = PrimesFunctionality("primes.auto").run()
        assert result.percent == pytest.approx(100.0), result.render()

    def test_auto_trace_matches_hand_traced_solution(self, round_robin_backend):
        from repro.execution.runner import ProgramRunner

        auto = ProgramRunner().run("primes.auto", ["7", "4"])
        hand = ProgramRunner().run("primes.correct", ["7", "4"])
        assert [e.name for e in auto.events] == [e.name for e in hand.events]
        assert [e.value for e in auto.events] == [e.value for e in hand.events]

    def test_source_has_no_print_property_calls(self):
        import inspect

        from repro.workloads.primes import uninstrumented

        source = inspect.getsource(uninstrumented._uninstrumented_main)
        assert "print_property" not in source
