"""Unit + property tests of semantic dispatch and credit allocation."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.credit import DEFAULT_WEIGHTS, CreditSchema, score_outcomes
from repro.core.outcome import Aspect, CheckOutcome, merge_outcomes
from repro.core.semantics import run_semantic_checks
from repro.core.trace_model import build_phased_trace
from repro.testfw.result import AspectStatus
from tests.helpers import primes_schedule, synthetic_execution
from tests.test_core_trace_model import PRIMES_SPECS


class RecordingCallbacks:
    """Scriptable semantic callbacks that record their invocation order."""

    def __init__(self, verdicts: Optional[Dict[str, str]] = None) -> None:
        self.calls: List[tuple] = []
        self.verdicts = verdicts or {}

    def pre_fork_events_message(self, thread, values):
        self.calls.append(("pre-fork", dict(values)))
        return self.verdicts.get("pre-fork")

    def iteration_events_message(self, thread, values):
        self.calls.append(("iteration", values["Index"]))
        return self.verdicts.get("iteration")

    def post_iteration_events_message(self, thread, values):
        self.calls.append(("post-iteration", values["Num Primes"]))
        return self.verdicts.get("post-iteration")

    def post_join_events_message(self, thread, values):
        self.calls.append(("post-join", dict(values)))
        return self.verdicts.get("post-join")


ALL_OVERRIDDEN = {aspect: True for aspect in Aspect.SEMANTICS}


def primes_trace(**kwargs):
    return build_phased_trace(synthetic_execution(primes_schedule(**kwargs)), PRIMES_SPECS)


class TestSemanticDispatch:
    def test_invocation_order_groups_threads(self):
        """Iterations of one thread are fully processed before the next
        thread's — the appendix's de-interleaving guarantee."""
        callbacks = RecordingCallbacks()
        run_semantic_checks(primes_trace(), callbacks, overridden=ALL_OVERRIDDEN)
        kinds = [kind for kind, _payload in callbacks.calls]
        assert kinds[0] == "pre-fork"
        assert kinds[-1] == "post-join"
        # Between pre-fork and post-join: per-thread blocks, each a run of
        # iterations terminated by exactly one post-iteration.
        middle = kinds[1:-1]
        blocks = 0
        expecting_iteration = True
        for kind in middle:
            if kind == "post-iteration":
                blocks += 1
                expecting_iteration = True
            else:
                assert kind == "iteration"
        assert blocks == 4

    def test_iteration_indices_grouped_by_slice(self):
        callbacks = RecordingCallbacks()
        run_semantic_checks(primes_trace(), callbacks, overridden=ALL_OVERRIDDEN)
        iteration_indices = [p for k, p in callbacks.calls if k == "iteration"]
        # Thread slices are contiguous even though the trace interleaved.
        assert iteration_indices == [0, 1, 2, 3, 4, 5, 6]

    def test_all_aspects_ok_when_callbacks_return_none(self):
        outcomes = run_semantic_checks(
            primes_trace(), RecordingCallbacks(), overridden=ALL_OVERRIDDEN
        )
        assert len(outcomes) == 4
        assert all(o.ok for o in outcomes)

    def test_error_message_fails_one_aspect(self):
        callbacks = RecordingCallbacks(verdicts={"iteration": "wrong prime"})
        outcomes = run_semantic_checks(
            primes_trace(), callbacks, overridden=ALL_OVERRIDDEN
        )
        by_aspect = {o.aspect: o for o in outcomes}
        assert not by_aspect[Aspect.ITERATION_SEMANTICS].ok
        assert "wrong prime" in by_aspect[Aspect.ITERATION_SEMANTICS].message
        assert by_aspect[Aspect.POST_JOIN_SEMANTICS].ok

    def test_raising_callback_fails_aspect_with_diagnosis(self):
        class Exploding(RecordingCallbacks):
            def iteration_events_message(self, thread, values):
                raise KeyError("Missing Prop")

        outcomes = run_semantic_checks(
            primes_trace(), Exploding(), overridden=ALL_OVERRIDDEN
        )
        by_aspect = {o.aspect: o for o in outcomes}
        assert not by_aspect[Aspect.ITERATION_SEMANTICS].ok
        assert "semantic check raised" in by_aspect[Aspect.ITERATION_SEMANTICS].message

    def test_unoverridden_aspects_not_dispatched(self):
        callbacks = RecordingCallbacks()
        outcomes = run_semantic_checks(
            primes_trace(),
            callbacks,
            overridden={Aspect.ITERATION_SEMANTICS: True},
        )
        assert [o.aspect for o in outcomes] == [Aspect.ITERATION_SEMANTICS]
        kinds = {k for k, _p in callbacks.calls}
        assert kinds == {"iteration"}


class TestMergeOutcomes:
    def test_duplicate_aspects_merge_conservatively(self):
        merged = merge_outcomes(
            [
                CheckOutcome(Aspect.FORK_SYNTAX, ok=True),
                CheckOutcome(Aspect.FORK_SYNTAX, ok=False, errors=["count off"]),
            ]
        )
        outcome = merged[Aspect.FORK_SYNTAX]
        assert not outcome.ok
        assert outcome.errors == ["count off"]
        assert outcome.partial_credit == 0.0

    def test_both_ok_stays_ok(self):
        merged = merge_outcomes(
            [CheckOutcome(Aspect.FORK_SYNTAX, ok=True), CheckOutcome(Aspect.FORK_SYNTAX, ok=True)]
        )
        assert merged[Aspect.FORK_SYNTAX].ok


class TestCreditSchema:
    def test_default_weights_sum_to_100(self):
        assert sum(DEFAULT_WEIGHTS.values()) == pytest.approx(100.0)

    def test_normalisation_preserves_ratios(self):
        schema = CreditSchema()
        points = schema.normalised([Aspect.FORK_SYNTAX, Aspect.PRE_FORK_SYNTAX], 40.0)
        assert points[Aspect.FORK_SYNTAX] == pytest.approx(30.0)
        assert points[Aspect.PRE_FORK_SYNTAX] == pytest.approx(10.0)

    def test_override_replaces_weight(self):
        schema = CreditSchema().override({Aspect.FORK_SYNTAX: 0.0})
        assert schema.weight_of(Aspect.FORK_SYNTAX) == 0.0

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            CreditSchema().override({Aspect.FORK_SYNTAX: -1})

    def test_unknown_aspects_split_evenly(self):
        schema = CreditSchema(weights={})
        points = schema.normalised(["a", "b"], 10.0)
        assert points == {"a": 5.0, "b": 5.0}

    def test_empty_applicable_set(self):
        assert CreditSchema().normalised([], 10.0) == {}


class TestScoring:
    def test_paper_reference_scores(self):
        """The calibration the paper's figures report: 100/80/10."""
        schema = CreditSchema()
        all_aspects = list(DEFAULT_WEIGHTS)

        # Fig. 9: everything passes.
        checked = {a: CheckOutcome(a, ok=True) for a in all_aspects}
        score, _report = score_outcomes(checked, [], schema, 100.0)
        assert score == pytest.approx(100.0)

        # Fig. 10: interleaving and load balance fail.
        checked = {
            a: CheckOutcome(a, ok=a not in (Aspect.INTERLEAVING, Aspect.LOAD_BALANCE))
            for a in all_aspects
        }
        score, _report = score_outcomes(checked, [], schema, 100.0)
        assert score == pytest.approx(80.0)

        # Fig. 11: pre-fork + fork syntax fail, the rest skipped.
        checked = {
            Aspect.PRE_FORK_SYNTAX: CheckOutcome(Aspect.PRE_FORK_SYNTAX, ok=False),
            Aspect.FORK_SYNTAX: CheckOutcome(Aspect.FORK_SYNTAX, ok=False),
            Aspect.POST_JOIN_SYNTAX: CheckOutcome(Aspect.POST_JOIN_SYNTAX, ok=True),
        }
        skipped = [a for a in all_aspects if a not in checked]
        score, report = score_outcomes(checked, skipped, schema, 100.0)
        assert score == pytest.approx(10.0)
        statuses = {o.aspect: o.status for o in report}
        assert statuses[Aspect.ITERATION_SEMANTICS] is AspectStatus.SKIPPED

    def test_partial_credit_scales_weight(self):
        checked = {
            Aspect.THREAD_COUNT: CheckOutcome(
                Aspect.THREAD_COUNT, ok=False, errors=["wrong"], partial_credit=0.2
            )
        }
        score, [line] = score_outcomes(checked, [], CreditSchema(), 10.0)
        assert score == pytest.approx(2.0)
        assert line.status is AspectStatus.FAILED
        assert line.points_possible == pytest.approx(10.0)

    def test_max_value_scaling(self):
        checked = {a: CheckOutcome(a, ok=True) for a in DEFAULT_WEIGHTS}
        score, _report = score_outcomes(checked, [], CreditSchema(), 40.0)
        assert score == pytest.approx(40.0)


# ----------------------------------------------------------------------
# Property: scoring is bounded and monotone in the outcome set.
# ----------------------------------------------------------------------

aspect_subsets = st.dictionaries(
    st.sampled_from(list(DEFAULT_WEIGHTS)), st.booleans(), min_size=1
)


@given(aspect_subsets, st.floats(min_value=1.0, max_value=1000.0))
def test_score_bounded_by_max(verdicts, max_score):
    checked = {a: CheckOutcome(a, ok=ok) for a, ok in verdicts.items()}
    score, report = score_outcomes(checked, [], CreditSchema(), max_score)
    assert 0.0 <= score <= max_score + 1e-6
    assert sum(o.points_possible for o in report) == pytest.approx(max_score, rel=1e-6)


@given(aspect_subsets)
def test_flipping_failure_to_pass_never_lowers_score(verdicts):
    schema = CreditSchema()
    checked = {a: CheckOutcome(a, ok=ok) for a, ok in verdicts.items()}
    base, _r = score_outcomes(checked, [], schema, 100.0)
    for aspect in verdicts:
        improved = dict(checked)
        improved[aspect] = CheckOutcome(aspect, ok=True)
        better, _r2 = score_outcomes(improved, [], schema, 100.0)
        assert better >= base - 1e-9
