"""Tests of the grading layer: records, gradebook, logs, awareness, batch."""

from __future__ import annotations

import json

import pytest

from repro.grading.awareness import analyze_progress
from repro.grading.batch import grade_batch, grade_submissions
from repro.grading.gradebook import Gradebook
from repro.grading.logs import ProgressLog
from repro.grading.records import AspectRecord, SubmissionRecord, TestRecord
from repro.testfw.result import (
    AspectOutcome,
    AspectStatus,
    SuiteResult,
    TestResult,
)


def make_suite_result(score: float, *, failed_aspect: str = "") -> SuiteResult:
    outcomes = []
    if failed_aspect:
        outcomes.append(
            AspectOutcome(failed_aspect, AspectStatus.FAILED, message="nope")
        )
    return SuiteResult(
        "primes",
        [TestResult("Functionality", score, 40.0, outcomes=outcomes)],
    )


class TestRecords:
    def test_round_trip_via_dict(self):
        record = SubmissionRecord.from_suite_result(
            "alice", make_suite_result(32.0, failed_aspect="thread interleaving"),
            timestamp=1000.0,
        )
        clone = SubmissionRecord.from_dict(record.to_dict())
        assert clone.student == "alice"
        assert clone.percent == pytest.approx(80.0)
        assert clone.failed_aspects() == ["thread interleaving"]
        assert clone.timestamp == 1000.0

    def test_kind_defaults_and_tags(self):
        record = SubmissionRecord.from_suite_result("bob", make_suite_result(40.0))
        assert record.kind == "final"

    def test_schedule_seed_and_elapsed_round_trip(self):
        record = SubmissionRecord.from_suite_result(
            "dana", make_suite_result(20.0), schedule_seed=3, elapsed=1.25
        )
        clone = SubmissionRecord.from_dict(record.to_dict())
        assert clone.schedule_seed == 3
        assert clone.elapsed == pytest.approx(1.25)
        assert clone.racy

    def test_racy_record_is_not_flaky(self):
        # A failure pinned to a recorded schedule is deterministic and
        # replayable — the opposite of flaky, even over many attempts.
        record = SubmissionRecord.from_suite_result(
            "dana", make_suite_result(20.0), attempts=2,
            attempt_outcomes=["fail", "fail@s2"], schedule_seed=2,
        )
        assert record.racy and not record.flaky
        plain = SubmissionRecord.from_suite_result(
            "earl", make_suite_result(40.0), attempts=2,
            attempt_outcomes=["fail", "ok"]
        )
        assert plain.flaky and not plain.racy

    def test_aspect_record_flags(self):
        failed = AspectRecord("x", "failed", "m", 0, 5)
        passed = AspectRecord("x", "passed", "", 5, 5)
        assert failed.failed and not failed.passed
        assert passed.passed and not passed.failed

    def test_test_record_percent(self):
        record = TestRecord("t", 10.0, 40.0)
        assert record.percent == pytest.approx(25.0)


class TestGradebook:
    def test_best_and_latest(self):
        book = Gradebook("primes")
        book.record(SubmissionRecord.from_suite_result("alice", make_suite_result(20.0), timestamp=1))
        book.record(SubmissionRecord.from_suite_result("alice", make_suite_result(36.0), timestamp=2))
        book.record(SubmissionRecord.from_suite_result("alice", make_suite_result(32.0), timestamp=3))
        assert book.best("alice").score == 36.0
        assert book.latest("alice").score == 32.0

    def test_unknown_student(self):
        book = Gradebook("primes")
        assert book.best("nobody") is None
        assert book.latest("nobody") is None

    def test_wrong_suite_rejected(self):
        book = Gradebook("odds")
        with pytest.raises(ValueError, match="suite"):
            book.record(SubmissionRecord.from_suite_result("a", make_suite_result(1.0)))

    def test_class_statistics(self):
        book = Gradebook("primes")
        book.record(SubmissionRecord.from_suite_result("alice", make_suite_result(40.0)))
        book.record(SubmissionRecord.from_suite_result("bob", make_suite_result(20.0)))
        assert book.class_percentages() == {"alice": 100.0, "bob": 50.0}
        assert book.mean_percent() == pytest.approx(75.0)
        assert "alice" in book.render()

    def test_save_and_load(self, tmp_path):
        book = Gradebook("primes")
        book.record(SubmissionRecord.from_suite_result("alice", make_suite_result(40.0)))
        path = tmp_path / "gradebook.json"
        book.save(path)
        loaded = Gradebook.load(path)
        assert loaded.suite == "primes"
        assert loaded.best("alice").score == 40.0
        # File is honest JSON an instructor can inspect.
        payload = json.loads(path.read_text())
        assert payload["suite"] == "primes"


class TestProgressLog:
    def test_in_memory_logging(self):
        log = ProgressLog()
        log.log_run("alice", make_suite_result(10.0), timestamp=1.0)
        log.log_run("bob", make_suite_result(40.0), timestamp=2.0)
        assert len(log) == 2
        assert log.students() == ["alice", "bob"]
        assert len(log.entries_of("alice")) == 1
        assert log.entries()[0].kind == "progress"

    def test_jsonl_persistence(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        log = ProgressLog(path)
        log.log_run("alice", make_suite_result(10.0), timestamp=1.0)
        log.log_run("alice", make_suite_result(20.0), timestamp=2.0)
        reloaded = ProgressLog(path)
        assert len(reloaded) == 2
        assert reloaded.entries()[1].percent == pytest.approx(50.0)


class TestAwareness:
    def build_log(self):
        log = ProgressLog()
        # alice improves steadily to full marks
        for t, score in enumerate([8.0, 24.0, 40.0]):
            log.log_run("alice", make_suite_result(score), timestamp=float(t))
        # bob is stuck on interleaving at 32/40 for many runs
        log.log_run("bob", make_suite_result(32.0, failed_aspect="thread interleaving"), timestamp=0.0)
        for t in range(1, 5):
            log.log_run(
                "bob",
                make_suite_result(28.0, failed_aspect="thread interleaving"),
                timestamp=float(t),
            )
        return log

    def test_student_trajectories(self):
        report = analyze_progress(self.build_log(), suite="primes")
        by_name = {s.student: s for s in report.students}
        assert by_name["alice"].improving
        assert not by_name["alice"].stuck
        assert by_name["bob"].stuck
        assert by_name["bob"].runs == 5
        assert "thread interleaving" in by_name["bob"].recurring_failures

    def test_hardest_aspects_ranked(self):
        report = analyze_progress(self.build_log(), suite="primes")
        assert report.hardest_aspects() == ["thread interleaving"]
        assert report.aspect_failure_rates["thread interleaving"] == pytest.approx(0.5)

    def test_difficulty_classification(self):
        report = analyze_progress(self.build_log(), suite="primes")
        # alice latest 100, bob latest 70 -> mean 85 -> appropriate
        assert report.difficulty == "appropriate"

    def test_difficulty_extremes(self):
        easy = ProgressLog()
        easy.log_run("a", make_suite_result(40.0), timestamp=1.0)
        assert analyze_progress(easy).difficulty == "too easy"
        hard = ProgressLog()
        hard.log_run("a", make_suite_result(8.0), timestamp=1.0)
        assert analyze_progress(hard).difficulty == "too hard"

    def test_render_flags_stuck_students(self):
        text = analyze_progress(self.build_log(), suite="primes").render()
        assert "STUCK" in text
        assert "hardest requirements" in text

    def test_empty_log(self):
        report = analyze_progress(ProgressLog())
        assert report.students == []
        assert report.mean_latest_percent == 0.0


class TestBatch:
    def test_grade_batch_over_variants(self, round_robin_backend):
        from repro.graders import PrimesFunctionality
        from repro.testfw.suite import TestSuite

        def factory(identifier: str) -> TestSuite:
            return TestSuite("primes", [PrimesFunctionality(identifier)])

        gradebook, live = grade_batch(
            factory, ["primes.correct", "primes.imbalanced", "primes.no_fork"]
        )
        percentages = gradebook.class_percentages()
        assert percentages["primes.correct"] == pytest.approx(100.0)
        assert percentages["primes.no_fork"] < percentages["primes.imbalanced"] < 100.0
        assert set(live) == set(percentages)

    def test_grade_submissions_custom_names(self, round_robin_backend):
        from repro.graders import PrimesFunctionality
        from repro.testfw.suite import TestSuite

        def factory(identifier: str) -> TestSuite:
            return TestSuite("primes", [PrimesFunctionality(identifier)])

        gradebook, _live = grade_submissions(factory, {"alice": "primes.correct"})
        assert gradebook.students() == ["alice"]

    def test_empty_batch_yields_empty_gradebook(self):
        # An empty batch is a valid (resumed-and-complete) state, not an
        # error: the suite factory must not even be called.
        def exploding_factory(identifier):
            raise AssertionError("factory called for an empty batch")

        gradebook, live = grade_batch(exploding_factory, [])
        assert gradebook.students() == []
        assert live == {}

    def test_empty_batch_names_gradebook_when_asked(self):
        gradebook, _live = grade_submissions(
            lambda i: None, {}, suite_name="primes"
        )
        assert gradebook.suite == "primes"
        assert gradebook.mean_percent() == 0.0
