"""Tests of the full check report (annotated traces, rendering)."""

from __future__ import annotations

import pytest

from repro.core.report import ForkJoinCheckReport
from repro.core.trace_model import build_phased_trace
from repro.graders import PrimesFunctionality
from repro.testfw.result import TestResult
from tests.helpers import primes_schedule, synthetic_execution
from tests.test_core_trace_model import PRIMES_SPECS


def make_report():
    execution = synthetic_execution(primes_schedule())
    trace = build_phased_trace(execution, PRIMES_SPECS)
    result = TestResult("T", 40.0, 40.0)
    return ForkJoinCheckReport(result=result, execution=execution, trace=trace)


class TestAnnotatedTrace:
    def test_phase_comments_inserted_once_per_transition(self):
        annotated = make_report().annotated_trace()
        assert annotated.count("// pre-fork phase (root thread)") == 1
        assert annotated.count("// fork phase") == 1
        assert annotated.count("// post-join phase (root thread)") == 1

    def test_all_output_lines_present(self):
        report = make_report()
        annotated = report.annotated_trace()
        for event in report.execution.events:
            assert event.raw_line in annotated

    def test_phase_order(self):
        annotated = make_report().annotated_trace()
        pre = annotated.index("// pre-fork")
        fork = annotated.index("// fork phase")
        post = annotated.index("// post-join")
        assert pre < fork < post

    def test_mid_fork_root_output_called_out(self):
        schedule = primes_schedule()
        schedule.insert(5, ("R", "Debug", 1))
        execution = synthetic_execution(schedule)
        trace = build_phased_trace(execution, PRIMES_SPECS)
        report = ForkJoinCheckReport(
            result=TestResult("T", 0, 40), execution=execution, trace=trace
        )
        assert "UNEXPECTED root output during fork phase" in report.annotated_trace()

    def test_empty_report_renders_result_only(self):
        report = ForkJoinCheckReport(result=TestResult("T", 0, 40, fatal="x"))
        assert report.annotated_trace() == ""
        assert "! x" in report.render()

    def test_render_combines_trace_and_result(self):
        text = make_report().render()
        assert "// fork phase" in text
        assert "T: 40 / 40" in text

    def test_score_accessors(self):
        report = make_report()
        assert report.score == 40.0
        assert report.percent == pytest.approx(100.0)


class TestReportFromRealChecker:
    def test_annotated_trace_matches_figure_nine_shape(self, round_robin_backend):
        report = PrimesFunctionality("primes.correct").check()
        lines = report.annotated_trace().splitlines()
        # First content line after the pre-fork comment is the randoms.
        assert lines[0] == "// pre-fork phase (root thread)"
        assert lines[1].startswith("Thread 23->Random Numbers:[")
        assert lines[-1].startswith("Thread 23->Total Num Primes:")
        assert lines[-2] == "// post-join phase (root thread)"
