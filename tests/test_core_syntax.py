"""Unit tests of static and dynamic syntax checking."""

from __future__ import annotations

import pytest

from repro.core.dynamic_syntax import check_dynamic_syntax
from repro.core.outcome import Aspect
from repro.core.syntax import check_fork_syntax, check_root_phase_syntax, check_static_syntax
from repro.core.trace_model import build_phased_trace
from tests.helpers import primes_schedule, synthetic_execution
from tests.test_core_trace_model import PRIMES_SPECS


def trace_of(schedule):
    return build_phased_trace(synthetic_execution(schedule), PRIMES_SPECS)


class TestRootPhaseSyntax:
    def test_correct_pre_fork_passes(self):
        trace = trace_of(primes_schedule())
        outcome = check_root_phase_syntax(
            "pre-fork", Aspect.PRE_FORK_SYNTAX, trace.pre_fork_events, PRIMES_SPECS.pre_fork
        )
        assert outcome.ok

    def test_wrong_name_reported_with_paper_wording(self):
        trace = trace_of(primes_schedule(pre_fork_name="Randoms"))
        outcome = check_root_phase_syntax(
            "pre-fork", Aspect.PRE_FORK_SYNTAX, trace.pre_fork_events, PRIMES_SPECS.pre_fork
        )
        assert not outcome.ok
        assert outcome.errors == [
            "the pre-fork property is named 'Randoms' rather than 'Random Numbers'"
        ]

    def test_missing_property_reported(self):
        trace = trace_of([("A", "Index", 0)])
        outcome = check_root_phase_syntax(
            "pre-fork", Aspect.PRE_FORK_SYNTAX, trace.pre_fork_events, PRIMES_SPECS.pre_fork
        )
        assert not outcome.ok
        assert "missing 'Random Numbers'" in outcome.errors[0]

    def test_wrong_type_reported(self):
        # Root prints a scalar where an array is required.
        schedule = primes_schedule()
        schedule[0] = ("R", "Random Numbers", 42)
        trace = trace_of(schedule)
        outcome = check_root_phase_syntax(
            "pre-fork", Aspect.PRE_FORK_SYNTAX, trace.pre_fork_events, PRIMES_SPECS.pre_fork
        )
        assert not outcome.ok
        assert "should be a Array" in outcome.errors[0]


class TestForkSyntax:
    def test_correct_fork_count_passes(self):
        trace = trace_of(primes_schedule())
        outcome = check_fork_syntax(trace, total_iterations=7, expected_threads=4)
        assert outcome.ok

    def test_shortfall_reported_with_expected_regex_count(self):
        # Drop one worker's entire slice: 2 iterations -> 6 lines missing.
        trace = trace_of(
            primes_schedule(worker_slices={"A": [0, 1], "B": [2, 3], "C": [4, 5]})
        )
        outcome = check_fork_syntax(trace, total_iterations=7, expected_threads=4)
        assert not outcome.ok
        message = outcome.errors[0]
        assert "25 regular expressions" in message
        assert "7 iterations" in message
        assert "4 threads" in message

    def test_unknown_total_skips_count_check(self):
        trace = trace_of(
            primes_schedule(worker_slices={"A": [0, 1], "B": [2, 3], "C": [4, 5]})
        )
        outcome = check_fork_syntax(trace, total_iterations=None, expected_threads=4)
        assert outcome.ok  # all lines match declared regexes

    def test_unmatched_lines_itemised_and_elided(self):
        schedule = primes_schedule()
        for i in range(5):
            schedule.insert(3, ("A", f"Junk{i}", i))
        trace = trace_of(schedule)
        outcome = check_fork_syntax(trace, total_iterations=7, expected_threads=4)
        assert not outcome.ok
        itemised = [e for e in outcome.errors if "matches no declared" in e]
        assert len(itemised) == 3  # capped
        assert any("more unmatched" in e for e in outcome.errors)


class TestStaticSyntaxAggregation:
    def test_all_phases_checked(self):
        trace = trace_of(primes_schedule())
        outcomes = check_static_syntax(trace, total_iterations=7, expected_threads=4)
        assert {o.aspect for o in outcomes} == {
            Aspect.PRE_FORK_SYNTAX,
            Aspect.FORK_SYNTAX,
            Aspect.POST_JOIN_SYNTAX,
        }
        assert all(o.ok for o in outcomes)

    def test_aspects_omitted_without_specs(self):
        from repro.core.trace_model import PhaseSpecs

        trace = build_phased_trace(
            synthetic_execution([("A", "str", "hi")]), PhaseSpecs()
        )
        assert check_static_syntax(trace, total_iterations=None, expected_threads=1) == []


class TestDynamicSyntax:
    def test_clean_trace_passes(self):
        trace = trace_of(primes_schedule())
        outcomes = check_dynamic_syntax(trace, total_iterations=7)
        assert len(outcomes) == 1 and outcomes[0].ok

    def test_structure_errors_fail_fork_aspect(self):
        schedule = [
            ("R", "Random Numbers", [5]),
            ("A", "Index", 0),
            ("A", "Number", 5),
            ("A", "Is Prime", True),
            # missing post-iteration
            ("R", "Total Num Primes", 1),
        ]
        trace = trace_of(schedule)
        [outcome] = check_dynamic_syntax(trace, total_iterations=1)
        assert not outcome.ok
        assert outcome.aspect == Aspect.FORK_SYNTAX

    def test_iteration_total_mismatch_reported(self):
        trace = trace_of(primes_schedule())
        [outcome] = check_dynamic_syntax(trace, total_iterations=9)
        assert not outcome.ok
        assert "requires exactly 9" in outcome.errors[0]

    def test_root_output_mid_fork_fails(self):
        schedule = primes_schedule()
        schedule.insert(5, ("R", "Debug", 1))
        trace = trace_of(schedule)
        [outcome] = check_dynamic_syntax(trace, total_iterations=7)
        assert not outcome.ok
        assert any("during the fork phase" in e for e in outcome.errors)

    def test_concurrency_only_specs_yield_no_outcomes(self):
        from repro.core.trace_model import PhaseSpecs

        trace = build_phased_trace(
            synthetic_execution([("A", "str", "hi")]), PhaseSpecs()
        )
        assert check_dynamic_syntax(trace, total_iterations=None) == []
