"""Tests of the controlled scheduler, exploration, and replay.

The acceptance bar for this layer is the paper's own: a racy submission
must fail (or be exonerated) *reproducibly*.  The tests here verify it
twice over — same seed ⇒ byte-identical event sequence, and a saved
schedule file replayed ⇒ the identical trace — plus the strategy,
lock-instrumentation, and supervisor-integration behaviour around it.
"""

from __future__ import annotations

import json

import pytest

from repro.execution.exploration import ScheduleExplorer
from repro.execution.runner import ProgramRunner
from repro.execution.scheduling import (
    BoundedPreemptionStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    ScheduleDecision,
    ScheduleDivergenceError,
    ScheduleTrace,
    ScheduledBackend,
    bounded_preemption_sweep,
    resolve_schedule_strategy,
)
from repro.graders import PrimesFunctionality

RACY = "primes.racy"
CORRECT = "primes.correct"
SMALL_ARGS = ["12", "3"]


def run_scheduled(identifier, schedule, args=SMALL_ARGS):
    return ProgramRunner(timeout=20.0).run(identifier, list(args), schedule=schedule)


def event_fingerprint(result):
    """The replay-relevant content of a trace, as comparable bytes."""
    return json.dumps(
        [
            (e.seq, e.thread_id, e.thread_seq, e.name, e.raw_line, e.schedule_id)
            for e in result.events
        ]
    ).encode()


def decision_dicts(trace):
    return [d.to_dict() for d in trace.decisions]


class TestStrategies:
    def test_random_walk_is_seed_deterministic(self):
        picks_a = [RandomWalkStrategy(5).choose([1, 2, 3], None, "trace", i) for i in range(8)]
        # A fresh strategy with the same seed reproduces the stream.
        strategy = RandomWalkStrategy(5)
        picks_b = [strategy.choose([1, 2, 3], None, "trace", i) for i in range(1)]
        assert picks_a[0] == picks_b[0]
        assert RandomWalkStrategy(5).label() == "random-walk:5"

    def test_bounded_preemption_honours_quantum(self):
        strategy = BoundedPreemptionStrategy(quantum=2, rotation=0)
        ready = [0, 1, 2]
        first = strategy.choose(ready, None, "start", 0)
        assert first == 0
        # Current keeps the grant for quantum consecutive decisions.
        assert strategy.choose(ready, first, "trace", 1) == first
        # Then rotates to the next ready key.
        assert strategy.choose(ready, first, "trace", 2) == 1

    def test_bounded_preemption_rotation_offsets_first_pick(self):
        strategy = BoundedPreemptionStrategy(quantum=1, rotation=2)
        assert strategy.choose([0, 1, 2], None, "start", 0) == 2

    def test_sweep_is_deterministic_and_sized(self):
        grid_a = [s.label() for s in bounded_preemption_sweep(10, max_quantum=3)]
        grid_b = [s.label() for s in bounded_preemption_sweep(10, max_quantum=3)]
        assert grid_a == grid_b
        assert len(grid_a) == 10
        assert grid_a[0] == "preemption-bound:q1.r0"

    def test_resolve_accepts_seed_trace_and_strategy(self):
        assert isinstance(resolve_schedule_strategy(3), RandomWalkStrategy)
        trace = ScheduleTrace(strategy="random-walk", seed=3)
        assert isinstance(resolve_schedule_strategy(trace), ReplayStrategy)
        strategy = BoundedPreemptionStrategy()
        assert resolve_schedule_strategy(strategy) is strategy
        with pytest.raises(TypeError):
            resolve_schedule_strategy("not-a-schedule")


class TestControlledRuns:
    def test_same_seed_is_byte_identical_twice(self):
        """Acceptance: same seed ⇒ same event sequence, verified twice."""
        baseline = run_scheduled(RACY, 7)
        assert baseline.ok and baseline.events
        assert baseline.schedule_seed == 7
        for _ in range(2):
            again = run_scheduled(RACY, 7)
            assert event_fingerprint(again) == event_fingerprint(baseline)
            assert decision_dicts(again.schedule) == decision_dicts(baseline.schedule)
            assert again.output == baseline.output

    def test_different_seeds_differ(self):
        runs = {event_fingerprint(run_scheduled(RACY, seed)) for seed in range(4)}
        assert len(runs) > 1, "four seeds produced one interleaving"

    def test_schedule_id_stamped_on_events(self):
        result = run_scheduled(CORRECT, 3)
        assert result.events
        assert all(e.schedule_id == "random-walk:3" for e in result.events)

    def test_correct_program_passes_under_instrumented_locks(self):
        # primes.correct funnels worker totals through the backend's
        # lock; the controlled run must neither deadlock nor corrupt it.
        result = run_scheduled(CORRECT, 11)
        assert result.ok and not result.schedule.deadlocked
        totals = [e.value for e in result.events if e.name == "Total Num Primes"]
        per_thread = [e.value for e in result.events if e.name == "Num Primes"]
        assert totals and totals[0] == sum(per_thread)

    def test_preemption_sweep_surfaces_the_race(self):
        lost_update = False
        for strategy in bounded_preemption_sweep(8, max_quantum=2):
            result = run_scheduled(RACY, strategy)
            totals = [e.value for e in result.events if e.name == "Total Num Primes"]
            per_thread = [e.value for e in result.events if e.name == "Num Primes"]
            if totals and totals[0] != sum(per_thread):
                lost_update = True
                break
        assert lost_update, "no preemption-bound schedule exposed the lost update"


class TestRecordAndReplay:
    def test_trace_round_trips_through_file(self, tmp_path):
        recorded = run_scheduled(RACY, 2).schedule
        path = recorded.save(tmp_path / "race.schedule.json")
        loaded = ScheduleTrace.load(path)
        assert loaded.to_dict() == recorded.to_dict()
        assert loaded.workers == recorded.workers
        assert loaded.seed == 2

    def test_replay_from_file_reproduces_identical_trace(self, tmp_path):
        """Acceptance: replaying the saved schedule file reproduces the
        identical trace."""
        original = run_scheduled(RACY, 4)
        path = original.schedule.save(tmp_path / "race.schedule.json")
        replayed = run_scheduled(RACY, ScheduleTrace.load(path))
        assert replayed.schedule.divergence == ""
        assert decision_dicts(replayed.schedule) == decision_dicts(original.schedule)
        assert replayed.output == original.output
        # Thread-relative content matches byte for byte (schedule_id
        # differs by construction: replay:… vs random-walk:…).
        strip = lambda result: [  # noqa: E731 - local shorthand
            (e.seq, e.thread_id, e.thread_seq, e.name, e.raw_line)
            for e in result.events
        ]
        assert strip(replayed) == strip(original)

    def test_replay_against_wrong_program_diverges(self):
        recorded = run_scheduled(RACY, 4, args=["12", "3"]).schedule
        # Different input ⇒ different yield-point sequence ⇒ divergence,
        # reported on the trace rather than raised at the caller.
        replayed = run_scheduled(RACY, ScheduleTrace.from_dict(recorded.to_dict()), args=["16", "4"])
        assert replayed.schedule.divergence != ""

    def test_replay_strategy_rejects_exhausted_recording(self):
        trace = ScheduleTrace(decisions=[ScheduleDecision(0, "start", [0, 1], 0)])
        strategy = ReplayStrategy(trace)
        assert strategy.choose([0, 1], None, "start", 0) == 0
        with pytest.raises(ScheduleDivergenceError):
            strategy.choose([1], 0, "trace", 1)

    def test_replay_strategy_rejects_mismatched_ready_set(self):
        trace = ScheduleTrace(decisions=[ScheduleDecision(0, "start", [0, 1], 0)])
        with pytest.raises(ScheduleDivergenceError):
            ReplayStrategy(trace).choose([0, 1, 2], None, "start", 0)

    def test_newer_format_version_is_rejected(self):
        data = ScheduleTrace().to_dict()
        data["version"] = 99
        with pytest.raises(ValueError):
            ScheduleTrace.from_dict(data)


class TestDeadlockDetection:
    def test_opposed_lock_order_deadlocks_deterministically(self):
        from repro.simulation.backend import current_backend

        def main(args):
            backend = current_backend()
            lock_a, lock_b = backend.lock(), backend.lock()

            def worker(first, second):
                def body():
                    with first:
                        backend.checkpoint()
                        with second:
                            print("reached")

                return body

            threads = [
                backend.spawn(worker(lock_a, lock_b), name="ab"),
                backend.spawn(worker(lock_b, lock_a), name="ba"),
            ]
            backend.start_all(threads)
            backend.join_all(threads)

        # Quantum-1 round-robin forces: ab takes A, ba takes B, both
        # block on the other's lock — the classic ABBA deadlock.
        # run_callable has no schedule= plumbing; drive the backend
        # through the runner's ambient pickup instead.
        from repro.execution.runner import in_process_session_lock
        from repro.simulation.backend import use_backend

        backend = ScheduledBackend(BoundedPreemptionStrategy(quantum=1))
        with in_process_session_lock():
            with use_backend(backend):
                result = ProgramRunner(timeout=20.0).run_callable(
                    main, [], identifier="abba"
                )
        assert backend.scheduler.deadlocked
        assert backend.schedule_trace("abba").deadlocked
        assert "reached" not in result.output


class TestTryAcquireDecisions:
    """Non-blocking and timed acquires are scheduling decisions.

    ``acquire(blocking=False)`` (and any timed acquire) from an
    enrolled worker used to probe the raw lock directly — invisible to
    recording, replay, and race analysis.  It now routes through the
    ``lock-tryacquire`` decision point: recorded with the lock id,
    deterministic per schedule, and replayable.
    """

    @staticmethod
    def _drive(strategy, main, identifier):
        from repro.execution.runner import in_process_session_lock
        from repro.simulation.backend import use_backend

        backend = ScheduledBackend(strategy)
        with in_process_session_lock():
            with use_backend(backend):
                result = ProgramRunner(timeout=20.0).run_callable(
                    main, [], identifier=identifier
                )
        return result, backend.schedule_trace(identifier)

    @staticmethod
    def _program(timeout=None):
        from repro.simulation.backend import current_backend

        def main(args):
            backend = current_backend()
            lock = backend.lock()

            def holder():
                with lock:
                    backend.checkpoint()
                    backend.checkpoint()

            def poller():
                probes = 1
                if timeout is None:
                    got = lock.acquire(blocking=False)
                else:
                    got = lock.acquire(timeout=timeout)
                while not got:
                    backend.checkpoint()
                    probes += 1
                    if timeout is None:
                        got = lock.acquire(blocking=False)
                    else:
                        got = lock.acquire(timeout=timeout)
                lock.release()
                print(f"probes {probes}")

            threads = [
                backend.spawn(holder, name="holder"),
                backend.spawn(poller, name="poller"),
            ]
            backend.start_all(threads)
            backend.join_all(threads)

        return main

    def test_nonblocking_acquire_is_a_recorded_decision(self):
        result, trace = self._drive(
            BoundedPreemptionStrategy(quantum=1), self._program(), "tryacquire"
        )
        assert result.ok, result.exception
        probes = [d for d in trace.decisions if d.point == "lock-tryacquire"]
        assert probes, "no lock-tryacquire decision was recorded"
        assert all(d.lock == 0 for d in probes)
        assert "probes" in result.output

    def test_timed_acquire_takes_the_tryacquire_path(self):
        # Under a one-granted-worker schedule the holder cannot release
        # while the caller sleeps, so a timed wait is recorded as a
        # single probe — same decision point, no wall-clock parking.
        result, trace = self._drive(
            BoundedPreemptionStrategy(quantum=1),
            self._program(timeout=0.01),
            "timed-tryacquire",
        )
        assert result.ok, result.exception
        assert any(d.point == "lock-tryacquire" for d in trace.decisions)

    def test_tryacquire_runs_are_seed_deterministic(self):
        runs = [
            self._drive(RandomWalkStrategy(9), self._program(), "tryacquire-det")
            for _ in range(2)
        ]
        (res_a, trace_a), (res_b, trace_b) = runs
        assert res_a.ok and res_b.ok
        assert decision_dicts(trace_a) == decision_dicts(trace_b)
        assert res_a.output == res_b.output

    def test_tryacquire_trace_replays_identically(self):
        _, recorded = self._drive(
            RandomWalkStrategy(9), self._program(), "tryacquire-replay"
        )
        assert any(d.point == "lock-tryacquire" for d in recorded.decisions)
        replay = resolve_schedule_strategy(
            ScheduleTrace.from_dict(recorded.to_dict())
        )
        result, replayed = self._drive(
            replay, self._program(), "tryacquire-replay"
        )
        assert result.ok, result.exception
        assert replayed.divergence == ""
        assert decision_dicts(replayed) == decision_dicts(recorded)


class TestFreeRunningRelease:
    """A non-enrolled thread releasing a lock workers are parked on.

    The root sits outside the one-granted-worker gate, so a lock it
    holds is not part of any deadlock cycle: workers parking on it must
    simply stall granting (not abort), and the root's release must
    restart granting exactly once — a second grant would put two
    workers inside the gate at the same time.
    """

    def _drive(self, main):
        from repro.execution.runner import in_process_session_lock
        from repro.simulation.backend import use_backend

        backend = ScheduledBackend(BoundedPreemptionStrategy(quantum=1))
        scheduler = backend.scheduler
        restarts = []
        original = scheduler._grant_next

        def spy(current, point, lock=None):
            if current is None and point == "lock-release":
                restarts.append(lock)
            return original(current, point, lock=lock)

        scheduler._grant_next = spy
        with in_process_session_lock():
            with use_backend(backend):
                result = ProgramRunner(timeout=20.0).run_callable(
                    main, [], identifier="free-running-release"
                )
        return backend, result, restarts

    @staticmethod
    def _wait_all_parked(scheduler, count, timeout=10.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with scheduler._cv:
                if (
                    scheduler._granted is None
                    and len(scheduler._states) == count
                    and all(
                        s.blocked_on is not None
                        for s in scheduler._states.values()
                    )
                ):
                    return True
            time.sleep(0.002)
        return False

    def test_root_release_restarts_granting_exactly_once(self):
        from repro.simulation.backend import current_backend

        outer = self

        def main(args):
            backend = current_backend()
            lock = backend.lock()
            lock.acquire()  # free-running root: the raw, ungated path

            def body():
                with lock:
                    backend.checkpoint()
                    print("crossed")

            threads = [backend.spawn(body, name=f"w{i}") for i in range(3)]
            backend.start_all(threads)
            scheduler = backend.scheduler
            assert outer._wait_all_parked(scheduler, 3), (
                "workers never all parked on the root-held lock"
            )
            # Parked-on-a-root-held-lock is a stall, not a deadlock.
            assert not scheduler.deadlocked
            lock.release()
            backend.join_all(threads)

        backend, result, restarts = self._drive(main)
        assert result.ok, result.exception
        assert not backend.scheduler.deadlocked
        assert result.output.count("crossed") == 3
        assert len(restarts) == 1, (
            f"expected exactly one granting restart, saw {len(restarts)}"
        )

    def test_root_release_with_a_granted_worker_does_not_regrant(self):
        import threading as _threading

        from repro.simulation.backend import current_backend

        def main(args):
            backend = current_backend()
            lock = backend.lock()
            lock.acquire()
            released = _threading.Event()

            def blocker():
                with lock:
                    print("crossed")

            def spinner():
                while not released.is_set():
                    backend.checkpoint()

            threads = [
                backend.spawn(blocker, name="blocker"),
                backend.spawn(spinner, name="spinner"),
            ]
            backend.start_all(threads)
            scheduler = backend.scheduler
            # Wait until the blocker is parked; the spinner keeps the
            # grant, so _granted is never None here.
            import time

            deadline = time.monotonic() + 10.0
            parked = False
            while time.monotonic() < deadline:
                with scheduler._cv:
                    state = scheduler._states.get(0)
                    parked = state is not None and state.blocked_on is not None
                if parked:
                    break
                time.sleep(0.002)
            assert parked, "blocker never parked on the root-held lock"
            lock.release()
            released.set()
            backend.join_all(threads)

        backend, result, restarts = self._drive(main)
        assert result.ok, result.exception
        assert not backend.scheduler.deadlocked
        assert result.output.count("crossed") == 1
        # The spinner held the grant throughout the release: restarting
        # granting here would hand a second worker the token.
        assert restarts == []


class TestExplorer:
    def factory(self, identifier=RACY):
        return lambda: PrimesFunctionality(identifier, num_randoms=12, num_threads=3)

    def test_exploration_is_deterministic(self):
        report_a = ScheduleExplorer(self.factory(), schedules=5, first_seed=0).run()
        report_b = ScheduleExplorer(self.factory(), schedules=5, first_seed=0).run()
        assert report_a.bug_found
        assert [f.strategy_label for f in report_a.findings] == [
            f.strategy_label for f in report_b.findings
        ]
        assert report_a.first_failing_seed == report_b.first_failing_seed

    def test_explorer_replays_its_own_finding(self):
        explorer = ScheduleExplorer(self.factory(), schedules=5, first_seed=0)
        report = explorer.run()
        trace = report.first_failing_trace()
        result, replayed = explorer.replay(trace)
        assert replayed.divergence == ""
        assert result.score < result.max_score
        assert [d.to_dict() for d in replayed.decisions] == [
            d.to_dict() for d in trace.decisions
        ]

    def test_correct_program_is_exonerated(self):
        report = ScheduleExplorer(self.factory(CORRECT), schedules=4).run()
        assert not report.bug_found
        assert "refute" in report.summary()

    def test_preemption_sweep_strategy(self):
        report = ScheduleExplorer(
            self.factory(), schedules=6, strategy="preemption-sweep", max_quantum=2
        ).run()
        assert report.bug_found
        assert report.findings[0].strategy_label.startswith("preemption-bound:")

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            ScheduleExplorer(self.factory(), schedules=0)
        with pytest.raises(ValueError):
            ScheduleExplorer(self.factory(), strategy="chaos-monkey")
