"""Test helpers: synthetic executions with precisely controlled traces.

Most checker tests need a trace with an exact shape (a torn tuple, a
serialized schedule, a misnamed property).  Rather than contriving a
workload that happens to produce it, these helpers fabricate the
``ExecutionResult`` directly: dummy thread objects, hand-written event
schedules, and the same formatting the real tracing layer uses.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.eventdb.database import EventDatabase
from repro.execution.runner import ExecutionResult
from repro.tracing.formatting import format_property_line
from repro.util.thread_registry import ThreadRegistry

#: A scheduled print: (thread_key, property_name, value).  thread_key
#: "R" is the root; any other key is a worker.
ScheduledPrint = Tuple[str, str, Any]


def synthetic_execution(
    schedule: Sequence[ScheduledPrint],
    *,
    identifier: str = "synthetic",
    args: Optional[List[str]] = None,
) -> ExecutionResult:
    """Fabricate an ExecutionResult whose events follow *schedule* exactly."""
    registry = ThreadRegistry()
    database = EventDatabase(registry)
    threads: Dict[str, threading.Thread] = {"R": threading.Thread(name="root")}
    root = threads["R"]
    root_id = registry.id_for(root)

    lines: List[str] = []
    for key, name, value in schedule:
        thread = threads.setdefault(key, threading.Thread(name=f"worker-{key}"))
        thread_id = registry.id_for(thread)
        line = format_property_line(thread_id, name, value)
        lines.append(line)
        database.record(name, value, line, thread=thread)

    events = database.snapshot()
    workers: List[threading.Thread] = []
    for event in events:
        if event.thread is not root and event.thread not in workers:
            workers.append(event.thread)

    return ExecutionResult(
        identifier=identifier,
        args=list(args) if args else [],
        output="\n".join(lines) + ("\n" if lines else ""),
        events=events,
        database=database,
        root_thread=root,
        root_thread_id=root_id,
        duration=0.01,
        worker_threads=workers,
    )


def primes_schedule(
    *,
    randoms: Optional[List[int]] = None,
    worker_slices: Optional[Dict[str, List[int]]] = None,
    interleave: bool = True,
    pre_fork_name: str = "Random Numbers",
    total: Optional[int] = None,
    is_prime=None,
) -> List[ScheduledPrint]:
    """The standard primes trace for a given work assignment.

    ``worker_slices`` maps worker keys to the indices each processes;
    ``interleave=True`` round-robins iterations across workers while
    False emits each worker's block contiguously (the serialized shape).
    """
    from repro.workloads.common import is_prime as default_is_prime

    judge = is_prime if is_prime is not None else default_is_prime
    randoms = randoms if randoms is not None else [509, 578, 796, 129, 272, 594, 714]
    if worker_slices is None:
        worker_slices = {"A": [0, 1], "B": [2, 3], "C": [4, 5], "D": [6]}

    schedule: List[ScheduledPrint] = [("R", pre_fork_name, randoms)]

    def iteration_prints(key: str, index: int) -> List[ScheduledPrint]:
        number = randoms[index]
        return [
            (key, "Index", index),
            (key, "Number", number),
            (key, "Is Prime", judge(number)),
        ]

    counts = {
        key: sum(1 for i in indices if judge(randoms[i]))
        for key, indices in worker_slices.items()
    }

    if interleave:
        pending = {key: list(indices) for key, indices in worker_slices.items()}
        done: List[str] = []
        while len(done) < len(worker_slices):
            for key in worker_slices:
                if key in done:
                    continue
                if pending[key]:
                    schedule.extend(iteration_prints(key, pending[key].pop(0)))
                else:
                    schedule.append((key, "Num Primes", counts[key]))
                    done.append(key)
    else:
        for key, indices in worker_slices.items():
            for index in indices:
                schedule.extend(iteration_prints(key, index))
            schedule.append((key, "Num Primes", counts[key]))

    actual_total = sum(counts.values())
    schedule.append(
        ("R", "Total Num Primes", actual_total if total is None else total)
    )
    return schedule


Number = Union[int, float]
