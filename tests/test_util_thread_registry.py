"""Unit tests of the thread registry (stable small thread ids)."""

from __future__ import annotations

import threading

import pytest

from repro.util.thread_registry import FIRST_THREAD_ID, ThreadRegistry


def test_first_id_matches_paper_flavour():
    registry = ThreadRegistry()
    assert registry.id_for() == FIRST_THREAD_ID == 23


def test_same_thread_same_id():
    registry = ThreadRegistry()
    first = registry.id_for()
    second = registry.id_for()
    assert first == second


def test_distinct_threads_get_sequential_ids():
    registry = ThreadRegistry()
    ids = []

    def record():
        ids.append(registry.id_for())

    root_id = registry.id_for()
    threads = [threading.Thread(target=record) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert root_id == FIRST_THREAD_ID
    assert sorted(ids) == [FIRST_THREAD_ID + 1, FIRST_THREAD_ID + 2, FIRST_THREAD_ID + 3]


def test_explicit_thread_argument():
    registry = ThreadRegistry()
    other = threading.Thread(target=lambda: None)
    assigned = registry.id_for(other)
    assert registry.id_for(other) == assigned
    assert registry.thread_for(assigned) is other


def test_thread_for_unknown_id_raises():
    registry = ThreadRegistry()
    with pytest.raises(KeyError):
        registry.thread_for(999)


def test_known_threads_in_registration_order():
    registry = ThreadRegistry()
    a = threading.Thread(target=lambda: None)
    b = threading.Thread(target=lambda: None)
    registry.id_for(a)
    registry.id_for(b)
    assert registry.known_threads() == [a, b]
    assert len(registry) == 2
    assert a in registry
    assert threading.current_thread() not in registry


def test_custom_first_id():
    registry = ThreadRegistry(first_id=100)
    assert registry.id_for() == 100


def test_ids_stable_under_concurrent_registration():
    registry = ThreadRegistry()
    results = {}

    def record(key):
        results[key] = registry.id_for()

    threads = [threading.Thread(target=record, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(results.values())) == 8
    assert registry.known_ids() == sorted(results.values())
