"""Tests of the observability subsystem: metrics, spans, export, views.

Covers the primitives in isolation (histogram bucketing and conservative
quantiles, span nesting and per-thread isolation, the disabled null
path), the JSONL dump round-trip, the operator-facing renderings, and an
end-to-end supervisor batch whose dump must contain spans from every
instrumented layer (submission → attempt → runner → session ingest, plus
schedule exploration).
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.execution.supervisor import GradingSupervisor
from repro.graders import PrimesFunctionality
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    ObsRegistry,
    dump_jsonl,
    load_jsonl,
    render_span_tree,
    render_stats,
    render_timeline,
    reset_registry,
    submission_timings,
    use_registry,
)
from repro.obs.registry import OBS_ENV_VAR, _env_enabled
from repro.testfw.suite import TestSuite


@pytest.fixture
def registry():
    """A fresh, enabled registry installed as the process default."""
    fresh = ObsRegistry(enabled=True)
    with use_registry(fresh):
        yield fresh


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_dict() == {"type": "counter", "name": "c", "value": 5}

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.value == 1.5

    def test_histogram_bucketing_boundaries_inclusive(self):
        hist = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0):
            hist.observe(value)
        # bucket i counts observations <= boundaries[i]; last is overflow
        assert [count for _, count in hist.bucket_counts()] == [2, 2, 2, 1]
        assert hist.count == 7
        assert hist.minimum == 0.5
        assert hist.maximum == 9.0
        assert hist.total == pytest.approx(21.0)

    def test_histogram_quantile_is_conservative(self):
        hist = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 0.7, 3.0):
            hist.observe(value)
        # ceil(0.5 * 4) = 2nd observation sits in the <=1.0 bucket; the
        # estimate is that bucket's upper boundary — never understating.
        assert hist.quantile(0.5) == 1.0
        assert hist.p95 == 4.0

    def test_histogram_overflow_quantile_reports_observed_max(self):
        hist = Histogram("h", boundaries=(1.0,))
        hist.observe(17.5)
        assert hist.quantile(1.0) == 17.5

    def test_histogram_empty_quantile_is_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.mean)

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))

    def test_histogram_dict_round_trip(self):
        hist = Histogram("h")
        for value in (0.002, 0.3, 45.0, 120.0):
            hist.observe(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.boundaries == DEFAULT_BUCKETS
        assert clone.count == hist.count
        assert clone.p50 == hist.p50
        assert clone.maximum == hist.maximum

    def test_registry_metrics_are_get_or_create(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        assert registry.gauge("c") is registry.gauge("c")


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_ids(self, registry):
        with registry.span("outer") as outer:
            with registry.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration >= inner.duration >= 0.0
        # completion order: inner closes first
        assert [s.name for s in registry.spans()] == ["inner", "outer"]

    def test_span_attrs_set_at_open_and_close(self, registry):
        span = registry.begin_span("s", a=1)
        span.set(b=2)
        registry.end_span(span, c=3)
        assert registry.spans()[0].attrs == {"a": 1, "b": 2, "c": 3}

    def test_threads_have_independent_stacks(self, registry):
        ready = threading.Barrier(2)
        seen = {}

        def worker(name):
            with registry.span(name):
                ready.wait(timeout=5)
                seen[name] = registry._stack()[-1].name
                ready.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Each thread saw its own span on top — never the sibling's.
        assert seen == {"t0": "t0", "t1": "t1"}
        assert all(s.parent_id is None for s in registry.spans())

    def test_end_span_unwinds_leaked_children(self, registry):
        outer = registry.begin_span("outer")
        registry.begin_span("leaked")  # never closed (simulated crash)
        registry.end_span(outer)
        with registry.span("after") as after:
            pass
        # The leaked span must not become "after"'s parent.
        assert after.parent_id is None

    def test_disabled_registry_hands_out_null_objects(self):
        registry = ObsRegistry(enabled=False)
        assert registry.begin_span("s") is NULL_SPAN
        NULL_SPAN.set(anything=1)  # no-op, no error
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(2.0)
        assert registry.spans() == []
        assert registry.counters() == {}
        assert registry.histograms() == {}

    def test_env_gate(self, monkeypatch):
        for off in ("off", "0", "false", "no", " OFF "):
            monkeypatch.setenv(OBS_ENV_VAR, off)
            assert not _env_enabled()
        monkeypatch.setenv(OBS_ENV_VAR, "on")
        assert _env_enabled()
        monkeypatch.delenv(OBS_ENV_VAR)
        assert _env_enabled()

    def test_reset_registry_replaces_default(self):
        first = reset_registry(enabled=True)
        second = reset_registry(enabled=True)
        assert first is not second


# ----------------------------------------------------------------------
# Export round-trip
# ----------------------------------------------------------------------
class TestExport:
    def test_dump_and_load_round_trip(self, registry, tmp_path):
        with registry.span("outer", student="alice"):
            with registry.span("inner"):
                pass
        registry.counter("supervisor.retries").inc(2)
        registry.gauge("workers").set(4)
        registry.histogram("runner.run.seconds").observe(0.02)

        path = dump_jsonl(registry, tmp_path / "obs.jsonl")
        dump = load_jsonl(path)

        assert not dump.empty
        assert [s.name for s in dump.spans] == ["inner", "outer"]
        assert dump.spans[0].parent_id == dump.spans[1].span_id
        assert dump.spans[1].attrs == {"student": "alice"}
        assert dump.counters == {"supervisor.retries": 2}
        assert dump.gauges == {"workers": 4.0}
        assert dump.histograms["runner.run.seconds"].count == 1

    def test_load_skips_blank_and_unknown_lines(self, registry, tmp_path):
        path = dump_jsonl(registry, tmp_path / "obs.jsonl")
        path.write_text(
            path.read_text() + '\n{"type": "future-thing", "x": 1}\n\n'
        )
        assert load_jsonl(path).empty  # nothing was recorded

    def test_load_raises_on_corrupt_line(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text('{"type": "meta", "version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_jsonl(path)


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
class TestViews:
    def test_render_span_tree_indents_children(self, registry):
        with registry.span("parent"):
            with registry.span("child"):
                pass
        tree = render_span_tree(registry.spans())
        lines = tree.splitlines()
        assert lines[0].startswith("parent")
        assert lines[1].startswith("  child")

    def test_render_timeline_groups_by_submission(self, registry):
        with registry.span("supervisor.submission", student="alice"):
            with registry.span("runner.run"):
                pass
        with registry.span("supervisor.submission", student="bob"):
            pass
        with registry.span("explore.schedule"):
            pass
        text = render_timeline(registry)
        assert "=== alice ===" in text
        assert "=== bob ===" in text
        assert "=== (ungrouped) ===" in text
        only_alice = render_timeline(registry, submission="alice")
        assert "alice" in only_alice and "bob" not in only_alice

    def test_render_timeline_empty_message(self, registry):
        assert "no spans recorded" in render_timeline(registry)
        assert "no metrics recorded" in render_stats(registry)

    def test_submission_timings(self, registry):
        with registry.span("supervisor.submission", student="alice", attempts=2):
            with registry.span("runner.run"):
                pass
        timings = submission_timings(registry)
        assert set(timings) == {"alice"}
        assert timings["alice"]["attempts"] == 2
        assert timings["alice"]["duration"] > 0
        assert "runner.run" in timings["alice"]["tree"]

    def test_render_stats_from_dump(self, registry, tmp_path):
        registry.counter("supervisor.retries").inc()
        registry.histogram("runner.run.seconds").observe(0.004)
        dump = load_jsonl(dump_jsonl(registry, tmp_path / "obs.jsonl"))
        text = render_stats(dump)
        assert "supervisor.retries = 1" in text
        assert "runner.run.seconds" in text


# ----------------------------------------------------------------------
# End-to-end: a supervised batch emits spans from every layer
# ----------------------------------------------------------------------
class TestSupervisorIntegration:
    def test_batch_dump_covers_the_stack(self, registry, tmp_path):
        factory = lambda ident: TestSuite(  # noqa: E731
            "primes", [PrimesFunctionality(ident)]
        )
        supervisor = GradingSupervisor(
            factory, jobs=2, explore_schedules=2, explore_seed=0
        )
        supervisor.grade(
            {
                "primes.correct": "primes.correct",
                "primes.racy": "primes.racy",
            }
        )
        path = dump_jsonl(registry, tmp_path / "obs.jsonl")
        dump = load_jsonl(path)

        names = {span.name for span in dump.spans}
        assert {
            "supervisor.submission",
            "supervisor.attempt",
            "runner.run",
            "session.ingest",
        } <= names
        # primes.racy fails under free-running retries → exploration ran
        assert "supervisor.explore" in names
        assert dump.counters.get("explore.schedules", 0) >= 1
        assert dump.histograms["supervisor.submission.seconds"].count == 2

        # the timeline groups both submissions and nests the stack
        timeline = render_timeline(dump)
        assert "=== primes.correct ===" in timeline
        assert "=== primes.racy ===" in timeline

        timings = submission_timings(dump)
        assert set(timings) == {"primes.correct", "primes.racy"}

        stats = render_stats(dump)
        assert "supervisor.submission.seconds" in stats
