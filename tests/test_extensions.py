"""Tests of the smaller extensions: stdin-driven grading, partial
speedup credit, suite registration, report rendering edges."""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.core.performance import AbstractConcurrencyPerformanceChecker
from repro.execution.runner import ExecutionResult
from repro.graders import PrimesFunctionality, register_all_suites
from repro.testfw.annotations import max_value
from repro.testfw.suite import get_suite, registered_suites


class StdinPrimes(PrimesFunctionality):
    """Grades the stdin-parameterised variant: args empty, input scripted."""

    def __init__(self) -> None:
        super().__init__("primes.stdin")

    def args(self) -> List[str]:
        return []

    def stdin_lines(self) -> List[str]:
        return ["7", "4"]


class TestStdinDrivenGrading:
    def test_full_marks_with_scripted_input(self, round_robin_backend):
        result = StdinPrimes().run()
        assert result.percent == pytest.approx(100.0), result.render()

    def test_prompts_do_not_break_the_trace(self, round_robin_backend):
        checker = StdinPrimes()
        checker.run()
        output = checker.last_report.execution.output
        # The prompts are plain root output before the pre-fork property.
        assert "How many random numbers?" in output
        assert output.index("How many") < output.index("Random Numbers")

    def test_missing_input_degrades_to_defaults(self, round_robin_backend):
        class NoInput(StdinPrimes):
            def stdin_lines(self):
                return []  # program falls back to its defaults (7, 4)

        result = NoInput().run()
        assert result.percent == pytest.approx(100.0)


@max_value(30)
class _PartialPerf(AbstractConcurrencyPerformanceChecker):
    """Fake-duration checker isolating the credit arithmetic."""

    def __init__(self, measured_speedup: float, *, partial: bool) -> None:
        self._speedup = measured_speedup
        self._partial = partial

    def main_class_identifier(self) -> str:
        return "primes.correct"

    def low_thread_args(self) -> List[str]:
        return ["4", "1"]

    def high_thread_args(self) -> List[str]:
        return ["4", "4"]

    def num_timed_runs(self) -> int:
        return 1

    def warmup_runs(self) -> int:
        return 0

    def expected_minimum_speedup(self) -> float:
        return 2.0

    def partial_speedup_credit(self) -> bool:
        return self._partial

    def duration_source(self):
        target = self._speedup

        def fake(execution: ExecutionResult) -> float:
            return 1.0 if execution.args[-1] == "4" else target

        return fake


class TestPartialSpeedupCredit:
    def test_default_is_all_or_nothing(self):
        assert _PartialPerf(1.5, partial=False).run().score == 0.0
        assert _PartialPerf(2.5, partial=False).run().score == 30.0

    def test_partial_credit_is_linear_above_one(self):
        # required 2.0: speedup 1.5 -> (1.5-1)/(2-1) = 50% of 30 points.
        result = _PartialPerf(1.5, partial=True).run()
        assert result.score == pytest.approx(15.0)

    def test_no_credit_at_or_below_unity(self):
        assert _PartialPerf(1.0, partial=True).run().score == 0.0
        assert _PartialPerf(0.7, partial=True).run().score == 0.0

    def test_full_credit_at_the_bar(self):
        assert _PartialPerf(2.0, partial=True).run().score == 30.0

    def test_failed_status_even_with_partial_points(self):
        result = _PartialPerf(1.5, partial=True).run()
        [outcome] = result.outcomes
        assert outcome.status.value == "failed"
        assert outcome.points_earned == pytest.approx(15.0)


class TestSuiteRegistration:
    def test_register_all_suites_publishes_all_five(self):
        register_all_suites()
        names = registered_suites()
        for name in ("primes", "pi", "odds", "hello", "jacobi"):
            assert name in names
            assert len(get_suite(name)) >= 1
