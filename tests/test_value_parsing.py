"""Unit + property tests of typed value parsing (the subprocess path)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.properties import ANY, ARRAY, BOOLEAN, NUMBER, STRING
from repro.core.value_parsing import ValueParseError, parse_scalar, parse_value
from repro.tracing.formatting import format_value


class TestScalars:
    def test_booleans(self):
        assert parse_scalar("true") is True
        assert parse_scalar("false") is False

    def test_null(self):
        assert parse_scalar("null") is None

    def test_numbers(self):
        assert parse_scalar("42") == 42
        assert parse_scalar("-3") == -3
        assert parse_scalar("2.5") == 2.5

    def test_fallback_to_text(self):
        assert parse_scalar("hello") == "hello"


class TestTyped:
    def test_number(self):
        assert parse_value("509", NUMBER) == 509
        assert parse_value("-1.25", NUMBER) == -1.25
        assert isinstance(parse_value("7", NUMBER), int)

    def test_number_rejects_garbage(self):
        with pytest.raises(ValueParseError, match="Number"):
            parse_value("seven", NUMBER)

    def test_boolean(self):
        assert parse_value("true", BOOLEAN) is True
        assert parse_value("false", BOOLEAN) is False
        with pytest.raises(ValueParseError):
            parse_value("1", BOOLEAN)

    def test_string_verbatim(self):
        assert parse_value("true", STRING) == "true"

    def test_array_flat(self):
        assert parse_value("[509, 578, 796]", ARRAY) == [509, 578, 796]

    def test_array_empty(self):
        assert parse_value("[]", ARRAY) == []

    def test_array_nested(self):
        assert parse_value("[[1, 2], [3]]", ARRAY) == [[1, 2], [3]]

    def test_array_mixed(self):
        assert parse_value("[1, true, x]", ARRAY) == [1, True, "x"]

    def test_array_rejects_unbracketed(self):
        with pytest.raises(ValueParseError, match="Array"):
            parse_value("1, 2", ARRAY)

    def test_any_best_effort(self):
        assert parse_value("42", ANY) == 42


# ----------------------------------------------------------------------
# Round-trip property: parse is a left inverse of format for each type.
# ----------------------------------------------------------------------

_cases = st.one_of(
    st.tuples(st.just(NUMBER), st.integers(min_value=-(10**9), max_value=10**9)),
    st.tuples(st.just(BOOLEAN), st.booleans()),
    st.tuples(
        st.just(ARRAY),
        st.lists(
            st.one_of(st.integers(min_value=-999, max_value=999), st.booleans()),
            max_size=8,
        ),
    ),
    st.tuples(
        st.just(ARRAY),
        st.lists(st.lists(st.integers(min_value=0, max_value=9), max_size=3), max_size=3),
    ),
)


@given(_cases)
def test_parse_inverts_format(case):
    prop_type, value = case
    text = format_value(value)
    assert parse_value(text, prop_type) == value
