"""Tests of the Table 1 LoC accounting."""

from __future__ import annotations

import textwrap

import pytest

from repro.core.loc import (
    LocBreakdown,
    count_effective_lines,
    count_marked_regions,
    effective_line_numbers,
)


class TestEffectiveLines:
    def test_blank_and_comment_lines_dropped(self):
        source = textwrap.dedent(
            """
            # a comment
            x = 1

            y = 2  # trailing comment still counts the code
            """
        )
        assert count_effective_lines(source) == 2

    def test_imports_dropped(self):
        source = textwrap.dedent(
            """
            import os
            from typing import (
                List,
                Dict,
            )
            x = 1
            """
        )
        assert count_effective_lines(source) == 1

    def test_docstrings_dropped(self):
        source = textwrap.dedent(
            '''
            """Module docstring
            spanning lines."""

            def f():
                """Function docstring."""
                return 1

            class C:
                """Class docstring."""
                x = 2
            '''
        )
        # def f, return 1, class C, x = 2
        assert count_effective_lines(source) == 4

    def test_multiline_statement_counts_each_physical_line(self):
        source = "x = (1 +\n     2 +\n     3)\n"
        assert count_effective_lines(source) == 3

    def test_string_literal_is_code_not_comment(self):
        source = 'x = "text with # not a comment"\n'
        assert count_effective_lines(source) == 1

    def test_line_numbers_are_one_based(self):
        source = "# comment\nx = 1\n"
        assert effective_line_numbers(source) == [2]


class TestMarkedRegions:
    SOURCE = textwrap.dedent(
        """
        import os

        setup = True

        # -- begin: serial --
        a = 1
        b = 2
        # -- begin: serial-intermediate --
        c = 3
        # -- end: serial-intermediate --
        # -- end: serial --

        # -- begin: concurrency --
        d = 4
        # -- begin: concurrency-intermediate --
        e = 5
        f = 6
        # -- end: concurrency-intermediate --
        # -- end: concurrency --
        """
    )

    def test_counts_per_category(self):
        breakdown = count_marked_regions(self.SOURCE)
        assert breakdown.counts["serial"] == 2
        assert breakdown.counts["serial-intermediate"] == 1
        assert breakdown.counts["concurrency"] == 1
        assert breakdown.counts["concurrency-intermediate"] == 2
        assert breakdown.unmarked == 1  # setup = True

    def test_totals_fold_intermediate_into_parent(self):
        breakdown = count_marked_regions(self.SOURCE)
        assert breakdown.serial_total == 3
        assert breakdown.serial_intermediate == 1
        assert breakdown.concurrency_total == 3
        assert breakdown.concurrency_intermediate == 2
        assert breakdown.total == 7

    def test_table_row_format(self):
        serial, concurrency = count_marked_regions(self.SOURCE).table_row()
        assert serial == "3 (1)"
        assert concurrency == "3 (2)"

    def test_markers_do_not_count_as_code(self):
        source = "# -- begin: serial --\n# -- end: serial --\n"
        breakdown = count_marked_regions(source)
        assert breakdown.total == 0

    def test_unbalanced_end_rejected(self):
        with pytest.raises(ValueError, match="unbalanced"):
            count_marked_regions("# -- end: serial --\n")

    def test_unclosed_region_rejected(self):
        with pytest.raises(ValueError, match="unclosed"):
            count_marked_regions("# -- begin: serial --\nx = 1\n")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown LoC category"):
            count_marked_regions("# -- begin: quantum --\n# -- end: quantum --\n")

    def test_mismatched_nesting_rejected(self):
        source = (
            "# -- begin: serial --\n"
            "# -- begin: concurrency --\n"
            "# -- end: serial --\n"
        )
        with pytest.raises(ValueError, match="unbalanced"):
            count_marked_regions(source)


class TestGraderSources:
    """The real graders must be well-formed for Table 1."""

    @pytest.mark.parametrize(
        "module",
        ["repro.graders.primes", "repro.graders.odds", "repro.graders.pi_montecarlo"],
    )
    def test_grader_regions_parse_and_shape_holds(self, module):
        import importlib
        import inspect

        source = inspect.getsource(importlib.import_module(module))
        breakdown = count_marked_regions(source)
        # The paper's headline: concurrency-checking code is far smaller
        # than serial-checking code.
        assert breakdown.concurrency_total < breakdown.serial_total
        assert breakdown.concurrency_total > 0

    def test_pi_has_zero_serial_intermediate(self):
        """Table 1's PI row: serial (0) — intermediate checks ARE the
        final checks for a randomized estimate."""
        import inspect

        import repro.graders.pi_montecarlo as module

        breakdown = count_marked_regions(inspect.getsource(module))
        assert breakdown.serial_intermediate == 0

    def test_primes_and_odds_have_serial_intermediate(self):
        import inspect

        import repro.graders.odds as odds
        import repro.graders.primes as primes

        for module in (primes, odds):
            breakdown = count_marked_regions(inspect.getsource(module))
            assert breakdown.serial_intermediate > 0
            assert breakdown.concurrency_intermediate > 0
