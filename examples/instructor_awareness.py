"""Instructor awareness from logged in-progress test runs (§1).

The paper motivates logging the results of tests run on *in-progress*
work: instructors gain awareness of unseen partial work, can infer
whether the assignment is too easy or too hard (or hard only for some
students), and can offer unsolicited help to students in apparent
difficulty.  This example simulates a lab session — a cohort of students
iterating on the primes assignment at different speeds — and produces
the class awareness report an instructor would act on.

Run it::

    python examples/instructor_awareness.py
"""

from __future__ import annotations

from typing import Dict, List

from repro.grading import ProgressLog, analyze_progress
from repro.graders import PrimesFunctionality
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RoundRobinPolicy, SerializedPolicy
from repro.testfw.suite import TestSuite

RULE = "=" * 70

#: Each student's sequence of in-progress states through the session.
#: (variant identifier, which simulated schedule their machine produced)
SESSIONS: Dict[str, List[str]] = {
    # quick study: no-fork skeleton, then straight to correct
    "ada": ["primes.no_fork", "primes.correct"],
    # typical path: misread the spec, fixed it, balanced the load, done
    "grace": [
        "primes.syntax_error",
        "primes.imbalanced",
        "primes.correct",
    ],
    # stuck on serialization: keeps re-running without real change
    "edsger": [
        "primes.serialized",
        "primes.serialized",
        "primes.serialized",
        "primes.serialized",
    ],
    # has a race; it bites on some runs and not others
    "barbara": ["primes.racy", "primes.racy", "primes.racy"],
    # has not gotten past the skeleton
    "alan": ["primes.no_fork", "primes.no_fork", "primes.no_fork", "primes.no_fork"],
}


def run_session() -> ProgressLog:
    log = ProgressLog()
    clock = 0.0
    for student, states in SESSIONS.items():
        for identifier in states:
            policy = (
                SerializedPolicy()
                if identifier == "primes.serialized"
                else RoundRobinPolicy()
            )
            with use_backend(SimulationBackend(policy=policy)):
                suite = TestSuite("primes", [PrimesFunctionality(identifier)])
                log.log_run(student, suite.run(), timestamp=clock)
            clock += 1.0
    return log


def main() -> None:
    print(RULE)
    print("Simulated lab session: students running tests on partial work")
    print(RULE)
    log = run_session()
    print(f"logged {len(log)} in-progress test runs "
          f"from {len(log.students())} students\n")

    report = analyze_progress(log, suite="primes")
    print(report.render())

    print()
    print(RULE)
    print("What the instructor does with this")
    print(RULE)
    stuck = report.stuck_students()
    for progress in stuck:
        failures = ", ".join(progress.recurring_failures) or "no recurring aspect"
        print(
            f"- visit {progress.student}: {progress.runs} runs stuck at "
            f"{progress.latest_percent:.0f}% (recurring: {failures})"
        )
    hardest = report.hardest_aspects()
    if hardest:
        print(f"- re-explain to the class: {', '.join(hardest)}")
    print(f"- assignment difficulty looks: {report.difficulty}")


if __name__ == "__main__":
    main()
