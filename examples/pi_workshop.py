"""The PI Monte-Carlo workshop exercise (§5's second problem).

Shows the second workshop assignment end to end: the reference solution's
trace and score, what the checker tells students who made each observed
mistake, and the performance test in both wall-clock and virtual-clock
regimes.

Run it::

    python examples/pi_workshop.py
"""

from __future__ import annotations

from repro.graders import (
    PiFunctionality,
    PiPerformance,
    SimulatedPiPerformance,
)
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RoundRobinPolicy

RULE = "=" * 70


def functionality_walkthrough() -> None:
    print(RULE)
    print("PI Monte-Carlo: functionality feedback per submission")
    print(RULE)
    submissions = [
        "pi.correct",
        "pi.wrong_semantics",  # taxicab-norm in-circle test
        "pi.wrong_final",      # forgot the factor 4
        "pi.no_fork",          # root throws every dart itself
    ]
    for identifier in submissions:
        with use_backend(SimulationBackend(policy=RoundRobinPolicy())):
            result = PiFunctionality(identifier).run()
        print(f"\n--- {identifier} " + "-" * (52 - len(identifier)))
        print(result.render())


def show_correct_trace() -> None:
    print()
    print(RULE)
    print("The reference solution's annotated trace (first 14 lines)")
    print(RULE)
    with use_backend(SimulationBackend(policy=RoundRobinPolicy())):
        report = PiFunctionality("pi.correct", num_points=8, num_threads=2).check()
    lines = report.annotated_trace().splitlines()
    print("\n".join(lines[:14]))
    print(f"... ({len(lines) - 14} more lines)")


def performance_both_clocks() -> None:
    print()
    print(RULE)
    print("Performance test: wall clock (sleep kernel) vs virtual clock")
    print(RULE)
    wall = PiPerformance(runs=3)
    wall_result = wall.run()
    print(
        f"wall clock   : {wall_result.score:g}/{wall_result.max_score:g} "
        f"(speedup {wall.last_speedup:.2f})"
    )
    virtual = SimulatedPiPerformance(runs=3)
    virtual_result = virtual.run()
    print(
        f"virtual clock: {virtual_result.score:g}/{virtual_result.max_score:g} "
        f"(speedup {virtual.last_speedup:.2f})"
    )


def main() -> None:
    functionality_walkthrough()
    show_correct_trace()
    performance_both_clocks()


if __name__ == "__main__":
    main()
