"""Automatic trace generation: grading code with zero tracing calls (§6).

The paper's future work proposes "automatically generat[ing] these
traces by instrumenting compiled code, thereby reducing testing
requirements students must follow while writing their code."  This
example demonstrates the implemented feature:

1. a prime-counting solution written with NO ``print_property`` anywhere;
2. the instructor-declared variable map that drives the instrumentation;
3. the unchanged primes grader awarding it full marks;
4. a *buggy* uninstrumented solution, pinpointed the same way.

Run it::

    python examples/auto_instrumentation.py
"""

from __future__ import annotations

import inspect
import threading
from typing import List

from repro.execution.registry import register_main
from repro.graders import PrimesFunctionality
from repro.instrument import instrument
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RoundRobinPolicy
from repro.workloads.common import generate_randoms, is_prime, partition
from repro.workloads.primes import uninstrumented

RULE = "=" * 70


def show_the_student_code() -> None:
    print(RULE)
    print("1. The student's code (no tracing calls at all)")
    print(RULE)
    print(inspect.getsource(uninstrumented._uninstrumented_main))
    print(RULE)
    print("2. The instructor's variable maps")
    print(RULE)
    print(f"worker: {uninstrumented.WORKER_INSTRUMENTATION}")
    print(f"root  : {uninstrumented.ROOT_INSTRUMENTATION}")


def grade_the_auto_traced_solution() -> None:
    print()
    print(RULE)
    print("3. The unchanged grader, full marks")
    print(RULE)
    with use_backend(SimulationBackend(policy=RoundRobinPolicy())):
        report = PrimesFunctionality("primes.auto").check()
    print(report.result.render())


def grade_a_buggy_uninstrumented_solution() -> None:
    print()
    print(RULE)
    print("4. A buggy uninstrumented solution, pinpointed the same way")
    print(RULE)

    def buggy_main(args: List[str]) -> None:
        num_randoms = int(args[0])
        num_threads = int(args[1])
        randoms = generate_randoms(num_randoms)

        lock = threading.Lock()
        results: List[int] = []

        def make_worker(lo: int, hi: int):
            @instrument(**uninstrumented.WORKER_INSTRUMENTATION)
            def worker() -> None:
                count = 0
                for index in range(lo, hi):
                    number = randoms[index]
                    prime = not is_prime(number)  # inverted predicate!
                    if prime:
                        count += 1
                with lock:
                    results.append(count)

            return worker

        threads = [
            threading.Thread(target=make_worker(lo, hi))
            for lo, hi in partition(num_randoms, num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total_primes = sum(results)
        assert total_primes >= 0

    register_main("example.primes.buggy_auto")(
        instrument(**uninstrumented.ROOT_INSTRUMENTATION)(buggy_main)
    )

    with use_backend(SimulationBackend(policy=RoundRobinPolicy())):
        result = PrimesFunctionality("example.primes.buggy_auto").run()
    print(result.render())


def main() -> None:
    show_the_student_code()
    grade_the_auto_traced_solution()
    grade_a_buggy_uninstrumented_solution()


if __name__ == "__main__":
    main()
