"""A full grading session for the primes assignment (the paper's Fig. 5).

Walks through the instructor-agent workflow on the paper's running
example:

1. open the interactive suite UI against an in-progress submission and
   "double-click" the functionality test (Fig. 5's 32/40 interaction);
2. show the annotated traces and pinpointed feedback for the reference
   correct submission (Fig. 9), the serialized one (Fig. 10), and the
   syntax-broken one (Fig. 11);
3. batch-grade the whole set of submission variants into a gradebook.

Run it::

    python examples/primes_grading_session.py
"""

from __future__ import annotations

from repro.grading import grade_batch
from repro.graders import PrimesFunctionality, build_primes_suite
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RoundRobinPolicy, SerializedPolicy
from repro.testfw.ui import SuiteUI
from repro.workloads.primes import VARIANTS

RULE = "=" * 70


def interactive_ui_session() -> None:
    print(RULE)
    print("1. Interactive suite UI against the serialized submission")
    print(RULE)
    with use_backend(SimulationBackend(policy=SerializedPolicy())):
        suite = build_primes_suite("primes.serialized", perf_runs=2)
        ui = SuiteUI(suite)
        print(ui.render_listing())
        result = ui.run_test_at(1)  # the Fig. 5 double-click
        print(ui.render_result(result))
        print(ui.render_listing())


def annotated_feedback() -> None:
    print(RULE)
    print("2. Annotated traces and pinpointed feedback (Figs. 9-11)")
    print(RULE)
    cases = [
        ("primes.correct", RoundRobinPolicy()),
        ("primes.serialized", SerializedPolicy()),
        ("primes.syntax_error", RoundRobinPolicy()),
    ]
    for identifier, policy in cases:
        with use_backend(SimulationBackend(policy=policy)):
            report = PrimesFunctionality(identifier).check()
        print(f"\n--- {identifier} " + "-" * (52 - len(identifier)))
        print(report.render())


def batch_grade_everyone() -> None:
    print()
    print(RULE)
    print("3. Batch grading every submission variant")
    print(RULE)
    with use_backend(SimulationBackend(policy=RoundRobinPolicy())):
        gradebook, _live = grade_batch(
            lambda ident: build_primes_suite(ident, perf_runs=2), VARIANTS
        )
    print(gradebook.render())


def main() -> None:
    interactive_ui_session()
    annotated_feedback()
    batch_grade_everyone()


if __name__ == "__main__":
    main()
