"""Quickstart: write a fork-join program and a test for it, end to end.

This is the five-minute tour of the infrastructure:

1. a *tested program* — fork-join word counting — that traces its
   logical variables with ``print_property``;
2. a *testing program* that declares the trace's syntax and semantics by
   overriding parameter and callback methods;
3. running the test and reading the scored, fine-grained report.

Run it::

    python examples/quickstart.py
"""

from __future__ import annotations

import threading
import time
from typing import List

from repro import (
    ARRAY,
    BOOLEAN,
    NUMBER,
    AbstractForkJoinChecker,
    max_value,
    print_property,
    register_main,
)

# ----------------------------------------------------------------------
# 1. The tested program (what a student writes)
# ----------------------------------------------------------------------

WORDS = ["fork", "join", "thread", "trace", "test", "prime", "race", "lock"]


@register_main("quickstart.LongWords")
def long_words_main(args: List[str]) -> None:
    """Count words longer than 4 characters, with 2 worker threads."""
    num_threads = int(args[0]) if args else 2

    print_property("Words", WORDS)  # pre-fork: the input

    counts: List[int] = []
    barrier = threading.Barrier(num_threads)

    def worker(lo: int, hi: int) -> None:
        barrier.wait()  # start together so traces interleave
        count = 0
        for index in range(lo, hi):
            word = WORDS[index]
            print_property("Index", index)  # iteration phase
            is_long = len(word) > 4
            print_property("Is Long", is_long)
            if is_long:
                count += 1
            time.sleep(0.001)  # yield so short loops overlap their output
        print_property("Long Words", count)  # post-iteration phase
        counts.append(count)

    share = len(WORDS) // num_threads
    threads = [
        threading.Thread(target=worker, args=(i * share, (i + 1) * share))
        for i in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    print_property("Total Long Words", sum(counts))  # post-join phase


# ----------------------------------------------------------------------
# 2. The testing program (what an instructor writes)
# ----------------------------------------------------------------------


@max_value(40)
class LongWordsTest(AbstractForkJoinChecker):
    """Declares the 'what' of testing; the infrastructure owns the 'how'."""

    def main_class_identifier(self) -> str:
        return "quickstart.LongWords"

    def args(self) -> List[str]:
        return ["2"]

    def num_expected_forked_threads(self) -> int:
        return 2

    def total_iterations(self) -> int:
        return len(WORDS)

    def pre_fork_property_names_and_types(self):
        return (("Words", ARRAY),)

    def iteration_property_names_and_types(self):
        return (("Index", NUMBER), ("Is Long", BOOLEAN))

    def post_iteration_property_names_and_types(self):
        return (("Long Words", NUMBER),)

    def post_join_property_names_and_types(self):
        return (("Total Long Words", NUMBER),)

    # Semantic callbacks: live values, no parsing.
    def reset_state(self) -> None:
        self._words: List[str] = []
        self._current = 0
        self._sum = 0

    def pre_fork_events_message(self, thread, values):
        self._words = list(values["Words"])
        return None

    def iteration_events_message(self, thread, values):
        actually_long = len(self._words[values["Index"]]) > 4
        if values["Is Long"] != actually_long:
            return f"Is Long wrong for word #{values['Index']}"
        self._current += actually_long
        return None

    def post_iteration_events_message(self, thread, values):
        if values["Long Words"] != self._current:
            return "per-thread count inconsistent with its iterations"
        self._sum += values["Long Words"]
        self._current = 0
        return None

    def post_join_events_message(self, thread, values):
        if values["Total Long Words"] != self._sum:
            return "total is not the sum of the thread counts"
        return None


# ----------------------------------------------------------------------
# 3. Run the test and read the report
# ----------------------------------------------------------------------

def main() -> None:
    checker = LongWordsTest()
    report = checker.check()

    print("--- annotated trace " + "-" * 40)
    print(report.annotated_trace())
    print()
    print("--- scored report " + "-" * 42)
    print(report.result.render())

    assert report.result.passed, "the reference solution should pass!"


if __name__ == "__main__":
    main()
