"""Grading real student .py files in isolated subprocesses.

The production grading path: each submission is a source file that runs
in its own interpreter (so infinite loops, crashes, or monkey-patching
cannot take the harness down), the trace is reconstructed from its
output, and the results land in a gradebook plus a Gradescope
``results.json`` per student.

Run it::

    python examples/grade_student_files.py
"""

from __future__ import annotations

import tempfile
import textwrap
from pathlib import Path

from repro.execution.subprocess_runner import SubprocessRunner
from repro.grading import Gradebook, SubmissionRecord, write_gradescope_results
from repro.graders import PrimesFunctionality
from repro.testfw.suite import TestSuite

RULE = "=" * 70

#: Three synthetic student files spanning the usual spectrum.
SUBMISSIONS = {
    "ada": textwrap.dedent(
        '''
        """Ada's solution: correct, her own style throughout."""
        import threading, time
        from repro.tracing import print_property

        def is_prime(n):
            if n < 2: return False
            return all(n % d for d in range(2, int(n ** 0.5) + 1))

        def main(args):
            n, t = int(args[0]), int(args[1])
            nums = [509, 578, 796, 129, 272, 594, 714][:n]
            print_property("Random Numbers", nums)
            found = []
            gate = threading.Barrier(t)
            lock = threading.Lock()

            def work(lo, hi):
                gate.wait()
                mine = 0
                for i in range(lo, hi):
                    print_property("Index", i)
                    print_property("Number", nums[i])
                    p = is_prime(nums[i])
                    print_property("Is Prime", p)
                    mine += p
                    time.sleep(0.002)
                print_property("Num Primes", mine)
                with lock:
                    found.append(mine)

            size, extra = divmod(n, t)
            spans, at = [], 0
            for k in range(t):
                step = size + (1 if k < extra else 0)
                spans.append((at, at + step)); at += step
            ts = [threading.Thread(target=work, args=s) for s in spans]
            [x.start() for x in ts]; [x.join() for x in ts]
            print_property("Total Num Primes", sum(found))
        '''
    ),
    "bob": textwrap.dedent(
        '''
        """Bob forgot to fork: the root does everything."""
        from repro.tracing import print_property

        def is_prime(n):
            if n < 2: return False
            return all(n % d for d in range(2, int(n ** 0.5) + 1))

        def main(args):
            n = int(args[0])
            nums = [509, 578, 796, 129, 272, 594, 714][:n]
            print_property("Random Numbers", nums)
            total = 0
            for i, v in enumerate(nums):
                print_property("Index", i)
                print_property("Number", v)
                p = is_prime(v)
                print_property("Is Prime", p)
                total += p
            print_property("Num Primes", total)
            print_property("Total Num Primes", total)
        '''
    ),
    "eve": textwrap.dedent(
        '''
        """Eve's program crashes on an index error."""
        from repro.tracing import print_property

        def main(args):
            nums = [509, 578]
            print_property("Random Numbers", nums)
            print_property("Number", nums[10])
        '''
    ),
}


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="forkjoin-submissions-"))
    gradebook = Gradebook("primes")

    print(RULE)
    print(f"Grading {len(SUBMISSIONS)} student files in {workspace}")
    print(RULE)

    class SubprocessPrimes(PrimesFunctionality):
        def make_runner(self):
            return SubprocessRunner(timeout=60.0)

    for student, source in SUBMISSIONS.items():
        path = workspace / f"{student}_primes.py"
        path.write_text(source)

        suite = TestSuite("primes", [SubprocessPrimes(str(path))])
        result = suite.run()
        gradebook.record(SubmissionRecord.from_suite_result(student, result))

        results_json = workspace / f"{student}_results.json"
        write_gradescope_results(result, results_json)

        print(f"\n--- {student} " + "-" * (58 - len(student)))
        print(result.results[0].render())
        print(f"(Gradescope document: {results_json})")

    print()
    print(RULE)
    print(gradebook.render())


if __name__ == "__main__":
    main()
