"""Catching a race the OS schedule hides (the paper's future-work item).

A racy fork-join program can pass a functionality test: whether the lost
update happens depends on the schedule.  §6 of the paper proposes
"incorporating techniques for influencing thread scheduling to catch
synchronization bugs"; this example demonstrates our implementation:

1. the racy primes submission *passes* under a serialized schedule (the
   race cannot manifest without overlap);
2. the schedule fuzzer reruns the same checker under many seeded random
   interleavings and reports every failing schedule;
3. a failing seed replays deterministically, so the student can study
   the exact interleaving that loses their update.

Run it::

    python examples/schedule_fuzzing.py
"""

from __future__ import annotations

from repro.graders import PrimesFunctionality
from repro.simulation import ScheduleFuzzer
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RandomPolicy, SerializedPolicy

RULE = "=" * 70


def single_benign_run() -> None:
    print(RULE)
    print("1. One benign (serialized) schedule: the race stays hidden")
    print(RULE)
    with use_backend(SimulationBackend(policy=SerializedPolicy())):
        result = PrimesFunctionality("primes.racy").run()
    print(result.render())
    race_visible = any(
        o.aspect == "post-join semantics" for o in result.failed_aspects()
    )
    print(f"\nrace visible in this run? {race_visible}")


def fuzz_campaign() -> int:
    print()
    print(RULE)
    print("2. Schedule fuzzing: 25 seeded random interleavings")
    print(RULE)
    fuzzer = ScheduleFuzzer(
        lambda: PrimesFunctionality("primes.racy"), schedules=25
    )
    report = fuzzer.run()
    print(report.summary())
    print()
    for finding in report.findings[:5]:
        print(
            f"  seed {finding.seed:>3}: {finding.score:g}/"
            f"{finding.max_score:g} - {finding.messages[0]}"
        )
    if len(report.findings) > 5:
        print(f"  ... and {len(report.findings) - 5} more failing schedules")
    assert report.bug_found
    return report.findings[0].seed


def deterministic_replay(seed: int) -> None:
    print()
    print(RULE)
    print(f"3. Replaying failing seed {seed} (deterministic)")
    print(RULE)
    for attempt in (1, 2):
        with use_backend(SimulationBackend(policy=RandomPolicy(seed))):
            result = PrimesFunctionality("primes.racy").run()
        messages = [o.message for o in result.failed_aspects() if o.message]
        print(f"attempt {attempt}: score {result.score:g}/{result.max_score:g}"
              f" - {messages[0] if messages else 'no failure'}")


def main() -> None:
    single_benign_run()
    seed = fuzz_campaign()
    deterministic_replay(seed)


if __name__ == "__main__":
    main()
