"""Ablation — content-hash dedup vs grading every duplicate.

Real class batches contain many byte-identical submissions (untouched
starter files, resubmissions, copies).  With dedup, each distinct
digest is graded once and the result fans out; this ablation grades a
roster whose duplicate ratio is ``STUDENTS``:``DISTINCT`` both ways,
checks the gradebooks agree, and requires the deduped sweep to be at
least ``MIN_SPEEDUP``× faster.

Set ``HOT_PATHS_JSON=<path>`` to merge the measurements into the shared
hot-path artifact.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, merge_json_artifact
from repro.graders import HelloFunctionality
from repro.grading import grade_submissions
from repro.testfw.suite import TestSuite

#: 40 students, 4 distinct programs: a 10:1 duplicate ratio.
STUDENTS = 40
DISTINCT = ["hello.correct", "hello.no_fork", "hello.correct", "hello.correct"]

#: Deduped grading must beat full grading by at least this factor.
MIN_SPEEDUP = 3.0


def _suite_factory(identifier: str) -> TestSuite:
    return TestSuite("hello", [HelloFunctionality(identifier)])


def _roster() -> dict:
    return {
        f"student-{i:03d}": DISTINCT[i % len(DISTINCT)] for i in range(STUDENTS)
    }


def _scores(book) -> dict:
    return {s: book.latest(s).score for s in book.students()}


def test_ablation_dedup_grades_duplicates_once():
    roster = _roster()
    grade_submissions(_suite_factory, roster)  # warm-up

    started = time.perf_counter()
    full_book, _ = grade_submissions(_suite_factory, roster)
    full_seconds = time.perf_counter() - started

    started = time.perf_counter()
    deduped_book, _ = grade_submissions(_suite_factory, roster, dedup=True)
    deduped_seconds = time.perf_counter() - started

    # Fan-out must not change a single grade.
    assert _scores(deduped_book) == _scores(full_book)

    speedup = full_seconds / deduped_seconds
    distinct = len(set(roster.values()))
    merge_json_artifact(
        "HOT_PATHS_JSON",
        "dedup",
        {
            "students": STUDENTS,
            "distinct_submissions": distinct,
            "full_seconds": full_seconds,
            "deduped_seconds": deduped_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
    )
    emit(
        "Ablation — content-hash dedup vs grading every duplicate",
        f"{STUDENTS} students, {distinct} distinct programs: full "
        f"{full_seconds:.2f}s, deduped {deduped_seconds:.2f}s -> "
        f"{speedup:.1f}x (bound {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"dedup only {speedup:.2f}x faster "
        f"(full {full_seconds:.2f}s vs deduped {deduped_seconds:.2f}s)"
    )
