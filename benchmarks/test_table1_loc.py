"""T1 — Table 1: testing-effort comparison in lines of code.

The paper's Table 1 counts, per problem (Odd / Prime / PI), the lines of
test code written for serial vs concurrency requirements, with the
subset that checks intermediate results in parentheses:

    Problem   Serial (Intermediate)   Concurrency (Intermediate)
    Odd           78 (14)                   25 (22)
    Prime         86 (14)                   25 (22)
    PI            95 (0)                    21 (18)

We regenerate the table from the functionality graders' marked sources.
Following the paper's accounting, every test-program line that is not
concurrency-checking code counts toward the serial column (the paper's
two columns partition the whole test program).  Absolute counts differ
slightly (Python is terser than Java); the claims asserted in shape:

* concurrency code is far smaller than serial code for every problem
  (paper ratios 0.32 / 0.29 / 0.22 — ours land within a few points);
* most concurrency code pinpoints *intermediate* results;
* PI has zero serial-intermediate lines (its final serial correctness is
  only checkable through intermediate results, so those lines count as
  final).
"""

from __future__ import annotations

import inspect

from benchmarks.conftest import emit
from repro.core.loc import count_marked_regions
from repro.graders.odds import OddsFunctionality
from repro.graders.pi_montecarlo import PiFunctionality
from repro.graders.primes import PrimesFunctionality

PROBLEMS = [
    ("Odd", OddsFunctionality),
    ("Prime", PrimesFunctionality),
    ("PI", PiFunctionality),
]

PAPER_ROWS = {
    "Odd": ("78 (14)", "25 (22)", 25 / 78),
    "Prime": ("86 (14)", "25 (22)", 25 / 86),
    "PI": ("95 (0)", "21 (18)", 21 / 95),
}


class Row:
    def __init__(self, breakdown) -> None:
        # Paper accounting: unmarked scaffolding (program invocation,
        # constructor) is serial-requirement code.
        self.serial = breakdown.serial_total + breakdown.unmarked
        self.serial_intermediate = breakdown.serial_intermediate
        self.concurrency = breakdown.concurrency_total
        self.concurrency_intermediate = breakdown.concurrency_intermediate

    @property
    def ratio(self) -> float:
        return self.concurrency / self.serial


def build_table():
    return {
        label: Row(count_marked_regions(inspect.getsource(cls)))
        for label, cls in PROBLEMS
    }


def render_table(rows) -> str:
    lines = [
        f"{'Problem':<8} {'Serial (Int.)':<15} {'Conc (Int.)':<13} "
        f"{'ratio':<7} {'paper serial':<14} {'paper conc':<12} {'paper ratio'}"
    ]
    for label, row in rows.items():
        paper_serial, paper_conc, paper_ratio = PAPER_ROWS[label]
        lines.append(
            f"{label:<8} {f'{row.serial} ({row.serial_intermediate})':<15} "
            f"{f'{row.concurrency} ({row.concurrency_intermediate})':<13} "
            f"{row.ratio:<7.2f} {paper_serial:<14} {paper_conc:<12} "
            f"{paper_ratio:.2f}"
        )
    return "\n".join(lines)


def test_table1_loc(benchmark):
    rows = benchmark(build_table)
    emit(
        "Table 1 — test-code LoC: serial vs concurrency (measured vs paper)",
        render_table(rows),
    )

    for label, row in rows.items():
        # Headline claim: checking concurrency requirements takes far
        # less code than checking serial requirements.
        assert row.concurrency < row.serial, label
        assert row.ratio <= 0.45, label
        # Paper ratio reproduced within 15 points.
        assert abs(row.ratio - PAPER_ROWS[label][2]) <= 0.15, label
        # Most concurrency lines pinpoint intermediate results.
        assert row.concurrency_intermediate >= 0.5 * row.concurrency, label

    # The PI twist: 0 lines assigned to serial-intermediate.
    assert rows["PI"].serial_intermediate == 0
    assert rows["Odd"].serial_intermediate > 0
    assert rows["Prime"].serial_intermediate > 0


def test_table1_concurrency_only_needs_three_parameter_methods(benchmark):
    """§5: without intermediate concurrency checks, only three lines —
    the thread-count parameter method — need be written (Fig. 12(a))."""
    from repro.graders.hello import HelloFunctionality

    source = inspect.getsource(HelloFunctionality)

    def count():
        return count_marked_regions(source)

    breakdown = benchmark(count)
    emit(
        "Fig. 12(a) corollary — concurrency-only hello checker",
        f"concurrency-checking LoC: {breakdown.concurrency_total} "
        f"(thread-count parameter + credit split)",
    )
    assert breakdown.concurrency_total <= 5
    assert breakdown.serial_total == 0
