"""F5 — Fig. 5: the plugin-independent interactive testing UI.

Fig. 5 shows the UI created by running the primes suite — two tests
(functionality + performance) — after double-clicking the functionality
test against an imperfect submission: it displays a score of **32 out of
40** with a message indicating which requirements were met and not met.
We regenerate that exact interaction against the serialized submission.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.graders import build_primes_suite
from repro.testfw.ui import SuiteUI


def open_suite_and_run_functionality(serialized_backend):
    suite = build_primes_suite("primes.serialized", perf_runs=2)
    ui = SuiteUI(suite)
    result = ui.run_test_at(1)  # the "double-click" on the first test
    return ui, result


def test_fig5_interactive_suite_ui(benchmark, serialized_backend):
    ui, result = benchmark(open_suite_and_run_functionality, serialized_backend)

    emit(
        "Fig. 5 — suite UI after running the functionality test",
        ui.render_listing() + "\n\n" + ui.render_result(result),
    )

    # The figure's headline: 32 / 40 for this submission.
    assert result.score == 32.0
    assert result.max_score == 40.0

    listing = ui.render_listing()
    # Suite lists both a functionality and a performance test.
    assert "[1]" in listing and "[2]" in listing
    assert "PrimesFunctionality" in listing
    assert "Performance" in listing
    # The run test now shows its score in the listing; the other none.
    assert "32 / 40" in listing
    assert "-- / 20" in listing

    # The report names requirements met and not met.
    rendered = ui.render_result(result)
    assert "+ fork syntax" in rendered
    assert "- thread interleaving" in rendered
    assert "- load balance" in rendered


def test_fig5_scripted_session(benchmark, serialized_backend):
    """The same interaction through the interactive loop."""

    def session():
        suite = build_primes_suite("primes.serialized", perf_runs=2)
        ui = SuiteUI(suite)
        script = iter(["1", "q"])
        transcript = []
        ui.loop(input_fn=lambda _p: next(script), output_fn=transcript.append)
        return "\n".join(transcript)

    transcript = benchmark(session)
    assert "32 / 40" in transcript
    assert "(80%)" in transcript
