"""Ablation 1 — regex syntax checking vs naive string splitting.

§3(a) of the paper argues traces "can be processed by regular
expressions rather than grammars" because each print is a typed logical
variable.  This ablation compares the infrastructure's anchored
per-property regexes with the obvious cheaper alternative — splitting on
``->`` and ``:`` — on two axes:

* **correctness**: the naive splitter accepts malformed lines (wrong
  value type, trailing junk, forged prefixes) that the regexes reject;
* **cost**: the regex check's runtime is the price of that correctness,
  measured on a realistic trace volume.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from benchmarks.conftest import emit
from repro.core.properties import BOOLEAN, NUMBER, PropertySpec

SPECS = [
    PropertySpec("Index", NUMBER),
    PropertySpec("Number", NUMBER),
    PropertySpec("Is Prime", BOOLEAN),
]

#: (line, is_well_formed) — the malformed ones are realistic student
#: output accidents.
CASES: List[Tuple[str, bool]] = [
    ("Thread 24->Index:0", True),
    ("Thread 24->Number:509", True),
    ("Thread 24->Is Prime:true", True),
    ("Thread 24->Is Prime:kinda", False),       # ill-typed value
    ("Thread 24->Index:0 done", False),          # trailing junk
    ("DEBUG Thread 24->Index:0", False),          # forged prefix
    ("Thread 24->Index:", False),                 # empty value
    ("Thread x->Index:0", False),                 # non-numeric thread id
]


def regex_accepts(line: str) -> bool:
    return any(spec.matches_line(line) for spec in SPECS)


def naive_accepts(line: str) -> bool:
    """The splitter a test writer would bang out without the paper's
    infrastructure: find '->' and ':', compare the name."""
    if "->" not in line or ":" not in line:
        return False
    _thread, _, rest = line.partition("->")
    name, _, _value = rest.partition(":")
    return any(spec.name == name for spec in SPECS)


def test_ablation_regex_rejects_malformed_lines(benchmark):
    lines = [line for line, _ok in CASES] * 500  # realistic trace volume

    def check_all():
        return sum(1 for line in lines if regex_accepts(line))

    accepted = benchmark(check_all)
    assert accepted == 3 * 500  # exactly the well-formed lines

    rows = []
    for line, well_formed in CASES:
        r, n = regex_accepts(line), naive_accepts(line)
        rows.append(f"  {line!r:<35} well-formed={well_formed!s:<5} regex={r!s:<5} naive={n}")
    emit("Ablation 1 — regex vs naive splitting on malformed lines", "\n".join(rows))

    # Every verdict of the regex checker is correct...
    for line, well_formed in CASES:
        assert regex_accepts(line) == well_formed, line
    # ...while the naive splitter wrongly accepts at least three
    # malformed shapes (ill-typed value, trailing junk, empty value).
    false_accepts = [
        line for line, ok in CASES if not ok and naive_accepts(line)
    ]
    assert len(false_accepts) >= 3


def test_ablation_naive_split_cost_baseline(benchmark):
    """The naive splitter's cost, for the cost-of-correctness ratio."""
    lines = [line for line, _ok in CASES] * 500

    def check_all():
        return sum(1 for line in lines if naive_accepts(line))

    benchmark(check_all)
