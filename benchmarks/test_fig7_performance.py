"""F7 — Fig. 7: the performance tester and its speedup verdicts.

Fig. 7's test requires a >= 1.5x speedup going from 1 to 4 threads on
100 random numbers, measured over repeated runs with prints disabled.
The same checker is exercised under the four work-kernel regimes of
DESIGN.md §3:

* **latency** (sleep kernel)   — wall-clock speedup is genuine (GIL
  released); must pass the 1.5x bar;
* **simulated** (virtual time) — deterministic near-linear speedup; must
  pass;
* **cpu** (pure Python)        — the GIL's negative control; the checker
  must *fail* it and report the expected-vs-actual difference;
* **numpy** (vectorised)       — GIL released inside kernels; reported
  informationally (bounded by physical cores, which CI may lack).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.graders.primes import PrimesPerformance, SimulatedPrimesPerformance

#: Fewer repetitions than the paper's 10 keeps the bench wall-time sane;
#: the checker's default of 10 is covered by the unit tests.
RUNS = 3


def describe(checker, result) -> str:
    return (
        f"verdict: {result.score:g}/{result.max_score:g}  "
        f"speedup {checker.last_speedup:.2f} (required "
        f"{checker.expected_minimum_speedup():g})\n"
        f"  low : {checker.last_low.describe()}\n"
        f"  high: {checker.last_high.describe()}"
    )


def test_fig7_latency_kernel_passes(benchmark):
    def check():
        checker = PrimesPerformance("primes.perf.latency", runs=RUNS)
        return checker, checker.run()

    checker, result = benchmark.pedantic(check, rounds=1, iterations=1)
    emit("Fig. 7 — performance test, sleep kernel (wall clock)", describe(checker, result))
    assert result.score == result.max_score
    assert checker.last_speedup >= 1.5


def test_fig7_virtual_clock_passes_deterministically(benchmark):
    def check():
        checker = SimulatedPrimesPerformance(runs=RUNS)
        return checker, checker.run()

    checker, result = benchmark.pedantic(check, rounds=1, iterations=1)
    emit("Fig. 7 — performance test, virtual clock", describe(checker, result))
    assert result.score == result.max_score
    # Near-linear: 4 virtual threads over balanced unit costs.
    assert checker.last_speedup == pytest.approx(4.0, rel=0.15)


def test_fig7_gil_bound_kernel_fails_with_reason(benchmark):
    def check():
        checker = PrimesPerformance("primes.perf.cpu", runs=RUNS)
        return checker, checker.run()

    checker, result = benchmark.pedantic(check, rounds=1, iterations=1)
    emit("Fig. 7 — negative control, pure-Python CPU kernel", describe(checker, result))
    assert result.score == 0.0
    [outcome] = result.outcomes
    assert "expected a speedup of at least 1.5" in outcome.message
    # Honest diagnosis: the GIL keeps CPU-bound threads near 1.0x.
    assert checker.last_speedup < 1.5


def test_fig7_numpy_kernel_reported(benchmark):
    def check():
        checker = PrimesPerformance("primes.perf.numpy", runs=RUNS)
        return checker, checker.run()

    checker, result = benchmark.pedantic(check, rounds=1, iterations=1)
    emit(
        "Fig. 7 — NumPy kernel (GIL released; bounded by physical cores)",
        describe(checker, result),
    )
    # Informational: the verdict depends on the host's core count; the
    # checker machinery itself must complete cleanly either way.
    assert result.fatal == ""
    assert checker.last_speedup > 0.0
