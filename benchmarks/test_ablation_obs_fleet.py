"""Ablation — fleet telemetry rides within the observability budget.

PR 6 layers the fleet-telemetry plumbing on top of the base registry: a
:class:`~repro.obs.export.SidecarWriter` span sink streaming every ended
span to a crash-safe JSONL sidecar, and an installed
:class:`~repro.obs.context.TraceContext` stamping process identity on
each span.  That is the configuration every shard worker runs under, so
the 5% overhead bound from ``docs/observability.md`` must hold for it
too — not just for an in-memory registry.  This ablation times the same
trace-heavy ``primes.correct`` workload with the full fleet path
(enabled registry + sidecar sink + trace context) against a disabled
registry and requires the min-of-N ratio to stay within 5%.

Methodology matches the obs-overhead ablation: the two configurations
are timed *interleaved* (fleet, off, fleet, off, ...) so environmental
drift hits both equally, and the minimum over all rounds is compared.

Set ``OBS_FLEET_JSON=<path>`` to also write the measurements as a JSON
artifact (uploaded by the CI job as ``BENCH_obs_fleet.json``).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from repro.execution.runner import ProgramRunner
from repro.obs import (
    ObsRegistry,
    SidecarWriter,
    TraceContext,
    load_jsonl,
    use_context,
    use_registry,
)

#: Trace-heavy configuration: 400 numbers -> ~1200 iteration prints.
ARGS = ["400", "4"]
IDENTIFIER = "primes.correct"

#: Interleaved measurement rounds per configuration.
ROUNDS = 12

#: Required bound: fleet path within 5% of obs-off on the min-of-N time.
MAX_RATIO = 1.05


def _timed_run(registry: ObsRegistry) -> float:
    with use_registry(registry):
        runner = ProgramRunner()
        started = time.perf_counter()
        result = runner.run(IDENTIFIER, ARGS)
        elapsed = time.perf_counter() - started
    assert result.ok
    return elapsed


def test_ablation_fleet_telemetry_within_5_percent(tmp_path):
    context = TraceContext(
        run_id="bench", role="shard", shard=0, incarnation=0
    )
    enabled = ObsRegistry(enabled=True)
    writer = SidecarWriter(
        tmp_path / "obs-shard-00.inc00.jsonl",
        registry=enabled,
        context=context,
    )
    enabled.add_span_sink(writer.on_span)
    disabled = ObsRegistry(enabled=False)

    # Warm-up absorbs import and allocator effects for both paths.
    for registry in (enabled, disabled):
        _timed_run(registry)

    fleet_times = []
    off_times = []
    with use_context(context):
        for _ in range(ROUNDS):
            fleet_times.append(_timed_run(enabled))
            off_times.append(_timed_run(disabled))

    best_fleet = min(fleet_times)
    best_off = min(off_times)
    ratio = best_fleet / best_off

    # The fleet path really streamed: every ended span is already on
    # disk, process-stamped, before any clean shutdown.
    sidecar = load_jsonl(writer.path, tolerant=True)
    assert len(sidecar.spans) == len(enabled.spans())
    assert all(s.process == "shard-00#0" for s in sidecar.spans)
    writer.close()
    assert not disabled.spans() and not disabled.histograms()

    artifact = {
        "workload": {"identifier": IDENTIFIER, "args": ARGS},
        "rounds": ROUNDS,
        "min_seconds_fleet": best_fleet,
        "min_seconds_obs_off": best_off,
        "ratio": ratio,
        "max_ratio": MAX_RATIO,
        "sidecar_spans": len(sidecar.spans),
    }
    out = os.environ.get("OBS_FLEET_JSON")
    if out:
        with open(out, "w") as handle:
            json.dump(artifact, handle, indent=2)

    emit(
        "Ablation — fleet telemetry (sidecar + context) overhead",
        f"min over {ROUNDS} interleaved rounds: fleet {best_fleet * 1e3:.2f}ms, "
        f"obs-off {best_off * 1e3:.2f}ms, ratio {ratio:.4f} "
        f"(bound {MAX_RATIO})",
    )
    assert ratio <= MAX_RATIO, (
        f"fleet telemetry overhead {100 * (ratio - 1):.1f}% exceeds the "
        f"{100 * (MAX_RATIO - 1):.0f}% budget "
        f"(fleet {best_fleet:.4f}s vs off {best_off:.4f}s)"
    )
