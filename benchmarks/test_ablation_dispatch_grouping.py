"""Ablation 2 — per-thread grouped vs interleaved semantic dispatch.

The paper's appendix highlights a scheduling guarantee of the checking
infrastructure: although the tested threads *interleave* their prints,
the testing code's iteration callbacks are **not** interleaved — all of
one thread's iterations are processed, then its post-iteration, before
the next thread's.  That is what lets a test program keep one simple
``primes_found_by_current_thread`` counter.

This ablation dispatches the *same interleaved trace* both ways and
shows the per-thread-state checker produces false errors under
interleaved dispatch, while grouped dispatch (the infrastructure's way)
is clean.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Tuple

from benchmarks.conftest import emit
from repro.core.trace_model import build_phased_trace
from repro.workloads.common import is_prime
from tests.helpers import primes_schedule, synthetic_execution
from tests.test_core_trace_model import PRIMES_SPECS


class PerThreadStateChecker:
    """The appendix's check style: one running counter per current thread."""

    def __init__(self) -> None:
        self.current = 0
        self.errors: List[str] = []

    def iteration(self, values: Mapping[str, Any]) -> None:
        if is_prime(int(values["Number"])):
            self.current += 1

    def post_iteration(self, values: Mapping[str, Any]) -> None:
        if int(values["Num Primes"]) != self.current:
            self.errors.append(
                f"reported {values['Num Primes']} != tracked {self.current}"
            )
        self.current = 0


def interleaved_trace():
    return build_phased_trace(
        synthetic_execution(primes_schedule(interleave=True)), PRIMES_SPECS
    )


def dispatch_grouped(trace) -> List[str]:
    """The infrastructure's order: per worker, iterations then post."""
    checker = PerThreadStateChecker()
    for worker in trace.workers:
        for iteration in worker.iterations:
            checker.iteration(iteration.values)
        if worker.post_iteration is not None:
            checker.post_iteration(worker.post_iteration.values)
    return checker.errors


def dispatch_interleaved(trace) -> List[str]:
    """The ablated order: callbacks fire in raw trace order."""
    checker = PerThreadStateChecker()
    tuples: List[Tuple[int, str, Mapping[str, Any]]] = []
    for worker in trace.workers:
        for iteration in worker.iterations:
            tuples.append((iteration.first_seq, "iteration", iteration.values))
        if worker.post_iteration is not None:
            tuples.append(
                (worker.post_iteration.first_seq, "post", worker.post_iteration.values)
            )
    for _seq, kind, values in sorted(tuples):
        if kind == "iteration":
            checker.iteration(values)
        else:
            checker.post_iteration(values)
    return checker.errors


def test_ablation_grouped_dispatch_is_clean(benchmark):
    trace = interleaved_trace()
    errors = benchmark(dispatch_grouped, trace)
    grouped, interleaved = errors, dispatch_interleaved(trace)
    emit(
        "Ablation 2 — semantic dispatch order on an interleaved trace",
        f"grouped dispatch    : {len(grouped)} false errors\n"
        f"interleaved dispatch: {len(interleaved)} false errors\n"
        + "\n".join(f"    e.g. {e}" for e in interleaved[:2]),
    )
    # The correct submission must check clean under the real dispatcher…
    assert grouped == []
    # …and the SAME correct trace produces false errors if callbacks are
    # interleaved — per-thread test state would need full bookkeeping.
    assert len(interleaved) >= 1


def test_ablation_interleaved_dispatch_cost(benchmark):
    """Interleaved dispatch is not even cheaper — sorting by seq costs
    more than the grouped walk."""
    trace = interleaved_trace()
    benchmark(dispatch_interleaved, trace)
