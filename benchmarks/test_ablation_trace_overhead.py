"""Ablation 3 — why performance testing disables trace prints.

§3 of the paper: "A program written for functionality testing would be
artificially slowed down ... when used for performance testing.  Our
solution is a mechanism to dynamically turn off all prints."  This
ablation quantifies that design choice: the same tested program is timed
with prints hidden (the checker's normal timed path) and with prints
enabled (the ablated design), on a trace-heavy configuration.

Shape asserted: enabling trace recording makes the timed run measurably
slower and allocates trace events proportional to the workload — both
effects the hide mechanism exists to remove.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.execution.runner import ProgramRunner

#: Trace-heavy configuration: 400 numbers -> ~1200 iteration prints.
ARGS = ["400", "4"]
IDENTIFIER = "primes.correct"


def run_hidden():
    return ProgramRunner().run(IDENTIFIER, ARGS, hide_prints=True)


def run_traced():
    return ProgramRunner().run(IDENTIFIER, ARGS, hide_prints=False)


def test_ablation_hidden_prints_timed_path(benchmark):
    result = benchmark(run_hidden)
    assert result.ok
    assert result.events == []  # no trace recorded on the timed path
    assert result.output == ""  # no output either


def test_ablation_traced_run_overhead(benchmark):
    result = benchmark(run_traced)
    assert result.ok
    expected_events = 1 + 400 * 3 + 4 + 1
    assert len(result.events) == expected_events
    emit(
        "Ablation 3 — tracing on the timed path",
        f"traced run allocates {len(result.events)} events and "
        f"{len(result.output)} bytes of output that the hidden run avoids "
        f"entirely (compare the two benchmark rows for the time cost)",
    )
