"""Ablation — observability stays on by default because it is ~free.

``repro.obs`` instruments every traced run (two spans, one histogram
observation, one event count read at session teardown) and the claim in
``docs/observability.md`` is that this costs so little that nobody
should ever need ``REPRO_OBS=off`` for performance.  This ablation holds
that claim to a number: on the trace-overhead workload (the same
trace-heavy ``primes.correct`` configuration as ablation 3), the
obs-enabled run must be within 5% of the obs-disabled run.

Methodology: the two configurations are timed *interleaved* (on, off,
on, off, ...) so drift — thermal, cache, a background process — hits
both equally, and the minimum over all rounds is compared (the minimum
is the classic low-variance estimator for "how fast can this go"; means
absorb scheduler noise).

Set ``OBS_OVERHEAD_JSON=<path>`` to also write the measurements as a
JSON artifact (uploaded by the CI obs-overhead job).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from repro.execution.runner import ProgramRunner
from repro.obs import ObsRegistry, use_registry

#: Trace-heavy configuration: 400 numbers -> ~1200 iteration prints.
ARGS = ["400", "4"]
IDENTIFIER = "primes.correct"

#: Interleaved measurement rounds per configuration.
ROUNDS = 12

#: Required bound: obs-on within 5% of obs-off on the min-of-N time.
MAX_RATIO = 1.05


def _timed_run(registry: ObsRegistry) -> float:
    with use_registry(registry):
        runner = ProgramRunner()
        started = time.perf_counter()
        result = runner.run(IDENTIFIER, ARGS)
        elapsed = time.perf_counter() - started
    assert result.ok
    return elapsed


def test_ablation_obs_overhead_within_5_percent():
    enabled = ObsRegistry(enabled=True)
    disabled = ObsRegistry(enabled=False)

    # Warm-up absorbs import and allocator effects for both paths.
    for registry in (enabled, disabled):
        _timed_run(registry)

    on_times = []
    off_times = []
    for _ in range(ROUNDS):
        on_times.append(_timed_run(enabled))
        off_times.append(_timed_run(disabled))

    best_on = min(on_times)
    best_off = min(off_times)
    ratio = best_on / best_off

    # The enabled registry really collected; the disabled one really not.
    assert enabled.spans() and enabled.histograms()
    assert not disabled.spans() and not disabled.histograms()

    artifact = {
        "workload": {"identifier": IDENTIFIER, "args": ARGS},
        "rounds": ROUNDS,
        "min_seconds_obs_on": best_on,
        "min_seconds_obs_off": best_off,
        "ratio": ratio,
        "max_ratio": MAX_RATIO,
    }
    out = os.environ.get("OBS_OVERHEAD_JSON")
    if out:
        with open(out, "w") as handle:
            json.dump(artifact, handle, indent=2)

    emit(
        "Ablation — observability overhead on the trace-overhead workload",
        f"min over {ROUNDS} interleaved rounds: obs-on {best_on * 1e3:.2f}ms, "
        f"obs-off {best_off * 1e3:.2f}ms, ratio {ratio:.4f} "
        f"(bound {MAX_RATIO})",
    )
    assert ratio <= MAX_RATIO, (
        f"observability overhead {100 * (ratio - 1):.1f}% exceeds the "
        f"{100 * (MAX_RATIO - 1):.0f}% budget "
        f"(on {best_on:.4f}s vs off {best_off:.4f}s)"
    )
