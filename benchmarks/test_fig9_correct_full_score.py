"""F8/F9 — Figs. 8 & 9: a correct implementation earns 100 %.

Fig. 8 shows the test program's iteration-phase specification; Fig. 9 a
correct trace annotated with fork-join phase comments, every phase
verified, full points awarded (100 %).  We run the appendix's checker
against the reference solution under a deterministically interleaved
schedule and regenerate the annotated trace and the perfect score.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.graders import PrimesFunctionality
from repro.testfw.result import AspectStatus


def check_correct(round_robin_backend):
    checker = PrimesFunctionality("primes.correct")
    return checker.check()


def test_fig9_correct_trace_full_score(benchmark, round_robin_backend):
    report = benchmark(check_correct, round_robin_backend)
    emit("Fig. 9 — annotated trace of a correct implementation", report.render())

    result = report.result
    assert result.score == 40.0
    assert result.percent == pytest.approx(100.0)  # "100 %" (Fig. 9 line 41)
    assert result.fatal == ""
    # Every aspect passed; none skipped.
    assert all(o.status is AspectStatus.PASSED for o in result.outcomes)
    assert len(result.outcomes) == 10

    # The trace demonstrates each phase (Fig. 9's embellishing comments).
    annotated = report.annotated_trace()
    assert "// pre-fork phase (root thread)" in annotated
    assert "// fork phase (iteration + post-iteration, interleaved)" in annotated
    assert "// post-join phase (root thread)" in annotated

    # Fig. 9's structural facts: 7 numbers processed, 4 worker threads,
    # loads as balanced as they can be (three threads do 2, one does 1).
    trace = report.trace
    assert trace.total_iterations == 7
    assert trace.worker_count == 4
    assert sorted(w.iteration_count for w in trace.workers) == [1, 2, 2, 2]


def test_fig9_interleaving_visible_in_output(benchmark, round_robin_backend):
    """Because of interleaving, "the iteration and post-iteration phases
    of the threads are mixed in the output"."""
    report = benchmark(check_correct, round_robin_backend)
    worker_ids = [e.thread_id for e in report.execution.worker_events()]
    switches = sum(1 for a, b in zip(worker_ids, worker_ids[1:]) if a != b)
    emit(
        "Fig. 9 — thread interleaving in the fork phase",
        f"worker output switches threads {switches} times across "
        f"{len(worker_ids)} lines",
    )
    assert switches >= 4
