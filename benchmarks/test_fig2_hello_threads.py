"""F2 — Fig. 2: concurrency-aware output and thread counting.

The paper's Fig. 2 shows the OMP hello-world whose output lines carry
thread numbers, making the output *concurrency-aware*: "the test code
can parse the output to determine the number of different threads
created."  We run the OMP-style workload and count distinct threads two
ways — from the printed text (what a naive output-parsing test would do)
and from the trace's true thread objects (what the infrastructure does)
— and show they agree for an honest program, while a forged-id program
fools only the former.
"""

from __future__ import annotations

import re
from typing import List

from benchmarks.conftest import emit
from repro.eventdb.queries import distinct_threads
from repro.execution.registry import register_main, unregister_main
from repro.execution.runner import ProgramRunner

NUM_THREADS = 6


def run_omp_hello():
    return ProgramRunner().run("hello.omp_style", [str(NUM_THREADS)])


def test_fig2_thread_counting(benchmark):
    result = benchmark(run_omp_hello)
    emit("Fig. 2 — concurrency-aware OMP-style hello output", result.output.rstrip())

    printed_ids = set(re.findall(r"from thread = (\d+)", result.output))
    trace_threads = distinct_threads(result.events)
    assert len(printed_ids) == NUM_THREADS
    assert len(trace_threads) == NUM_THREADS
    assert len(result.worker_threads) == NUM_THREADS


def test_fig2_forged_ids_cannot_fool_the_trace(benchmark):
    """§4.2: "a test program that tries to print the wrong thread id
    cannot fool the infrastructure as it internally keeps the object
    associated with the printing thread"."""

    @register_main("bench.hello.forged")
    def forged(args: List[str]) -> None:
        # One thread pretends to be four by printing four fake ids.
        import threading

        def worker() -> None:
            for fake in range(4):
                print(f"Hello World.. from thread = {fake}")

        t = threading.Thread(target=worker)
        t.start()
        t.join()

    try:
        result = benchmark(lambda: ProgramRunner().run("bench.hello.forged"))
    finally:
        unregister_main("bench.hello.forged")

    printed_ids = set(re.findall(r"from thread = (\d+)", result.output))
    emit(
        "Fig. 2 corollary — forged thread ids",
        f"text claims {len(printed_ids)} threads; "
        f"trace proves {len(result.worker_threads)}",
    )
    assert len(printed_ids) == 4  # the text lies...
    assert len(result.worker_threads) == 1  # ...the trace does not
