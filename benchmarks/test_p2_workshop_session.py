"""P2 — §5: the workshop session, three problems, fourteen participants.

The paper used the infrastructure to test code from fourteen workshop
participants across three problems — primes (variable randoms, fixed
threads), PI Monte-Carlo, and the odd-numbers worked example — keeping
total iterations small (27) so tests finish quickly.  We regenerate the
session: grade a synthetic cohort of fourteen submissions spanning the
observed bug classes on all three problems, fill a gradebook, and build
the instructor-awareness report over the cohort's progress logs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.grading import ProgressLog, analyze_progress, grade_submissions
from repro.graders import OddsFunctionality, PiFunctionality, PrimesFunctionality
from repro.testfw.suite import TestSuite

#: Fourteen participants, distributed over the bug classes the figures
#: document (most get it right by workshop's end; a tail struggles).
COHORT = {
    "p01": "primes.correct",
    "p02": "primes.correct",
    "p03": "primes.serialized",
    "p04": "primes.imbalanced",
    "p05": "primes.syntax_error",
    "p06": "pi.correct",
    "p07": "pi.correct",
    "p08": "pi.wrong_semantics",
    "p09": "pi.wrong_final",
    "p10": "pi.no_fork",
    "p11": "odds.correct",
    "p12": "odds.correct",
    "p13": "odds.wrong_total",
    "p14": "odds.no_fork",
}

CHECKERS = {
    "primes": PrimesFunctionality,
    "pi": PiFunctionality,
    "odds": OddsFunctionality,
}


def suite_for(identifier: str) -> TestSuite:
    problem = identifier.split(".")[0]
    return TestSuite(problem, [CHECKERS[problem](identifier)])


def grade_cohort():
    books = {}
    for problem in CHECKERS:
        submissions = {
            student: ident
            for student, ident in COHORT.items()
            if ident.startswith(problem + ".")
        }
        books[problem], _live = grade_submissions(suite_for, submissions)
    return books


def test_p2_workshop_grading_session(benchmark, round_robin_backend):
    books = benchmark.pedantic(grade_cohort, rounds=1, iterations=1)
    rendered = "\n\n".join(book.render() for book in books.values())
    emit("P2 — workshop cohort gradebooks (3 problems, 14 participants)", rendered)

    for problem, book in books.items():
        percentages = book.class_percentages()
        correct = [s for s, i in COHORT.items() if i == f"{problem}.correct"]
        buggy = [
            s
            for s, i in COHORT.items()
            if i.startswith(problem + ".") and not i.endswith(".correct")
        ]
        for student in correct:
            assert percentages[student] == pytest.approx(100.0), student
        for student in buggy:
            assert percentages[student] < 100.0, student

    # 14 participants graded in total.
    assert sum(len(b.students()) for b in books.values()) == 14


def test_p2_quick_feedback_claim(benchmark, round_robin_backend):
    """§5: small iteration totals (27) let tests finish quickly — the
    whole odd-numbers functionality check must run in well under a
    second, suitable for interactive instructor-agent use."""

    def check():
        return OddsFunctionality("odds.correct").run()

    result = benchmark(check)
    assert result.percent == pytest.approx(100.0)
    stats = benchmark.stats.stats
    assert stats.mean < 1.0  # seconds


def test_p2_awareness_over_cohort_progress(benchmark, round_robin_backend):
    """Instructor awareness: logged in-progress runs expose who is stuck
    and which requirement the class finds hardest."""

    def build_report():
        log = ProgressLog()
        # p03 is stuck on serialization across four runs; p01 improves.
        for t in range(4):
            log.log_run(
                "p03",
                suite_for("primes.serialized").run(),
                timestamp=float(t),
            )
        log.log_run("p01", suite_for("primes.no_fork").run(), timestamp=0.0)
        log.log_run("p01", suite_for("primes.correct").run(), timestamp=1.0)
        return analyze_progress(log, suite="primes")

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    emit("P2 — instructor awareness report", report.render())

    stuck = [s.student for s in report.stuck_students()]
    assert stuck == ["p03"]
    by_name = {s.student: s for s in report.students}
    assert by_name["p01"].improving
    hardest = report.hardest_aspects()
    assert "thread interleaving" in hardest or "load balance" in hardest
