"""P1 — §4.3 prose: the speedup computation behind the verdict.

The paper's performance checker runs low- and high-thread configurations
a default number of times and computes the speedup from total times.
This bench regenerates the underlying *series*: speedup as a function of
thread count, for the virtual-clock regime (deterministic) and the
sleep-latency regime (wall clock).  The shape that must hold: speedup
increases monotonically with threads and approaches the thread count
for balanced unit-cost work.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.execution.timing import speedup, time_program
from repro.simulation.backend import last_makespan

THREAD_COUNTS = [1, 2, 4, 8]
NUM_ITEMS = "64"


def sweep(identifier: str, duration_of=None):
    baseline = time_program(
        identifier, [NUM_ITEMS, "1"], runs=2, duration_of=duration_of, warmup_runs=1
    )
    series = {}
    for threads in THREAD_COUNTS:
        timing = time_program(
            identifier,
            [NUM_ITEMS, str(threads)],
            runs=2,
            duration_of=duration_of,
            warmup_runs=0,
        )
        series[threads] = speedup(baseline, timing)
    return series


def render(series) -> str:
    return "\n".join(
        f"  {threads:>2} threads: speedup {value:5.2f}"
        for threads, value in series.items()
    )


def test_p1_virtual_clock_speedup_series(benchmark):
    series = benchmark.pedantic(
        lambda: sweep("primes.perf.sim", duration_of=lambda _e: last_makespan()),
        rounds=1,
        iterations=1,
    )
    emit("P1 — virtual-clock speedup vs thread count (64 items)", render(series))
    values = list(series.values())
    assert values == sorted(values)  # monotone non-decreasing
    assert series[1] == pytest.approx(1.0, rel=0.05)
    assert series[4] == pytest.approx(4.0, rel=0.15)
    assert series[8] > series[4]


def test_p1_wall_clock_speedup_series(benchmark):
    series = benchmark.pedantic(
        lambda: sweep("primes.perf.latency"), rounds=1, iterations=1
    )
    emit("P1 — wall-clock (sleep kernel) speedup vs thread count", render(series))
    # Wall-clock numbers are noisy; the shape claims only.
    assert series[1] == pytest.approx(1.0, rel=0.35)
    assert series[4] > 1.5
    assert series[4] > series[1]
