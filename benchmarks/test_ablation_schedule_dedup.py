"""Ablation — smarter schedule search earns its complexity.

Three measurements behind the claims in ``docs/exploring_schedules.md``:

1. **PCT beats random walks on depth-1 bugs.** On ``synclab.straggler``
   (the flag-publication ordering bug: one specific worker must be
   demoted behind every watcher), depth-1 PCT finds the bug in a median
   of ~2 schedules across base seeds; seeded random walks need an order
   of magnitude more and usually exhaust the 30-schedule cap.
2. **Happens-before dedup skips real work without changing verdicts.**
   The exhaustive census of ``synclab.lost_update`` needs only 14
   executions with dedup on versus 26 with it off — same 26-interleaving
   enumeration, same 8 failing.
3. **The exhaustive census is a stable program property.** Two
   independent runs report the identical ``8 of 26`` verdict.

Set ``SCHEDULE_SEARCH_JSON=<path>`` to write the measurements as a JSON
artifact (uploaded by the CI schedule-search job as
``BENCH_schedule_search.json``).
"""

from __future__ import annotations

from statistics import median

from benchmarks.conftest import emit, merge_json_artifact
from repro.execution.exploration import ScheduleExplorer
from repro.execution.scheduling import PCTStrategy, RandomWalkStrategy
from repro.graders.synclab import (
    SyncLabCounterFunctionality,
    SyncLabStragglerFunctionality,
)

#: Schedules-to-first-bug cap; "cap + 1" encodes "not found within cap".
CAP = 30

#: Base seeds spaced out so each campaign draws an unrelated seed range.
BASE_SEEDS = [s * 100 for s in range(5)]


def straggler_factory():
    return lambda: SyncLabStragglerFunctionality(workers=4, rounds=6)


def lost_update_factory():
    return lambda: SyncLabCounterFunctionality(
        "synclab.lost_update", workers=2, rounds=1
    )


def schedules_to_first_bug(factory, make_strategy, base_seed):
    """Controlled runs until the checker fails, or ``CAP + 1``."""
    explorer = ScheduleExplorer(factory, schedules=1)
    for offset in range(CAP):
        result, _trace = explorer.run_one(make_strategy(base_seed + offset))
        if result.failed_aspects() or result.fatal:
            return offset + 1
    return CAP + 1


def test_pct_finds_depth1_bug_in_fewer_schedules():
    pct_counts = [
        schedules_to_first_bug(
            straggler_factory(), lambda seed: PCTStrategy(seed, depth=1), base
        )
        for base in BASE_SEEDS
    ]
    walk_counts = [
        schedules_to_first_bug(straggler_factory(), RandomWalkStrategy, base)
        for base in BASE_SEEDS
    ]
    pct_median, walk_median = median(pct_counts), median(walk_counts)

    emit(
        "Ablation: PCT vs random walk, schedules to first bug "
        "(synclab.straggler, 4 workers x 6 rounds)",
        f"base seeds:   {BASE_SEEDS}\n"
        f"pct depth-1:  {pct_counts}  (median {pct_median})\n"
        f"random walk:  {walk_counts}  (median {walk_median})\n"
        f"cap: {CAP} ({CAP + 1} = bug not found within the cap)",
    )
    merge_json_artifact(
        "SCHEDULE_SEARCH_JSON",
        "pct_vs_random_walk",
        {
            "workload": "synclab.straggler",
            "cap": CAP,
            "base_seeds": BASE_SEEDS,
            "pct_depth1_to_first_bug": pct_counts,
            "random_walk_to_first_bug": walk_counts,
            "pct_median": pct_median,
            "random_walk_median": walk_median,
        },
    )

    # The paper-style claim is about the *order*, not the exact counts:
    # PCT's 1/(n * k^(d-1)) guarantee shows up as a decisive median gap.
    assert pct_median < walk_median
    assert pct_median <= 5


def test_dedup_halves_executions_without_changing_the_census():
    def census(dedup):
        return ScheduleExplorer(
            lost_update_factory(),
            strategy="exhaustive",
            depth=2,
            max_schedules=256,
            dedup=dedup,
        ).run()

    on, off = census(True), census(False)

    emit(
        "Ablation: happens-before dedup in the exhaustive census "
        "(synclab.lost_update, 2 workers x 1 round, preemption bound 2)",
        f"dedup on:  {on.executed} executed, {on.deduped} deduped, "
        f"{on.failing_interleavings} of {on.enumerated} fail\n"
        f"dedup off: {off.executed} executed, {off.deduped} deduped, "
        f"{off.failing_interleavings} of {off.enumerated} fail",
    )
    merge_json_artifact(
        "SCHEDULE_SEARCH_JSON",
        "dedup_ablation",
        {
            "workload": "synclab.lost_update",
            "depth": 2,
            "dedup_on": {"executed": on.executed, "deduped": on.deduped},
            "dedup_off": {"executed": off.executed, "deduped": off.deduped},
            "enumerated": on.enumerated,
            "failing": on.failing_interleavings,
        },
    )

    # Identical verdict, strictly less execution, zero mispredictions
    # (the oracle predicted every skipped schedule correctly).
    assert (on.enumerated, on.failing_interleavings, on.complete) == (
        off.enumerated,
        off.failing_interleavings,
        off.complete,
    )
    assert on.executed < off.executed
    assert on.executed + on.deduped == on.enumerated
    assert on.mispredicted == 0


def test_exhaustive_census_is_stable_across_runs():
    def census():
        report = ScheduleExplorer(
            lost_update_factory(),
            strategy="exhaustive",
            depth=2,
            max_schedules=256,
        ).run()
        return (report.failing_interleavings, report.enumerated, report.complete)

    first, second = census(), census()

    emit(
        "Exhaustive census stability (synclab.lost_update, bound 2)",
        f"run 1: {first[0]} of {first[1]} fail (complete={first[2]})\n"
        f"run 2: {second[0]} of {second[1]} fail (complete={second[2]})",
    )
    merge_json_artifact(
        "SCHEDULE_SEARCH_JSON",
        "census_stability",
        {
            "workload": "synclab.lost_update",
            "depth": 2,
            "run1": {"failing": first[0], "enumerated": first[1]},
            "run2": {"failing": second[0], "enumerated": second[1]},
        },
    )

    assert first == second
    assert first[2] is True  # complete within the bound, not budget-capped
