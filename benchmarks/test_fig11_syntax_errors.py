"""F11 — Fig. 11: syntax errors suppress semantics, 10 % awarded.

Fig. 11's trace has two syntax errors: the pre-fork property is named
"Randoms" rather than "Random Numbers", and a loop error makes the fork
output fall short of the expected regular expressions (the paper counts
25 expected for 7 randoms: 3 iteration outputs x 7 plus 1 post-iteration
x 4 threads).  Because of these syntax errors **no semantic checks are
run** and the program earns 10 %.  We regenerate the run against the
syntax-broken submission.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.outcome import Aspect
from repro.graders import PrimesFunctionality
from repro.testfw.result import AspectStatus


def check_syntax_broken(round_robin_backend):
    checker = PrimesFunctionality("primes.syntax_error")
    return checker.check()


def test_fig11_syntax_errors_gate_semantics(benchmark, round_robin_backend):
    report = benchmark(check_syntax_broken, round_robin_backend)
    emit("Fig. 11 — submission with syntax errors", report.result.render())

    result = report.result
    assert result.score == 4.0
    assert result.percent == pytest.approx(10.0)  # the paper's 10 %

    statuses = {o.aspect: o for o in result.outcomes}

    # Error 1: the misnamed pre-fork property, in the paper's wording.
    pre_fork = statuses[Aspect.PRE_FORK_SYNTAX]
    assert pre_fork.status is AspectStatus.FAILED
    assert "named 'Randoms' rather than 'Random Numbers'" in pre_fork.message

    # Error 2: the fork output regex-count shortfall, stated against the
    # full expected count for 7 randoms and 4 threads.
    fork = statuses[Aspect.FORK_SYNTAX]
    assert fork.status is AspectStatus.FAILED
    assert "25 regular expressions" in fork.message

    # Post-join syntax is still correct — the only credit that survives.
    assert statuses[Aspect.POST_JOIN_SYNTAX].status is AspectStatus.PASSED

    # "Because of these syntax errors, no semantic checks are run":
    for aspect in (
        Aspect.THREAD_COUNT,
        Aspect.INTERLEAVING,
        Aspect.LOAD_BALANCE,
        Aspect.PRE_FORK_SEMANTICS,
        Aspect.ITERATION_SEMANTICS,
        Aspect.POST_ITERATION_SEMANTICS,
        Aspect.POST_JOIN_SEMANTICS,
    ):
        assert statuses[aspect].status is AspectStatus.SKIPPED, aspect


def test_fig11_fork_output_shortfall_counted(benchmark, round_robin_backend):
    report = benchmark(check_syntax_broken, round_robin_backend)
    matching = len(report.trace.worker_events)
    emit(
        "Fig. 11 — fork output shortfall",
        f"expected 25 property outputs (7x3 iteration + 4x1 "
        f"post-iteration); trace has {matching}",
    )
    # The off-by-one loop drops one iteration (3 lines) per 2-item slice:
    # 3 slices of 2 -> one iteration each; 1 slice of 1 -> zero.
    assert matching < 25
