"""F12 — Fig. 12: the Hello World concurrency-only checker.

Fig. 12(a) is a complete functionality test written with just three
parameter methods (program name, arguments, expected forked threads)
plus an overridden ``threadCountCredit`` allocating 80 % for the right
number of threads and 20 % for creating one or more.  Fig. 12(b) shows
the result on a submission whose root prints the greeting directly
without forking: the exact problem is identified in an error message.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.graders import HelloFunctionality


def test_fig12a_correct_hello_full_credit(benchmark):
    def check():
        return HelloFunctionality("hello.correct", num_threads=1).run()

    result = benchmark(check)
    emit("Fig. 12 — correct fork-join hello", result.render())
    assert result.score == result.max_score


def test_fig12b_no_fork_flagged_with_exact_problem(benchmark):
    def check():
        return HelloFunctionality("hello.no_fork", num_threads=1).run()

    result = benchmark(check)
    emit("Fig. 12(b) — root prints the greeting without forking", result.render())
    assert result.score == 0.0
    [outcome] = result.outcomes
    # "The exact problem is identified in an error message (line 3)."
    assert "no forked thread produced output" in outcome.message
    assert "must fork" in outcome.message


def test_fig12_thread_count_credit_split(benchmark):
    """80 % for the right count, 20 % for creating one or more threads."""

    def check():
        return HelloFunctionality("hello.wrong_count", num_threads=4).run()

    result = benchmark(check)
    emit(
        "Fig. 12 — wrong thread count earns the 20 % consolation credit",
        result.render(),
    )
    assert result.percent == pytest.approx(20.0)
    [outcome] = result.outcomes
    assert "4 forked threads were expected but 1" in outcome.message


def test_fig12_identical_output_different_verdicts(benchmark):
    """The forked and non-forked hellos print byte-identical output; only
    trace-based testing can tell them apart — the paper's founding
    observation (Fig. 1)."""

    def check_both():
        from repro.execution.runner import ProgramRunner

        runner = ProgramRunner()
        forked = runner.run("hello.correct", ["1"])
        direct = runner.run("hello.no_fork", ["1"])
        return forked, direct

    forked, direct = benchmark(check_both)
    emit(
        "Fig. 1 — concurrency-unaware output",
        f"forked output  : {forked.output!r}\n"
        f"direct output  : {direct.output!r}\n"
        f"forked workers : {len(forked.worker_threads)}\n"
        f"direct workers : {len(direct.worker_threads)}",
    )
    assert forked.output == direct.output
    assert len(forked.worker_threads) == 1
    assert len(direct.worker_threads) == 0
