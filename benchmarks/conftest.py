"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts
(tables, figures, or prose claims) and asserts its *shape* — who wins,
by roughly what factor — rather than absolute numbers, since the
substrate is a simulator rather than the authors' Java testbed.
"""

from __future__ import annotations

import pytest

import repro.workloads  # noqa: F401 - registers every workload variant
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RoundRobinPolicy, SerializedPolicy


@pytest.fixture
def round_robin_backend():
    backend = SimulationBackend(policy=RoundRobinPolicy())
    with use_backend(backend):
        yield backend


@pytest.fixture
def serialized_backend():
    backend = SimulationBackend(policy=SerializedPolicy())
    with use_backend(backend):
        yield backend


def emit(title: str, body: str) -> None:
    """Print a labelled reproduction artifact into the benchmark log."""
    bar = "=" * 70
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
