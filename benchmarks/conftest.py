"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts
(tables, figures, or prose claims) and asserts its *shape* — who wins,
by roughly what factor — rather than absolute numbers, since the
substrate is a simulator rather than the authors' Java testbed.
"""

from __future__ import annotations

import pytest

import repro.workloads  # noqa: F401 - registers every workload variant
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RoundRobinPolicy, SerializedPolicy


@pytest.fixture
def round_robin_backend():
    backend = SimulationBackend(policy=RoundRobinPolicy())
    with use_backend(backend):
        yield backend


@pytest.fixture
def serialized_backend():
    backend = SimulationBackend(policy=SerializedPolicy())
    with use_backend(backend):
        yield backend


def emit(title: str, body: str) -> None:
    """Print a labelled reproduction artifact into the benchmark log."""
    bar = "=" * 70
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


def merge_json_artifact(env_var: str, section: str, data: dict) -> None:
    """Merge one benchmark's measurements into a shared JSON artifact.

    When ``env_var`` names a path, read the JSON object there (if any),
    set ``data`` under the ``section`` key, and write it back — so the
    hot-path ablations can each contribute a section to one
    ``BENCH_hot_paths.json`` regardless of execution order.
    """
    import json
    import os

    path = os.environ.get(env_var)
    if not path:
        return
    document = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = {}
    document[section] = data
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
