"""Ablation — pre-forked worker pool vs cold-start subprocess grading.

Cold subprocess grading pays a full interpreter boot (plus the workload
registry import) per submission; the worker pool amortizes that over N
warm interpreters dispatched over a pipe protocol.  This ablation
grades the same synthetic class both ways and requires the pooled sweep
to be at least ``MIN_SPEEDUP``× faster end to end — the headline claim
behind ``grade --pool-size``.

The class is 200 submissions by default (the CI hot-paths job's
configuration); set ``POOL_BENCH_SUBMISSIONS`` to scale it down for a
quick local run.  Set ``HOT_PATHS_JSON=<path>`` to merge the
measurements into the shared hot-path artifact.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import emit, merge_json_artifact
from repro.execution.subprocess_runner import SubprocessRunner
from repro.execution.worker_pool import WorkerPool

#: The cheapest real workload: measured time is dominated by dispatch.
IDENTIFIER = "hello.correct"
ARGS = ["1"]

SUBMISSIONS = int(os.environ.get("POOL_BENCH_SUBMISSIONS", "200"))
JOBS = 4

#: The pooled sweep must beat cold-start by at least this factor.
MIN_SPEEDUP = 2.0


def _sweep(runner: SubprocessRunner, submissions: int) -> float:
    """Grade the synthetic class with JOBS concurrent workers."""
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=JOBS) as executor:
        futures = [
            executor.submit(runner.run, IDENTIFIER, ARGS)
            for _ in range(submissions)
        ]
        for future in futures:
            assert future.result().ok
    return time.perf_counter() - started


def test_ablation_pooled_grading_at_least_2x_faster_than_cold():
    cold = SubprocessRunner(timeout=60.0)
    cold.run(IDENTIFIER, ARGS)  # warm the OS page cache for both paths

    cold_seconds = _sweep(cold, SUBMISSIONS)

    with WorkerPool(JOBS) as pool:
        pooled = SubprocessRunner(timeout=60.0, pool=pool)
        pooled.run(IDENTIFIER, ARGS)  # first dispatch per worker is warm-up
        pooled_seconds = _sweep(pooled, SUBMISSIONS)
        assert pool.active_workers() == JOBS

    speedup = cold_seconds / pooled_seconds
    merge_json_artifact(
        "HOT_PATHS_JSON",
        "worker_pool",
        {
            "workload": {"identifier": IDENTIFIER, "args": ARGS},
            "submissions": SUBMISSIONS,
            "jobs": JOBS,
            "cold_seconds": cold_seconds,
            "pooled_seconds": pooled_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
    )
    emit(
        "Ablation — pre-forked worker pool vs cold-start grading",
        f"{SUBMISSIONS} submissions x {JOBS} jobs: cold {cold_seconds:.2f}s "
        f"({cold_seconds / SUBMISSIONS * 1e3:.1f}ms each), pooled "
        f"{pooled_seconds:.2f}s ({pooled_seconds / SUBMISSIONS * 1e3:.1f}ms "
        f"each) -> {speedup:.1f}x (bound {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"pooled grading only {speedup:.2f}x faster than cold-start "
        f"(cold {cold_seconds:.2f}s vs pooled {pooled_seconds:.2f}s)"
    )
