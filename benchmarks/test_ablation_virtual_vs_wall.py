"""Ablation 4 — virtual-clock vs wall-clock speedup measurement.

DESIGN.md §3 substitutes a virtual clock for wall-clock timing where the
GIL would otherwise make CPU-bound fork-join speedups unmeasurable.
This ablation quantifies the trade on the checker's own verdict
variable: the measured speedup across repeated independent measurements.

Shape asserted: the virtual-clock speedup is *exactly* repeatable
(zero spread), while the wall-clock (sleep-kernel) speedup, though
correct on average, carries run-to-run spread — the reason the paper
runs each configuration 10 times and totals them.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import emit
from repro.execution.timing import speedup, time_program
from repro.simulation.backend import last_makespan

REPEATS = 4


def measure(identifier: str, duration_of=None):
    values = []
    for _ in range(REPEATS):
        low = time_program(
            identifier, ["40", "1"], runs=1, duration_of=duration_of, warmup_runs=0
        )
        high = time_program(
            identifier, ["40", "4"], runs=1, duration_of=duration_of, warmup_runs=0
        )
        values.append(speedup(low, high))
    return values


def spread(values) -> float:
    return (max(values) - min(values)) / statistics.mean(values)


def test_ablation_virtual_clock_is_deterministic(benchmark):
    values = benchmark.pedantic(
        lambda: measure("primes.perf.sim", duration_of=lambda _e: last_makespan()),
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation 4 — virtual-clock speedup repeatability",
        f"speedups over {REPEATS} independent measurements: "
        + ", ".join(f"{v:.3f}" for v in values),
    )
    assert max(values) - min(values) == 0.0  # bit-for-bit repeatable


def test_ablation_wall_clock_has_spread(benchmark):
    values = benchmark.pedantic(
        lambda: measure("primes.perf.latency"), rounds=1, iterations=1
    )
    emit(
        "Ablation 4 — wall-clock speedup repeatability",
        f"speedups over {REPEATS} independent measurements: "
        + ", ".join(f"{v:.3f}" for v in values)
        + f"\nrelative spread {spread(values):.1%} "
        f"(virtual clock: 0.0%)",
    )
    # Correct on average (parallel sleeps) ...
    assert statistics.mean(values) > 1.5
    # ... but not exactly repeatable: single-run wall-clock measurements
    # jitter, which is why the checker totals multiple runs.
    assert max(values) - min(values) > 0.0
