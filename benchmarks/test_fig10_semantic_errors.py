"""F10 — Fig. 10: semantic problems pinpointed, 80 % awarded.

Fig. 10's trace has two semantic problems: the threads' execution is
serialized in thread order (dodging the synchronization the assignment
requires), and the load is imbalanced — every thread but one performs a
single iteration while one performs the rest.  The test run points out
both mistakes *and* all the aspects the submission got right, assigning
80 %.  We regenerate the run against the serialized submission.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.outcome import Aspect
from repro.graders import PrimesFunctionality
from repro.testfw.result import AspectStatus


def check_serialized(serialized_backend):
    checker = PrimesFunctionality("primes.serialized")
    return checker.check()


def test_fig10_serialized_and_imbalanced(benchmark, serialized_backend):
    report = benchmark(check_serialized, serialized_backend)
    emit("Fig. 10 — serialized + imbalanced submission", report.result.render())

    result = report.result
    assert result.score == 32.0
    assert result.percent == pytest.approx(80.0)

    failed = {o.aspect: o for o in result.failed_aspects()}
    assert set(failed) == {Aspect.INTERLEAVING, Aspect.LOAD_BALANCE}

    # Mistake 1: serialization, in thread order, with the paper's
    # explanation of why it matters.
    serial_message = failed[Aspect.INTERLEAVING].message
    assert "serialized in the order" in serial_message
    assert "synchronization" in serial_message

    # Mistake 2: imbalance — one thread does 4 iterations, others 1.
    balance_message = failed[Aspect.LOAD_BALANCE].message
    assert "imbalanced" in balance_message
    assert "performed 4" in balance_message

    # The run also indicates all aspects that are correct (Fig. 10's
    # lines 30-35): syntax, thread count, and all semantics passed.
    passed = {o.aspect for o in result.passed_aspects()}
    for aspect in (
        Aspect.PRE_FORK_SYNTAX,
        Aspect.FORK_SYNTAX,
        Aspect.POST_JOIN_SYNTAX,
        Aspect.THREAD_COUNT,
        Aspect.ITERATION_SEMANTICS,
        Aspect.POST_ITERATION_SEMANTICS,
        Aspect.POST_JOIN_SEMANTICS,
    ):
        assert aspect in passed
    # Nothing was skipped: syntax was clean so everything was checked.
    assert not [o for o in result.outcomes if o.status is AspectStatus.SKIPPED]


def test_fig10_trace_shape(benchmark, serialized_backend):
    report = benchmark(check_serialized, serialized_backend)
    trace = report.trace
    counts = sorted(w.iteration_count for w in trace.workers)
    emit(
        "Fig. 10 — per-thread iteration counts",
        f"iterations per thread: {counts} (fair would be [1, 2, 2, 2])",
    )
    # Each thread except one performs one iteration; one performs four.
    assert counts == [1, 1, 1, 4]
