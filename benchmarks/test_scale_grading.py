"""Scale benches: grading throughput and trace-volume scaling.

Not a paper artifact, but the operational questions an adopting course
staff asks first: how fast does one functionality check run (can it sit
behind an interactive UI / a submission hook?), how does checking cost
grow with trace volume, and how long does sweeping a whole class take.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.execution.runner import ProgramRunner
from repro.grading import grade_batch
from repro.graders import PrimesFunctionality
from repro.testfw.suite import TestSuite
from repro.workloads.primes import VARIANTS


def test_scale_single_check_latency(benchmark, round_robin_backend):
    """One full functionality check: run + structure + checks + score."""

    def check():
        return PrimesFunctionality("primes.correct").run()

    result = benchmark(check)
    assert result.percent == pytest.approx(100.0)
    mean = benchmark.stats.stats.mean
    emit(
        "Scale — single functionality check",
        f"mean {mean * 1000:.1f} ms per check (interactive-grade)",
    )
    assert mean < 1.0


@pytest.mark.parametrize("num_randoms", [7, 70, 350])
def test_scale_trace_volume(benchmark, num_randoms, round_robin_backend):
    """Checking cost vs trace size: 3 prints per iteration dominate."""

    def check():
        checker = PrimesFunctionality(
            "primes.correct", num_randoms=num_randoms, num_threads=4
        )
        return checker.run()

    result = benchmark(check)
    assert result.percent == pytest.approx(100.0)


def test_scale_class_sweep(benchmark, round_robin_backend):
    """A whole submission sweep (8 variants, one suite each)."""

    def sweep():
        gradebook, _live = grade_batch(
            lambda ident: TestSuite("primes", [PrimesFunctionality(ident)]),
            [v for v in VARIANTS],
        )
        return gradebook

    gradebook = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Scale — class sweep",
        gradebook.render(),
    )
    assert len(gradebook.students()) == len(VARIANTS)


def test_scale_raw_run_baseline(benchmark, round_robin_backend):
    """The tested program's own runtime, to separate run cost from
    checking cost in the rows above."""

    def run():
        return ProgramRunner().run("primes.correct", ["7", "4"])

    result = benchmark(run)
    assert result.ok
