"""Scale benches: grading throughput, trace volume, and crash recovery.

Not a paper artifact, but the operational questions an adopting course
staff asks first: how fast does one functionality check run (can it sit
behind an interactive UI / a submission hook?), how does checking cost
grow with trace volume, how long does sweeping a whole class take — and
does the sharded grading service really come back from a ``kill -9``
with the exact same gradebook at MOOC scale.

The headline bench grades a 10,000-submission synthetic class through
``GradingService`` three times: undisturbed, disturbed (one shard worker
SIGKILLed mid-batch plus a coordinator drain), and resumed.  The
disturbed + resumed gradebook must be byte-identical (modulo timestamps)
to the undisturbed one.  Timings and verification results are published
as ``BENCH_scale_grading.json`` (path override: ``SCALE_GRADING_JSON``;
class size override: ``SCALE_GRADING_CLASS_SIZE``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings

import pytest

from benchmarks.conftest import emit
from repro.execution.faults import ShardFaultProgram
from repro.execution.runner import ProgramRunner
from repro.grading import GradingService, grade_batch, plan_shards
from repro.graders import PrimesFunctionality
from repro.testfw.suite import TestSuite
from repro.workloads.primes import VARIANTS

#: Synthetic-class size for the sharded crash-recovery bench.
CLASS_SIZE = int(os.environ.get("SCALE_GRADING_CLASS_SIZE", "10000"))

#: Shards for the crash-recovery bench.
SHARDS = 4


def test_scale_single_check_latency(benchmark, round_robin_backend):
    """One full functionality check: run + structure + checks + score."""

    def check():
        return PrimesFunctionality("primes.correct").run()

    result = benchmark(check)
    assert result.percent == pytest.approx(100.0)
    mean = benchmark.stats.stats.mean
    emit(
        "Scale — single functionality check",
        f"mean {mean * 1000:.1f} ms per check (interactive-grade)",
    )
    assert mean < 1.0


@pytest.mark.parametrize("num_randoms", [7, 70, 350])
def test_scale_trace_volume(benchmark, num_randoms, round_robin_backend):
    """Checking cost vs trace size: 3 prints per iteration dominate."""

    def check():
        checker = PrimesFunctionality(
            "primes.correct", num_randoms=num_randoms, num_threads=4
        )
        return checker.run()

    result = benchmark(check)
    assert result.percent == pytest.approx(100.0)


def test_scale_class_sweep(benchmark, round_robin_backend):
    """A whole submission sweep (8 variants, one suite each)."""

    def sweep():
        gradebook, _live = grade_batch(
            lambda ident: TestSuite("primes", [PrimesFunctionality(ident)]),
            [v for v in VARIANTS],
        )
        return gradebook

    gradebook = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Scale — class sweep",
        gradebook.render(),
    )
    assert len(gradebook.students()) == len(VARIANTS)


def _normalized(book) -> str:
    """Canonical gradebook contents with timing fields zeroed."""
    payload = {}
    for student in book.students():
        history = []
        for record in book.submissions_of(student):
            data = record.to_dict()
            data["timestamp"] = 0.0
            data["elapsed"] = 0.0
            history.append(data)
        payload[student] = history
    return json.dumps(payload, sort_keys=True)


def test_scale_sharded_class_crash_recovery(tmp_path):
    """10,000 submissions, one shard SIGKILLed, a drain, a resume — and
    the merged gradebook must not be distinguishable from a calm run."""
    submissions = {
        f"student-{i:05d}": "hello.correct" for i in range(CLASS_SIZE)
    }
    warnings.simplefilter("ignore")

    started = time.perf_counter()
    calm = GradingService(
        "hello", workdir=tmp_path / "calm", shards=SHARDS,
        heartbeat_timeout=60.0,
    ).grade(dict(submissions))
    calm_seconds = time.perf_counter() - started
    assert len(calm.gradebook.students()) == CLASS_SIZE
    baseline = _normalized(calm.gradebook)

    # Disturbed run: SIGKILL shard 1 halfway through its slice, and
    # drain the coordinator partway through the batch.  Either, both,
    # or neither interruption may land before completion depending on
    # machine speed; the identity assertion must hold regardless.
    plan = plan_shards(submissions, SHARDS)
    # Kill early in the shard's slice so the SIGKILL demonstrably lands
    # (and is recovered from) before the later coordinator drain.
    fault = ShardFaultProgram(
        kind="kill-at-index", index=min(10, max(1, len(plan[1]) // 2)),
        shard=1,
    )
    workdir = tmp_path / "disturbed"
    service = GradingService(
        "hello", workdir=workdir, shards=SHARDS,
        heartbeat_timeout=60.0, faults={1: fault},
    )
    drain_after = max(1.0, calm_seconds / 2)
    timer = threading.Timer(drain_after, service.drain)
    timer.start()
    started = time.perf_counter()
    try:
        disturbed = service.grade(dict(submissions))
    finally:
        timer.cancel()
    disturbed_seconds = time.perf_counter() - started
    respawns = sum(s.respawns for s in disturbed.shards)

    # Resume on the same work directory finishes whatever the drain cut
    # off without regrading anything durable.
    started = time.perf_counter()
    resumed = GradingService(
        "hello", workdir=workdir, shards=SHARDS, heartbeat_timeout=60.0
    ).grade(dict(submissions))
    resume_seconds = time.perf_counter() - started
    final = _normalized(resumed.gradebook)

    identical = final == baseline
    artifact = {
        "class_size": CLASS_SIZE,
        "shards": SHARDS,
        "suite": "hello",
        "undisturbed_seconds": round(calm_seconds, 3),
        "disturbed_seconds": round(disturbed_seconds, 3),
        "resume_seconds": round(resume_seconds, 3),
        "submissions_per_second_undisturbed": round(
            CLASS_SIZE / calm_seconds, 1
        ),
        "shard_respawns": respawns,
        "drained": disturbed.drained,
        "interrupted_at_drain": len(disturbed.interrupted),
        "resumed_submissions": len(resumed.resumed),
        "gradebook_identical_modulo_timestamps": identical,
    }
    out = os.environ.get("SCALE_GRADING_JSON", "BENCH_scale_grading.json")
    with open(out, "w") as handle:
        json.dump(artifact, handle, indent=2)

    emit(
        "Scale — sharded crash recovery on a synthetic class",
        f"{CLASS_SIZE} submissions over {SHARDS} shards: "
        f"calm {calm_seconds:.1f}s "
        f"({CLASS_SIZE / calm_seconds:.0f} subs/s), disturbed "
        f"{disturbed_seconds:.1f}s (respawns {respawns}, drained "
        f"{disturbed.drained}, {len(disturbed.interrupted)} interrupted), "
        f"resume {resume_seconds:.1f}s "
        f"({len(resumed.resumed)} resumed); identical: {identical} "
        f"[artifact: {out}]",
    )
    assert identical, (
        "disturbed+resumed gradebook differs from the undisturbed run"
    )
    assert len(resumed.gradebook.students()) == CLASS_SIZE


def test_scale_raw_run_baseline(benchmark, round_robin_backend):
    """The tested program's own runtime, to separate run cost from
    checking cost in the rows above."""

    def run():
        return ProgramRunner().run("primes.correct", ["7", "4"])

    result = benchmark(run)
    assert result.ok
