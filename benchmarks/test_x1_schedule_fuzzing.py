"""X1 — §6 future work: influencing thread scheduling to catch races.

The paper's conclusions call for "techniques for influencing thread
scheduling to catch synchronization bugs".  This bench exercises our
implementation of that item: the schedule fuzzer reruns a functionality
checker under seeded random interleavings.  Claims asserted:

* a racy submission that passes under a benign (serialized) schedule is
  caught by the fuzzer with a high failing-schedule rate;
* the correct submission survives every fuzzed schedule;
* findings carry the seed, so a failing schedule is replayable.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.graders import OddsFunctionality, PiFunctionality, PrimesFunctionality
from repro.simulation import ScheduleFuzzer

SCHEDULES = 12


def fuzz(factory):
    return ScheduleFuzzer(factory, schedules=SCHEDULES).run()


def test_x1_racy_primes_caught(benchmark):
    report = benchmark.pedantic(
        lambda: fuzz(lambda: PrimesFunctionality("primes.racy")),
        rounds=1,
        iterations=1,
    )
    emit(
        "X1 — fuzzing the racy primes submission",
        f"{len(report.findings)}/{report.schedules_tried} schedules failed\n"
        + report.summary(),
    )
    assert report.bug_found
    assert report.failure_rate >= 0.5
    assert all(f.seed >= 0 for f in report.findings)
    assert any(
        "sum of primes found by each thread" in m
        for f in report.findings
        for m in f.messages
    )


def test_x1_racy_finding_replays_deterministically(benchmark):
    """A finding's seed reproduces the same failing verdict."""
    from repro.simulation.backend import SimulationBackend, use_backend
    from repro.simulation.scheduler import RandomPolicy

    report = fuzz(lambda: PrimesFunctionality("primes.racy"))
    seed = report.findings[0].seed

    def replay():
        with use_backend(SimulationBackend(policy=RandomPolicy(seed))):
            return PrimesFunctionality("primes.racy").run()

    first = benchmark.pedantic(replay, rounds=1, iterations=1)
    second_score = replay().score
    emit(
        "X1 — deterministic replay of failing seed",
        f"seed {seed}: score {first.score:g} twice in a row",
    )
    assert first.score == second_score
    assert first.score < first.max_score


def test_x1_correct_submissions_survive(benchmark):
    def fuzz_all_correct():
        return {
            "primes": fuzz(lambda: PrimesFunctionality("primes.correct")),
            "pi": fuzz(lambda: PiFunctionality("pi.correct")),
            "odds": fuzz(lambda: OddsFunctionality("odds.correct")),
        }

    reports = benchmark.pedantic(fuzz_all_correct, rounds=1, iterations=1)
    body = "\n".join(
        f"  {name}: {len(r.findings)}/{r.schedules_tried} schedules failed"
        for name, r in reports.items()
    )
    emit("X1 — correct submissions under fuzzing", body)
    for name, report in reports.items():
        assert not report.bug_found, name


def test_x1_racy_pi_and_odds_also_caught(benchmark):
    def fuzz_both():
        return (
            fuzz(lambda: PiFunctionality("pi.racy")),
            fuzz(lambda: OddsFunctionality("odds.racy")),
        )

    pi_report, odds_report = benchmark.pedantic(fuzz_both, rounds=1, iterations=1)
    emit(
        "X1 — fuzzing racy PI and odds submissions",
        f"pi: {pi_report.failure_rate:.0%} failing, "
        f"odds: {odds_report.failure_rate:.0%} failing",
    )
    assert pi_report.bug_found
    assert odds_report.bug_found
