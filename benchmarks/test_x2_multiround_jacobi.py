"""X2 — §6 future work: tracing an additional class of concurrent programs.

The paper's conclusions name "tracing additional classes of concurrent
programs" as future work.  This bench exercises our extension to
*iterative* (multi-round / barrier-style) fork-join — the Jacobi heat
relaxation workload — and shows the same pinpointing properties carry
over: correct solution at 100 %, each classic stencil mistake flagged by
the aspect that owns it, syntax-level structure errors gating semantics.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.outcome import Aspect
from repro.graders import JacobiFunctionality
from repro.testfw.result import AspectStatus

CASES = [
    ("jacobi.correct", 100.0, set()),
    ("jacobi.wrong_global_delta", None, {Aspect.POST_JOIN_SEMANTICS}),
    ("jacobi.in_place", None, {Aspect.ITERATION_SEMANTICS}),
]


def grade_all(round_robin_backend):
    return {
        identifier: JacobiFunctionality(identifier).run()
        for identifier, _p, _f in CASES
    }


def test_x2_multiround_scores_and_diagnoses(benchmark, round_robin_backend):
    results = benchmark.pedantic(
        grade_all, args=(round_robin_backend,), rounds=1, iterations=1
    )
    body = "\n".join(
        f"  {identifier:<28} {result.score:g}/{result.max_score:g}  "
        f"failed: {sorted(o.aspect for o in result.failed_aspects()) or '-'}"
        for identifier, result in results.items()
    )
    emit("X2 — multi-round fork-join (Jacobi) grading", body)

    for identifier, expected_percent, expected_failed in CASES:
        result = results[identifier]
        if expected_percent is not None:
            assert result.percent == pytest.approx(expected_percent), identifier
        failed = {o.aspect for o in result.failed_aspects()}
        assert expected_failed <= failed, identifier


def test_x2_structure_errors_gate_semantics(benchmark, round_robin_backend):
    def check():
        return JacobiFunctionality("jacobi.missing_round").run()

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    emit("X2 — round-structure error (one round too few)", result.render())
    statuses = {o.aspect: o.status for o in result.outcomes}
    assert statuses[Aspect.FORK_SYNTAX] is AspectStatus.FAILED
    assert statuses[Aspect.ITERATION_SEMANTICS] is AspectStatus.SKIPPED
    assert result.score < result.max_score


def test_x2_round_count_scales(benchmark, round_robin_backend):
    """The checker handles any round count the problem asks for."""

    def sweep():
        return {
            rounds: JacobiFunctionality(
                "jacobi.correct", num_rounds=rounds
            ).run().percent
            for rounds in (1, 2, 5)
        }

    percents = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "X2 — correct solution across round counts",
        "\n".join(f"  {r} rounds: {p:.0f}%" for r, p in percents.items()),
    )
    assert all(p == pytest.approx(100.0) for p in percents.values())
