"""F3/F4 — Figs. 3 & 4: root and worker trace shapes for primes.

Fig. 3 shows the root thread printing its input (the random numbers) and
final output (the total prime count); Fig. 4 shows a worker's
per-iteration trace of ``Index``/``Number``/``Is Prime``.  We run the
reference solution and assert the trace reproduces both shapes — same
property names, same line format, root/worker thread split as shown.
"""

from __future__ import annotations

import re

from benchmarks.conftest import emit
from repro.execution.runner import ProgramRunner

ROOT_LINE = re.compile(r"^Thread (\d+)->(Random Numbers|Total Num Primes):")
ITERATION_LINE = re.compile(r"^Thread (\d+)->(Index|Number|Is Prime):")
POST_ITERATION_LINE = re.compile(r"^Thread (\d+)->Num Primes:\d+$")


def run_primes(round_robin_backend):
    return ProgramRunner().run("primes.correct", ["7", "4"])


def test_fig3_root_trace(benchmark, round_robin_backend):
    result = benchmark(run_primes, round_robin_backend)
    lines = result.output.splitlines()
    emit(
        "Fig. 3 — root thread's input and final output",
        "\n".join([lines[0], lines[-1]]),
    )
    root_id = result.root_thread_id
    first, last = lines[0], lines[-1]
    assert first.startswith(f"Thread {root_id}->Random Numbers:[")
    assert re.match(rf"^Thread {root_id}->Total Num Primes:\d+$", last)
    # Both produced by the same (root) thread, as in the figure.
    assert ROOT_LINE.match(first).group(1) == ROOT_LINE.match(last).group(1)


def test_fig4_worker_iteration_trace(benchmark, round_robin_backend):
    result = benchmark(run_primes, round_robin_backend)
    worker_events = result.worker_events()
    # Pick the first worker's first iteration: three consecutive prints.
    first_worker = worker_events[0].thread
    stream = [e for e in worker_events if e.thread is first_worker][:3]
    emit("Fig. 4 — one worker iteration", "\n".join(e.raw_line for e in stream))

    assert [e.name for e in stream] == ["Index", "Number", "Is Prime"]
    worker_id = stream[0].thread_id
    assert worker_id != result.root_thread_id  # worker id differs from root
    for event in stream:
        assert event.raw_line.startswith(f"Thread {worker_id}->")
        assert ITERATION_LINE.match(event.raw_line)

    # Every worker line in the whole fork phase is one of the declared
    # iteration or post-iteration property prints.
    for event in worker_events:
        assert ITERATION_LINE.match(event.raw_line) or POST_ITERATION_LINE.match(
            event.raw_line
        ), event.raw_line
