"""X3 — §6 future work: trace generation by instrumenting code.

The paper proposes "automatically generat[ing] these traces by
instrumenting compiled code, thereby reducing testing requirements
students must follow while writing their code."  This bench exercises
our implementation (:mod:`repro.instrument`): a prime-counting solution
containing **zero** tracing calls is wrapped with instructor-declared
variable watchers and graded by the *unchanged* appendix checker.

Shapes asserted:

* the auto-traced solution scores 100 % — byte-for-byte the same event
  names and values as the hand-traced reference;
* the instrumentation cost (the thing the paper would have to pay at
  runtime) is visible in the benchmark table: compare the auto and hand
  rows.
"""

from __future__ import annotations

import inspect

import pytest

from benchmarks.conftest import emit
from repro.execution.runner import ProgramRunner
from repro.graders import PrimesFunctionality


def grade_auto(round_robin_backend):
    return PrimesFunctionality("primes.auto").run()


def test_x3_uninstrumented_solution_full_score(benchmark, round_robin_backend):
    result = benchmark(grade_auto, round_robin_backend)
    from repro.workloads.primes import uninstrumented

    source = inspect.getsource(uninstrumented._uninstrumented_main)
    emit(
        "X3 — auto-instrumented grading",
        f"student tracing calls in source: "
        f"{source.count('print_property')}\n" + result.render(),
    )
    assert "print_property" not in source
    assert result.percent == pytest.approx(100.0)


def test_x3_auto_trace_equals_hand_trace(benchmark, round_robin_backend):
    def run_auto():
        return ProgramRunner().run("primes.auto", ["7", "4"])

    auto = benchmark(run_auto)
    hand = ProgramRunner().run("primes.correct", ["7", "4"])
    emit(
        "X3 — trace equivalence",
        f"auto events: {len(auto.events)}, hand events: {len(hand.events)}",
    )
    assert [(e.name, e.value) for e in auto.events] == [
        (e.name, e.value) for e in hand.events
    ]


def test_x3_hand_traced_cost_baseline(benchmark, round_robin_backend):
    """The hand-traced run, for the instrumentation-overhead comparison."""

    def run_hand():
        return ProgramRunner().run("primes.correct", ["7", "4"])

    result = benchmark(run_hand)
    assert result.ok
