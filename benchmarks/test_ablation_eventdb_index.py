"""Ablation — indexed event queries vs linear scans at 100k events.

``EventDatabase`` answers ``events_named``/``events_between``/
``events_of`` from per-name and per-thread indexes plus dense-seq
slicing; the checkers issue these queries once per requirement per
submission, and on large traces the old full-log scans dominated
checking time.  This ablation replays a 100k-event log and requires
the indexed answers to beat the linear-scan references by at least
``MIN_SPEEDUP``× on a batch of selective queries.

Set ``HOT_PATHS_JSON=<path>`` to merge the measurements into the shared
hot-path artifact.
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import emit, merge_json_artifact
from repro.eventdb.database import EventDatabase
from repro.util.thread_registry import ThreadRegistry

EVENTS = 100_000
THREADS = 16
NAMES = 50
QUERIES = 200

#: Indexed queries must beat the linear scans by at least this factor.
MIN_SPEEDUP = 10.0


def _build_database() -> EventDatabase:
    db = EventDatabase(ThreadRegistry(first_id=0))
    threads = [threading.Thread(name=f"T{i}") for i in range(THREADS)]
    items = [
        (
            f"Name{i % NAMES}",
            i,
            f"Thread {i % THREADS}->Name{i % NAMES}:{i}",
            threads[i % THREADS],
            True,
        )
        for i in range(EVENTS)
    ]
    db.record_batch(items)
    return db


def _time(body) -> float:
    started = time.perf_counter()
    body()
    return time.perf_counter() - started


def test_ablation_indexed_queries_at_least_10x_faster():
    db = _build_database()
    events = db.snapshot()
    thread_of = {e.thread_id: e.thread for e in events}

    def indexed() -> None:
        for q in range(QUERIES):
            db.events_named(f"Name{q % NAMES}")
            lo = (q * 379) % (EVENTS - 1000)
            db.events_between(lo, lo + 999)
            db.events_of(thread_of[q % THREADS])

    def linear() -> None:
        for q in range(QUERIES):
            name = f"Name{q % NAMES}"
            [e for e in events if e.name == name]
            lo = (q * 379) % (EVENTS - 1000)
            hi = lo + 999
            [e for e in events if lo <= e.seq <= hi]
            thread = thread_of[q % THREADS]
            [e for e in events if e.thread is thread]

    # Correctness of the comparison: both sides answer identically.
    assert db.events_named("Name7") == [e for e in events if e.name == "Name7"]
    assert db.events_between(500, 1499) == events[500:1500]

    indexed()  # warm-up: touch the indexes once outside the timing
    indexed_seconds = _time(indexed)
    linear_seconds = _time(linear)

    speedup = linear_seconds / indexed_seconds
    merge_json_artifact(
        "HOT_PATHS_JSON",
        "eventdb_index",
        {
            "events": EVENTS,
            "threads": THREADS,
            "names": NAMES,
            "queries": QUERIES * 3,
            "linear_seconds": linear_seconds,
            "indexed_seconds": indexed_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
    )
    emit(
        "Ablation — indexed event queries vs linear scans",
        f"{QUERIES * 3} queries over {EVENTS} events: linear "
        f"{linear_seconds:.3f}s, indexed {indexed_seconds:.3f}s -> "
        f"{speedup:.0f}x (bound {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"indexed queries only {speedup:.1f}x faster than linear scans "
        f"(linear {linear_seconds:.3f}s vs indexed {indexed_seconds:.3f}s)"
    )
