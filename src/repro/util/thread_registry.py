"""Stable small integer identities for threads observed during a trace.

The paper's infrastructure keeps the *actual* ``Thread`` object with every
trace event so that a tested program "cannot fool the infrastructure" by
printing a wrong thread id.  Java threads already carry small numeric ids;
CPython's :func:`threading.get_ident` values are large and may be reused
after a thread dies, so this registry assigns its own stable, small,
monotonically increasing ids the first time a thread produces output.

Ids deliberately start above 20 so that traces look like the paper's
figures (``Thread 23->Random Numbers:...``) and so they are visually
distinct from iteration indices in student-facing output.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = ["ThreadRegistry", "FIRST_THREAD_ID"]

#: First id handed out by a fresh registry.  Matches the flavour of the
#: paper's example traces, where the root thread is e.g. ``Thread 23``.
FIRST_THREAD_ID = 23


class ThreadRegistry:
    """Assign stable small ids to :class:`threading.Thread` objects.

    The registry is thread-safe: any thread may ask for its own (or another
    thread's) id concurrently.  Registration order is preserved and
    queryable, which the event database uses to report threads in
    first-output order.
    """

    def __init__(self, first_id: int = FIRST_THREAD_ID) -> None:
        self._lock = threading.Lock()
        self._next_id = first_id
        self._ids: Dict[int, int] = {}
        self._threads: Dict[int, threading.Thread] = {}
        self._order: List[threading.Thread] = []

    def id_for(self, thread: Optional[threading.Thread] = None) -> int:
        """Return the registry id for *thread* (default: the calling thread).

        The first call for a given thread registers it; subsequent calls
        return the same id.
        """
        if thread is None:
            thread = threading.current_thread()
        key = id(thread)
        with self._lock:
            existing = self._ids.get(key)
            if existing is not None:
                return existing
            assigned = self._next_id
            self._next_id += 1
            self._ids[key] = assigned
            self._threads[assigned] = thread
            self._order.append(thread)
            return assigned

    def peek_id(self, thread: Optional[threading.Thread] = None) -> Optional[int]:
        """Return *thread*'s id without registering it, or ``None``.

        Read-only counterpart of :meth:`id_for` for query paths that must
        not grow the registry (looking up a thread that never printed
        should not mint it an id).
        """
        if thread is None:
            thread = threading.current_thread()
        with self._lock:
            return self._ids.get(id(thread))

    def thread_for(self, thread_id: int) -> threading.Thread:
        """Return the thread object registered under *thread_id*.

        Raises :class:`KeyError` for ids this registry never assigned.
        """
        with self._lock:
            return self._threads[thread_id]

    def known_threads(self) -> List[threading.Thread]:
        """All registered threads, in first-registration order."""
        with self._lock:
            return list(self._order)

    def known_ids(self) -> List[int]:
        """All assigned ids, in assignment order."""
        with self._lock:
            return sorted(self._threads)

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def __contains__(self, thread: threading.Thread) -> bool:
        with self._lock:
            return id(thread) in self._ids
