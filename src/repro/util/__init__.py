"""Dependency-free utilities shared by the tracing and event-db layers."""

from repro.util.thread_registry import FIRST_THREAD_ID, ThreadRegistry

__all__ = ["ThreadRegistry", "FIRST_THREAD_ID"]
