"""Virtual time for deterministic, GIL-independent speedup measurement.

CPython's GIL serialises pure-Python compute, so a *wall-clock* speedup
check of a CPU-bound fork-join workload can fail even for a perfectly
parallel solution.  The virtual clock models the time a real multi-core
machine would take: each thread accrues the declared cost of the work it
performs, and the fork-join makespan is

    root's own cost  +  max over workers of that worker's cost

— the critical path of the fork-join DAG.  Perfectly balanced work over
``t`` workers therefore yields a virtual speedup approaching ``t``, while
a serialized schedule yields none, which is exactly the distinction the
performance checker must grade.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["VirtualClock"]


class VirtualClock:
    """Accumulates per-thread virtual costs and computes the makespan."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._costs: Dict[int, float] = {}
        self._root_key: Optional[int] = None

    def _key(self, thread: Optional[threading.Thread]) -> int:
        return id(thread if thread is not None else threading.current_thread())

    def set_root(self, thread: Optional[threading.Thread] = None) -> None:
        """Mark *thread* (default: caller) as the fork-join root."""
        with self._lock:
            self._root_key = self._key(thread)
            self._costs.setdefault(self._root_key, 0.0)

    def charge(self, cost: float, thread: Optional[threading.Thread] = None) -> None:
        """Accrue *cost* virtual seconds to *thread* (default: caller)."""
        if cost < 0:
            raise ValueError("virtual cost must be non-negative")
        key = self._key(thread)
        with self._lock:
            self._costs[key] = self._costs.get(key, 0.0) + cost

    def cost_of(self, thread: Optional[threading.Thread] = None) -> float:
        key = self._key(thread)
        with self._lock:
            return self._costs.get(key, 0.0)

    def serial_total(self) -> float:
        """Total work: virtual time a single-threaded execution needs."""
        with self._lock:
            return sum(self._costs.values())

    def makespan(self) -> float:
        """Critical-path time of the fork-join execution.

        Root cost plus the maximum worker cost.  When no root was marked
        (a degenerate use), the longest single thread is the critical
        path.
        """
        with self._lock:
            if self._root_key is None:
                return max(self._costs.values(), default=0.0)
            root_cost = self._costs.get(self._root_key, 0.0)
            worker_costs = [
                cost for key, cost in self._costs.items() if key != self._root_key
            ]
            return root_cost + max(worker_costs, default=0.0)

    def worker_costs(self) -> Dict[int, float]:
        with self._lock:
            return {
                key: cost
                for key, cost in self._costs.items()
                if key != self._root_key
            }

    def reset(self) -> None:
        with self._lock:
            self._costs.clear()
            self._root_key = None
