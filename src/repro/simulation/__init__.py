"""Deterministic concurrency substrate: scheduling control + virtual time.

Extends the paper's infrastructure with (a) the future-work item of
influencing thread scheduling to catch synchronization bugs, and (b) a
virtual clock so performance testing of CPU-bound fork-join code works
under CPython's GIL (DESIGN.md §3).
"""

from repro.simulation.backend import (
    ConcurrencyBackend,
    SimulationBackend,
    ThreadingBackend,
    current_backend,
    last_makespan,
    record_makespan,
    use_backend,
)
from repro.simulation.clock import VirtualClock
from repro.simulation.fuzzer import FuzzFinding, FuzzReport, ScheduleFuzzer
from repro.simulation.scheduler import (
    CooperativeScheduler,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulePolicy,
    SerializedPolicy,
)
from repro.simulation.workload_model import (
    UNIT_COST_MODEL,
    CostModel,
    trial_division_cost,
)

__all__ = [
    "ConcurrencyBackend",
    "ThreadingBackend",
    "SimulationBackend",
    "current_backend",
    "use_backend",
    "last_makespan",
    "record_makespan",
    "VirtualClock",
    "CooperativeScheduler",
    "SchedulePolicy",
    "RoundRobinPolicy",
    "SerializedPolicy",
    "RandomPolicy",
    "ScheduleFuzzer",
    "FuzzReport",
    "FuzzFinding",
    "CostModel",
    "UNIT_COST_MODEL",
    "trial_division_cost",
]
