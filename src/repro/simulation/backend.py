"""Concurrency backends: one workload source, three execution regimes.

Tested programs written against this tiny API — ``spawn``, ``join_all``,
``checkpoint(cost)`` — run unchanged on:

* :class:`ThreadingBackend` — plain ``threading`` (the default; the
  regime the paper's Java programs use);
* :class:`SimulationBackend` — real threads gated by the cooperative
  scheduler with a chosen interleaving policy, accruing *virtual* cost on
  the :class:`~repro.simulation.clock.VirtualClock`.  Deterministic
  interleavings for functionality testing; deterministic speedups for
  performance testing despite the GIL.

The ambient backend is installed with :func:`use_backend`; workloads call
:func:`current_backend`.  This is the one deliberate extension beyond the
paper's Java infrastructure, motivated in DESIGN.md §3 (Python cannot get
wall-clock speedup from CPU-bound threads).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.simulation.clock import VirtualClock
from repro.simulation.scheduler import CooperativeScheduler, SchedulePolicy

__all__ = [
    "ConcurrencyBackend",
    "ThreadingBackend",
    "SimulationBackend",
    "current_backend",
    "use_backend",
]


class ConcurrencyBackend:
    """Base backend: plain threading semantics."""

    def spawn(self, target: Callable[[], None], name: str = "") -> threading.Thread:
        """Create (unstarted) a worker thread running *target*."""
        return threading.Thread(target=target, name=name or None)

    def start_all(self, threads: List[threading.Thread]) -> None:
        for thread in threads:
            thread.start()

    def join_all(self, threads: List[threading.Thread]) -> None:
        for thread in threads:
            thread.join()

    def checkpoint(self, cost: float = 0.0) -> None:
        """A scheduling point with *cost* units of work just performed.

        Plain threading ignores both aspects; subclasses may gate
        execution and/or charge a virtual clock.
        """

    def charge_root(self, cost: float) -> None:
        """Accrue root-thread (serial section) cost; no-op here."""

    def lock(self):
        """A mutual-exclusion lock appropriate for this backend.

        Plain ``threading.Lock`` here; the controlled-scheduling backend
        returns an instrumented lock whose acquire/release are yield
        points, so lock-protected workloads stay explorable without
        deadlocking the serialized schedule.
        """
        return threading.Lock()


class ThreadingBackend(ConcurrencyBackend):
    """The default backend: free-running OS threads.

    ``checkpoint`` sleeps a sliver so that short course workloads (a
    handful of iterations) reliably overlap their output the way long
    real workloads do; without it a worker can finish its whole loop
    within one GIL quantum and the trace would serialize by accident.
    """

    def __init__(self, yield_sleep: float = 0.0005) -> None:
        self.yield_sleep = yield_sleep

    def checkpoint(self, cost: float = 0.0) -> None:
        if self.yield_sleep:
            time.sleep(self.yield_sleep)


class SimulationBackend(ConcurrencyBackend):
    """Cooperatively scheduled threads with a virtual clock.

    ``policy`` chooses the interleaving (round-robin by default); the
    clock's :meth:`~repro.simulation.clock.VirtualClock.makespan` after a
    run is the simulated fork-join duration.
    """

    def __init__(self, policy: Optional[SchedulePolicy] = None) -> None:
        self.scheduler = CooperativeScheduler(policy)
        self.clock = VirtualClock()
        self._spawned = 0
        self._started_count = 0
        self._lock = threading.Lock()

    def spawn(self, target: Callable[[], None], name: str = "") -> threading.Thread:
        scheduler = self.scheduler

        def gated() -> None:
            scheduler.enroll()
            try:
                target()
            finally:
                scheduler.retire()

        with self._lock:
            self._spawned += 1
        return threading.Thread(target=gated, name=name or None)

    def start_all(self, threads: List[threading.Thread]) -> None:
        self.clock.set_root()
        for thread in threads:
            thread.start()
        # Cumulative count: programs that start workers in several batches
        # (including the serialized buggy pattern) must each time wait for
        # the new workers to enroll before the gate re-opens.
        with self._lock:
            self._started_count += len(threads)
            expected = self._started_count
        self.scheduler.start(expected_workers=expected)

    def checkpoint(self, cost: float = 0.0) -> None:
        if cost:
            self.clock.charge(cost)
        self.scheduler.checkpoint()

    def charge_root(self, cost: float) -> None:
        self.clock.charge(cost)

    def makespan(self) -> float:
        return self.clock.makespan()

    def virtual_speedup_baseline(self) -> float:
        """Virtual time a serial execution of the same work would take."""
        return self.clock.serial_total()


_default_backend: ConcurrencyBackend = ThreadingBackend()

#: Mailbox holding the most recent simulation makespan, readable by the
#: performance checker's ``duration_source`` after each run.  Runs are
#: strictly serialized by the trace session, so one slot suffices.
_last_makespan: List[float] = [0.0]


def current_backend() -> ConcurrencyBackend:
    """The ambient concurrency backend workloads run against."""
    return _default_backend


@contextmanager
def use_backend(backend: ConcurrencyBackend) -> Iterator[ConcurrencyBackend]:
    """Install *backend* as the ambient backend for this thread's scope.

    The backend is stored in a plain module slot (not thread-local) for
    the duration, because the tested program runs on its own root thread
    and must observe the harness's choice.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = backend
    try:
        yield backend
    finally:
        if isinstance(backend, SimulationBackend):
            _last_makespan[0] = backend.makespan()
        _default_backend = previous


def last_makespan() -> float:
    """Makespan recorded by the most recent simulation-backend run."""
    return _last_makespan[0]


def record_makespan(value: float) -> None:
    """Publish a run's virtual makespan for the performance checker."""
    _last_makespan[0] = value
