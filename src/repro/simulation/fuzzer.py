"""Schedule fuzzing: hunt synchronization bugs by varying interleavings.

Implements the paper's future-work item of "incorporating techniques for
influencing thread scheduling to catch synchronization bugs".  A racy
fork-join program may pass a functionality test under the schedule the OS
happened to produce; the fuzzer reruns the *same* functionality checker
under many seeded random interleavings (via the simulation backend) and
reports every schedule whose trace failed a check — typically the
post-join semantics, where a lost update surfaces as a total that is not
the sum of the per-thread results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.checker import AbstractForkJoinChecker
from repro.simulation.backend import SimulationBackend, use_backend
from repro.simulation.scheduler import RandomPolicy
from repro.testfw.result import TestResult

__all__ = ["FuzzFinding", "FuzzReport", "ScheduleFuzzer"]


@dataclass
class FuzzFinding:
    """One schedule under which the checker found an error."""

    seed: int
    score: float
    max_score: float
    failed_aspects: List[str]
    messages: List[str]


@dataclass
class FuzzReport:
    """Aggregate result of a fuzzing campaign."""

    schedules_tried: int
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def bug_found(self) -> bool:
        return bool(self.findings)

    @property
    def failure_rate(self) -> float:
        if not self.schedules_tried:
            return 0.0
        return len(self.findings) / self.schedules_tried

    def summary(self) -> str:
        if not self.bug_found:
            return (
                f"no failing schedule in {self.schedules_tried} tried; the "
                f"program may still be racy - fuzzing can only refute, not "
                f"prove, synchronization correctness"
            )
        first = self.findings[0]
        return (
            f"{len(self.findings)}/{self.schedules_tried} schedules failed; "
            f"first failing seed {first.seed}: "
            + "; ".join(first.messages[:2])
        )


class ScheduleFuzzer:
    """Rerun a functionality checker under many seeded interleavings."""

    def __init__(
        self,
        checker_factory: Callable[[], AbstractForkJoinChecker],
        *,
        schedules: int = 25,
        first_seed: int = 0,
    ) -> None:
        if schedules < 1:
            raise ValueError("schedules must be >= 1")
        self._factory = checker_factory
        self.schedules = schedules
        self.first_seed = first_seed

    def _failed(self, result: TestResult) -> Optional[FuzzFinding]:
        failed = result.failed_aspects()
        if not failed and not result.fatal:
            return None
        messages = [o.message for o in failed if o.message]
        if result.fatal:
            messages.insert(0, result.fatal)
        return FuzzFinding(
            seed=-1,
            score=result.score,
            max_score=result.max_score,
            failed_aspects=[o.aspect for o in failed],
            messages=messages,
        )

    def run(self) -> FuzzReport:
        report = FuzzReport(schedules_tried=self.schedules)
        for seed in range(self.first_seed, self.first_seed + self.schedules):
            backend = SimulationBackend(policy=RandomPolicy(seed))
            checker = self._factory()
            with use_backend(backend):
                result = checker.run_safely()
            finding = self._failed(result)
            if finding is not None:
                finding.seed = seed
                report.findings.append(finding)
        return report
