"""Cost models for simulated workloads.

Performance testing needs work whose duration is *predictable per unit*:
the simulation backend charges each unit's cost to the virtual clock, so
a workload's virtual duration is exactly its cost-model total along the
critical path.  The models here give per-item costs for the three
workshop problems; they are deliberately simple (constant or size-linear)
because the checker grades speedup *ratios*, which constants preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "UNIT_COST_MODEL", "trial_division_cost"]


@dataclass(frozen=True)
class CostModel:
    """Virtual cost accounting for one problem's work items.

    ``per_item`` is the baseline cost of processing one item (one random
    number, one Monte-Carlo dart); ``per_unit_size`` adds size-dependent
    cost for algorithms whose per-item work grows with the item (trial
    division grows with sqrt(n)).
    """

    per_item: float = 1.0
    per_unit_size: float = 0.0

    def item_cost(self, size: float = 0.0) -> float:
        return self.per_item + self.per_unit_size * size


#: Every item costs one virtual unit: the right model for Monte-Carlo
#: darts and odd/even checks, whose per-item work is constant.
UNIT_COST_MODEL = CostModel(per_item=1.0)


def trial_division_cost(n: int, *, scale: float = 0.01) -> float:
    """Virtual cost of a trial-division primality check of *n*.

    Proportional to the number of candidate divisors examined, i.e.
    ``sqrt(n)``; *scale* converts divisor-checks to virtual seconds.
    """
    if n < 2:
        return scale
    return scale * max(1.0, float(n) ** 0.5)
