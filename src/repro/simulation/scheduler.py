"""Cooperative scheduler: deterministic control of thread interleaving.

The paper's future-work section calls for "techniques for influencing
thread scheduling to catch synchronization bugs"; this module supplies
them.  Worker threads run as real ``threading.Thread`` objects but yield
control at *checkpoints*; the scheduler grants execution to exactly one
worker between checkpoints, choosing the next worker by a pluggable
:class:`SchedulePolicy`.  Round-robin forces tight interleaving,
``SerializedPolicy`` forces the fully serialized schedule Fig. 10 flags,
and :class:`RandomPolicy` (seeded) drives the race fuzzer.

Only worker threads participate; the root thread runs free (it is
blocked in ``join`` for the whole fork phase in a correct program).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Protocol

__all__ = [
    "SchedulePolicy",
    "RoundRobinPolicy",
    "SerializedPolicy",
    "RandomPolicy",
    "CooperativeScheduler",
]


class SchedulePolicy(Protocol):
    """Chooses which ready worker runs next."""

    def choose(self, ready: List[int], current: Optional[int]) -> int:
        """Pick one key from *ready* (non-empty); *current* is the worker
        that just yielded, or None at the first grant."""


class RoundRobinPolicy:
    """Cycle through workers in registration order: maximal interleaving."""

    def choose(self, ready: List[int], current: Optional[int]) -> int:
        if current is None or current not in ready:
            return ready[0]
        index = ready.index(current)
        return ready[(index + 1) % len(ready)]


class SerializedPolicy:
    """Let each worker run to completion before the next starts."""

    def choose(self, ready: List[int], current: Optional[int]) -> int:
        if current is not None and current in ready:
            return current
        return ready[0]


class RandomPolicy:
    """Seeded random choice: the schedule fuzzer's engine."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def choose(self, ready: List[int], current: Optional[int]) -> int:
        return self._rng.choice(ready)


class CooperativeScheduler:
    """Token-passing gate over a set of registered worker threads.

    Lifecycle per worker: ``enroll()`` once (blocks until the scheduler
    starts it), ``checkpoint()`` at every scheduling point, ``retire()``
    on exit.  The scheduler begins granting when :meth:`start` is called
    — normally right after the root has forked all workers — so the
    policy sees the full ready set from the first decision.
    """

    def __init__(self, policy: Optional[SchedulePolicy] = None) -> None:
        self._policy = policy if policy is not None else RoundRobinPolicy()
        self._cv = threading.Condition()
        #: Currently enrolled (live, unretired) worker keys.  Retired
        #: workers are removed immediately: ``id()`` values of dead thread
        #: objects can be recycled by the allocator, so keeping stale keys
        #: would make a later worker collide with a finished one.
        self._enrolled: List[int] = []
        #: Total enrollments ever; what ``start(expected_workers)`` waits
        #: on, so batched start/join patterns work.
        self._total_enrolled = 0
        self._granted: Optional[int] = None
        self._started = False

    # -- worker side ----------------------------------------------------
    def _me(self) -> int:
        return id(threading.current_thread())

    def enroll(self) -> None:
        me = self._me()
        with self._cv:
            if me in self._enrolled:
                raise RuntimeError("thread enrolled twice")
            self._enrolled.append(me)
            self._total_enrolled += 1
            self._cv.notify_all()
            self._cv.wait_for(lambda: self._started and self._granted == me)

    def checkpoint(self) -> None:
        """Yield control; return when this thread is granted again."""
        me = self._me()
        with self._cv:
            if me not in self._enrolled:
                # Unenrolled threads (the root) pass through untouched.
                return
            self._grant_next(current=me)
            self._cv.wait_for(lambda: self._granted == me)

    def retire(self) -> None:
        me = self._me()
        with self._cv:
            if me not in self._enrolled:
                return
            self._enrolled.remove(me)
            self._grant_next(current=me)

    # -- root side -------------------------------------------------------
    def start(self, expected_workers: Optional[int] = None) -> None:
        """Open the gate; optionally wait until *expected_workers* threads
        have ever enrolled (a cumulative count, so programs that start
        workers in several batches keep working)."""
        with self._cv:
            if expected_workers is not None:
                self._cv.wait_for(lambda: self._total_enrolled >= expected_workers)
            self._started = True
            self._grant_next(current=None)

    # -- internals --------------------------------------------------------
    def _ready(self) -> List[int]:
        return list(self._enrolled)

    def _grant_next(self, current: Optional[int]) -> None:
        """Must hold the condition lock."""
        ready = self._ready()
        if not ready:
            self._granted = None
            self._cv.notify_all()
            return
        self._granted = self._policy.choose(ready, current)
        self._cv.notify_all()
