"""Content-hash deduplication of byte-identical submissions.

At class scale the same program text is graded many times: students
submit the starter file untouched, copy a classmate, or resubmit the
same bytes under a new attempt.  "Generating Representative Executions"
(PAPERS.md) motivates never re-running equivalent work; for grading,
the cheapest sound equivalence is *byte identity* — two submissions
with the same sha256 must receive the same grade, so one of them is
graded as the **representative** and the result fans out to the rest as
cloned records (distinct submission ids, shared outcome).

The fan-out is journal- and resume-safe: every clone is journaled as
its own entry the moment the representative resolves, so a resumed
batch sees clones as ordinary completed students.  Watchdog and
infra outcomes fan out identically — a deadline kill on the
representative stamps every copy of those bytes as a timeout, which is
what grading them individually would have concluded too.

Obs metrics: ``dedup.groups`` counts groups with at least one
duplicate, ``dedup.duplicates_skipped`` the grading runs avoided.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Tuple

from repro.grading.records import SubmissionRecord

__all__ = ["submission_digest", "group_submissions", "clone_record"]


def submission_digest(identifier: str) -> str:
    """Content hash of one submission identifier.

    A ``.py`` file path (the real-student-file case) hashes the file
    *bytes*, so renamed copies of the same program collapse into one
    group.  Any other identifier — a registered workload name or a
    dotted module path — hashes the identifier string itself: distinct
    names stay distinct, equal names collapse.  An unreadable file
    falls back to the string form, so a broken path still grades (and
    fails) individually per spelling.
    """
    if identifier.endswith(".py") and os.path.isfile(identifier):
        try:
            with open(identifier, "rb") as handle:
                return hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            pass
    return hashlib.sha256(("id:" + identifier).encode("utf-8")).hexdigest()


def group_submissions(
    pending: List[Tuple[str, str]],
) -> Tuple[List[Tuple[str, str]], Dict[str, List[Tuple[str, str]]]]:
    """Split (student, identifier) pairs into representatives and clones.

    Returns ``(representatives, clones)`` where *representatives*
    preserves input order with one entry per distinct digest (the first
    student to submit those bytes), and *clones* maps a representative's
    student name to the later (student, identifier) pairs sharing its
    digest, also in input order.
    """
    representatives: List[Tuple[str, str]] = []
    clones: Dict[str, List[Tuple[str, str]]] = {}
    by_digest: Dict[str, str] = {}
    for student, identifier in pending:
        digest = submission_digest(identifier)
        representative = by_digest.get(digest)
        if representative is None:
            by_digest[digest] = student
            representatives.append((student, identifier))
        else:
            clones.setdefault(representative, []).append((student, identifier))
    return representatives, clones


def clone_record(record: SubmissionRecord, student: str) -> SubmissionRecord:
    """A deep copy of *record* re-attributed to *student*.

    Round-trips through the dict form so the clone shares no mutable
    state with the representative's record (gradebooks mutate
    ``record.suite`` in place).
    """
    data = record.to_dict()
    data["student"] = student
    return SubmissionRecord.from_dict(data)
