"""Exports: Gradescope results, markdown reports, and CSV gradebooks.

The paper's students "can simply submit their solution to Gradescope for
grading" (§4.1); this module writes the ``results.json`` document the
Gradescope autograder harness consumes, built from the same scored
results the interactive UI shows.  A markdown renderer covers the other
common hand-off: pasting a legible per-student or whole-class report
into an LMS or email.  The CSV renderer is the bulk-upload format most
LMS gradebooks import directly.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.grading.gradebook import Gradebook
from repro.grading.records import SubmissionRecord
from repro.testfw.result import AspectStatus, SuiteResult, TestResult

__all__ = [
    "gradescope_document",
    "write_gradescope_results",
    "suite_result_markdown",
    "gradebook_markdown",
    "gradebook_csv",
    "write_gradebook_csv",
]

#: Gradescope visibility for per-test entries.
_DEFAULT_VISIBILITY = "visible"


def _test_entry(result: TestResult) -> Dict[str, Any]:
    lines: List[str] = []
    if result.fatal:
        lines.append(f"FATAL: {result.fatal}")
    for outcome in result.outcomes:
        lines.append(outcome.render())
    return {
        "name": result.test_name,
        "score": round(result.score, 4),
        "max_score": round(result.max_score, 4),
        "status": "passed" if result.passed else "failed",
        "output": "\n".join(lines),
        "visibility": _DEFAULT_VISIBILITY,
    }


def gradescope_document(
    result: SuiteResult, *, execution_time: Optional[float] = None
) -> Dict[str, Any]:
    """The ``results.json`` payload for one submission's suite run."""
    document: Dict[str, Any] = {
        "score": round(result.score, 4),
        "tests": [_test_entry(r) for r in result.results],
    }
    if execution_time is not None:
        document["execution_time"] = round(execution_time, 3)
    return document


def write_gradescope_results(
    result: SuiteResult,
    path: Path | str,
    *,
    execution_time: Optional[float] = None,
) -> Path:
    """Write the Gradescope document; returns the written path."""
    target = Path(path)
    target.write_text(
        json.dumps(gradescope_document(result, execution_time=execution_time), indent=2)
    )
    return target


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------

_STATUS_BADGES = {
    AspectStatus.PASSED.value: "PASS",
    AspectStatus.FAILED.value: "FAIL",
    AspectStatus.SKIPPED.value: "skip",
}


def suite_result_markdown(result: SuiteResult, *, student: str = "") -> str:
    """A per-submission markdown report with one table per test."""
    title = f"## {result.suite_name}"
    if student:
        title += f" — {student}"
    lines = [
        title,
        "",
        f"**Total: {result.score:g} / {result.max_score:g} "
        f"({result.percent:.0f}%)**",
        "",
    ]
    for test in result.results:
        lines.append(f"### {test.test_name}: {test.score:g} / {test.max_score:g}")
        lines.append("")
        if test.fatal:
            lines.append(f"> **FATAL** — {test.fatal}")
            lines.append("")
            continue
        lines.append("| requirement | status | points | message |")
        lines.append("|---|---|---|---|")
        for outcome in test.outcomes:
            badge = _STATUS_BADGES.get(outcome.status.value, outcome.status.value)
            message = outcome.message.replace("|", "\\|") or "—"
            lines.append(
                f"| {outcome.aspect} | {badge} | "
                f"{outcome.points_earned:g}/{outcome.points_possible:g} | "
                f"{message} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def gradebook_markdown(
    gradebook: Gradebook,
    *,
    timings: Optional[Dict[str, Dict[str, Any]]] = None,
) -> str:
    """A class summary table, best submission per student.

    ``timings`` (student → ``{"duration": seconds, "attempts": n}``, as
    produced by :func:`repro.obs.submission_timings` from a grading
    run's obs dump) adds a grading-time column to each row.
    """
    header = "| student | best | latest | submissions |"
    divider = "|---|---|---|---|"
    if timings is not None:
        header += " grading time |"
        divider += "---|"
    lines = [
        f"## Gradebook — {gradebook.suite}",
        "",
        f"Class mean (best submissions): **{gradebook.mean_percent():.1f}%**",
        "",
        header,
        divider,
    ]
    for student in gradebook.students():
        best = gradebook.best(student)
        latest = gradebook.latest(student)
        history = gradebook.submissions_of(student)
        assert best is not None and latest is not None
        row = (
            f"| {student} | {best.percent:.0f}% | {latest.percent:.0f}% | "
            f"{len(history)} |"
        )
        if timings is not None:
            timing = timings.get(student)
            cell = (
                f"{timing['duration']:.2f}s" if timing is not None else "—"
            )
            row += f" {cell} |"
        lines.append(row)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

def gradebook_csv(gradebook: Gradebook) -> str:
    """The gradebook as CSV text — the LMS bulk-upload format.

    One row per student: best/latest scores and percentages, submission
    count, the latest failure-taxonomy kind, and the failing schedule
    seed when the latest grade is racy (so the CSV alone carries enough
    to replay the student's race with ``explore --seed``).  Race-aware
    grades add their three-way ``concurrency_verdict``, the distinct
    race count, and the racing pair labels.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        [
            "student",
            "best_score",
            "max_score",
            "best_percent",
            "latest_percent",
            "submissions",
            "failure_kind",
            "schedule_seed",
            "interleavings_failing",
            "interleavings_total",
            "concurrency_verdict",
            "race_count",
            "race_pairs",
        ]
    )
    for student in gradebook.students():
        best = gradebook.best(student)
        latest = gradebook.latest(student)
        assert best is not None and latest is not None
        writer.writerow(
            [
                student,
                f"{best.score:g}",
                f"{best.max_score:g}",
                f"{best.percent:.1f}",
                f"{latest.percent:.1f}",
                len(gradebook.submissions_of(student)),
                latest.failure_kind,
                "" if latest.schedule_seed is None else latest.schedule_seed,
                ""
                if latest.interleavings_failing is None
                else latest.interleavings_failing,
                ""
                if latest.interleavings_total is None
                else latest.interleavings_total,
                latest.concurrency_verdict,
                latest.race_count if latest.race_count else "",
                "; ".join(latest.race_pairs),
            ]
        )
    return buffer.getvalue()


def write_gradebook_csv(gradebook: Gradebook, path: Path | str) -> Path:
    """Write :func:`gradebook_csv` output; returns the written path."""
    target = Path(path)
    target.write_text(gradebook_csv(gradebook))
    return target
