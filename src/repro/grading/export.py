"""Exports: Gradescope results and markdown reports.

The paper's students "can simply submit their solution to Gradescope for
grading" (§4.1); this module writes the ``results.json`` document the
Gradescope autograder harness consumes, built from the same scored
results the interactive UI shows.  A markdown renderer covers the other
common hand-off: pasting a legible per-student or whole-class report
into an LMS or email.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.grading.gradebook import Gradebook
from repro.grading.records import SubmissionRecord
from repro.testfw.result import AspectStatus, SuiteResult, TestResult

__all__ = [
    "gradescope_document",
    "write_gradescope_results",
    "suite_result_markdown",
    "gradebook_markdown",
]

#: Gradescope visibility for per-test entries.
_DEFAULT_VISIBILITY = "visible"


def _test_entry(result: TestResult) -> Dict[str, Any]:
    lines: List[str] = []
    if result.fatal:
        lines.append(f"FATAL: {result.fatal}")
    for outcome in result.outcomes:
        lines.append(outcome.render())
    return {
        "name": result.test_name,
        "score": round(result.score, 4),
        "max_score": round(result.max_score, 4),
        "status": "passed" if result.passed else "failed",
        "output": "\n".join(lines),
        "visibility": _DEFAULT_VISIBILITY,
    }


def gradescope_document(
    result: SuiteResult, *, execution_time: Optional[float] = None
) -> Dict[str, Any]:
    """The ``results.json`` payload for one submission's suite run."""
    document: Dict[str, Any] = {
        "score": round(result.score, 4),
        "tests": [_test_entry(r) for r in result.results],
    }
    if execution_time is not None:
        document["execution_time"] = round(execution_time, 3)
    return document


def write_gradescope_results(
    result: SuiteResult,
    path: Path | str,
    *,
    execution_time: Optional[float] = None,
) -> Path:
    """Write the Gradescope document; returns the written path."""
    target = Path(path)
    target.write_text(
        json.dumps(gradescope_document(result, execution_time=execution_time), indent=2)
    )
    return target


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------

_STATUS_BADGES = {
    AspectStatus.PASSED.value: "PASS",
    AspectStatus.FAILED.value: "FAIL",
    AspectStatus.SKIPPED.value: "skip",
}


def suite_result_markdown(result: SuiteResult, *, student: str = "") -> str:
    """A per-submission markdown report with one table per test."""
    title = f"## {result.suite_name}"
    if student:
        title += f" — {student}"
    lines = [
        title,
        "",
        f"**Total: {result.score:g} / {result.max_score:g} "
        f"({result.percent:.0f}%)**",
        "",
    ]
    for test in result.results:
        lines.append(f"### {test.test_name}: {test.score:g} / {test.max_score:g}")
        lines.append("")
        if test.fatal:
            lines.append(f"> **FATAL** — {test.fatal}")
            lines.append("")
            continue
        lines.append("| requirement | status | points | message |")
        lines.append("|---|---|---|---|")
        for outcome in test.outcomes:
            badge = _STATUS_BADGES.get(outcome.status.value, outcome.status.value)
            message = outcome.message.replace("|", "\\|") or "—"
            lines.append(
                f"| {outcome.aspect} | {badge} | "
                f"{outcome.points_earned:g}/{outcome.points_possible:g} | "
                f"{message} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def gradebook_markdown(gradebook: Gradebook) -> str:
    """A class summary table, best submission per student."""
    lines = [
        f"## Gradebook — {gradebook.suite}",
        "",
        f"Class mean (best submissions): **{gradebook.mean_percent():.1f}%**",
        "",
        "| student | best | latest | submissions |",
        "|---|---|---|---|",
    ]
    for student in gradebook.students():
        best = gradebook.best(student)
        latest = gradebook.latest(student)
        history = gradebook.submissions_of(student)
        assert best is not None and latest is not None
        lines.append(
            f"| {student} | {best.percent:.0f}% | {latest.percent:.0f}% | "
            f"{len(history)} |"
        )
    return "\n".join(lines) + "\n"
