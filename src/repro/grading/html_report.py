"""Self-contained HTML reports for suite runs and whole gradebooks.

The terminal UI serves the interactive loop; this renderer produces the
artifact an instructor attaches to feedback or posts on a course page: a
single HTML file (inline CSS, no external assets) with the scored
requirement tables and, when available, the annotated fork-join trace
with phases colour-coded per thread.  The gradebook renderer covers the
batch view: a class summary table whose rows link to per-submission
timing breakdowns (span trees from the run's observability dump).
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.core.report import ForkJoinCheckReport
from repro.grading.gradebook import Gradebook
from repro.testfw.result import AspectStatus, SuiteResult, TestResult

__all__ = [
    "suite_result_html",
    "write_html_report",
    "gradebook_html",
    "write_gradebook_html",
]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a2233; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
.total { font-size: 1.1rem; padding: .6rem 1rem; background: #eef2f8;
         border-radius: .5rem; display: inline-block; }
table { border-collapse: collapse; width: 100%; margin: .8rem 0; }
th, td { text-align: left; padding: .35rem .6rem;
         border-bottom: 1px solid #dde3ec; vertical-align: top; }
th { background: #f4f6fa; font-weight: 600; }
.status { font-weight: 700; border-radius: .3rem; padding: .05rem .45rem; }
.passed { color: #116633; background: #e2f5e9; }
.failed { color: #a11221; background: #fbe3e6; }
.skipped { color: #6b5d11; background: #f7f0d4; }
.fatal { color: #a11221; font-weight: 600; }
pre.trace { background: #101522; color: #dce3f2; padding: 1rem;
            border-radius: .5rem; overflow-x: auto; font-size: .85rem; }
pre.trace .phase { color: #8fd0ff; }
pre.trace .t0 { color: #ffd479; } pre.trace .t1 { color: #9ef0a2; }
pre.trace .t2 { color: #f2a3d8; } pre.trace .t3 { color: #9fb8ff; }
pre.trace .t4 { color: #ffb3a0; } pre.trace .t5 { color: #c6f06a; }
.points { white-space: nowrap; }
"""

_BADGES = {
    AspectStatus.PASSED: ("passed", "PASS"),
    AspectStatus.FAILED: ("failed", "FAIL"),
    AspectStatus.SKIPPED: ("skipped", "SKIP"),
}


def _test_section(result: TestResult) -> List[str]:
    parts = [
        f"<h2>{html.escape(result.test_name)} — "
        f"{result.score:g} / {result.max_score:g} "
        f"({result.percent:.0f}%)</h2>"
    ]
    if result.fatal:
        parts.append(f'<p class="fatal">FATAL: {html.escape(result.fatal)}</p>')
        return parts
    if not result.outcomes:
        return parts
    parts.append(
        "<table><tr><th>requirement</th><th>status</th>"
        "<th class='points'>points</th><th>message</th></tr>"
    )
    for outcome in result.outcomes:
        css, label = _BADGES[outcome.status]
        parts.append(
            "<tr>"
            f"<td>{html.escape(outcome.aspect)}</td>"
            f'<td><span class="status {css}">{label}</span></td>'
            f'<td class="points">{outcome.points_earned:g} / '
            f"{outcome.points_possible:g}</td>"
            f"<td>{html.escape(outcome.message) or '&mdash;'}</td>"
            "</tr>"
        )
    parts.append("</table>")
    return parts


def _trace_section(report: ForkJoinCheckReport) -> List[str]:
    annotated = report.annotated_trace()
    if not annotated:
        return []
    thread_classes = {}
    lines_html: List[str] = []
    for line in annotated.splitlines():
        escaped = html.escape(line)
        if line.startswith("//"):
            lines_html.append(f'<span class="phase">{escaped}</span>')
            continue
        if line.startswith("Thread "):
            thread_id = line.split("->", 1)[0]
            css = thread_classes.setdefault(
                thread_id, f"t{len(thread_classes) % 6}"
            )
            lines_html.append(f'<span class="{css}">{escaped}</span>')
        else:
            lines_html.append(escaped)
    return [
        "<h2>Annotated trace</h2>",
        '<pre class="trace">' + "\n".join(lines_html) + "</pre>",
    ]


def suite_result_html(
    result: SuiteResult,
    *,
    student: str = "",
    reports: Optional[Sequence[ForkJoinCheckReport]] = None,
) -> str:
    """Render one suite run (plus optional trace reports) as HTML."""
    title = f"Fork-Join Test Report — {result.suite_name}"
    if student:
        title += f" — {student}"
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="total">Total: <strong>{result.score:g} / '
        f"{result.max_score:g}</strong> ({result.percent:.0f}%)</p>",
    ]
    for test_result in result.results:
        parts.extend(_test_section(test_result))
    for report in reports or []:
        parts.extend(_trace_section(report))
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    result: SuiteResult,
    path: Path | str,
    *,
    student: str = "",
    reports: Optional[Sequence[ForkJoinCheckReport]] = None,
) -> Path:
    """Render and write the HTML report; returns the written path."""
    target = Path(path)
    target.write_text(suite_result_html(result, student=student, reports=reports))
    return target


# ----------------------------------------------------------------------
# Gradebook (batch) report
# ----------------------------------------------------------------------

def gradebook_html(
    gradebook: Gradebook,
    *,
    timelines: Optional[Dict[str, Dict[str, Any]]] = None,
) -> str:
    """Render a whole gradebook as one self-contained HTML page.

    ``timelines`` (student → ``{"duration", "attempts", "tree"}``, as
    produced by :func:`repro.obs.submission_timings` from the batch's
    obs dump) adds a grading-time column whose cells link to
    per-submission span-tree sections at the bottom of the page.
    """
    title = f"Gradebook — {gradebook.suite}"
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="total">Class mean (best submissions): '
        f"<strong>{gradebook.mean_percent():.1f}%</strong></p>",
    ]
    header = (
        "<tr><th>student</th><th>best</th><th>latest</th>"
        "<th>submissions</th><th>kind</th><th>schedules</th>"
        "<th>races</th>"
    )
    if timelines is not None:
        header += "<th>grading time</th>"
    header += "</tr>"
    parts.append("<table>" + header)
    kinds = gradebook.failure_kinds()
    for student in gradebook.students():
        best = gradebook.best(student)
        latest = gradebook.latest(student)
        assert best is not None and latest is not None
        kind = kinds.get(student, "ok")
        kind_css = "passed" if kind == "ok" else "failed"
        row = (
            "<tr>"
            f"<td>{html.escape(student)}</td>"
            f"<td>{best.percent:.0f}%</td>"
            f"<td>{latest.percent:.0f}%</td>"
            f"<td>{len(gradebook.submissions_of(student))}</td>"
            f'<td><span class="status {kind_css}">{html.escape(kind)}</span></td>'
        )
        schedule = latest.schedule_tag()
        if schedule:
            label = schedule if latest.schedule_seed is not None else f"racy: {schedule}"
            row += f'<td><span class="status failed">{html.escape(label)}</span></td>'
        else:
            row += "<td>&mdash;</td>"
        # Race evidence: the racing pair is named right next to the
        # ``racy @seed N`` marker so an instructor sees *which* property
        # writes collide, not just that a failing schedule exists.
        race = latest.race_tag()
        if race:
            verdict = latest.concurrency_verdict or (
                "wrong" if latest.racy else ""
            )
            race_css = "skipped" if latest.racy_lucky else "failed"
            cell = f"{verdict}: {race}" if verdict else race
            row += (
                f'<td><span class="status {race_css}">'
                f"{html.escape(cell)}</span>"
            )
            if latest.race_note:
                row += f"<br><small>{html.escape(latest.race_note)}</small>"
            row += "</td>"
        else:
            row += "<td>&mdash;</td>"
        if timelines is not None:
            timing = timelines.get(student)
            if timing is not None:
                anchor = f"timing-{html.escape(student, quote=True)}"
                row += (
                    f'<td><a href="#{anchor}">'
                    f"{timing['duration']:.2f}s</a></td>"
                )
            else:
                row += "<td>&mdash;</td>"
        row += "</tr>"
        parts.append(row)
    parts.append("</table>")
    contended = [
        (student, latest)
        for student in gradebook.students()
        for latest in [gradebook.latest(student)]
        if latest is not None and latest.race_contention
    ]
    if contended:
        # Per-lock traffic from the race analysis: which locks the
        # submission actually fought over, next to the race verdicts
        # above — blocks and failed try-acquires are the contention
        # signal, raw acquisitions the baseline.
        parts.append("<h2>Lock contention</h2>")
        parts.append(
            "<table><tr><th>student</th><th>lock</th>"
            "<th class='points'>acquisitions</th>"
            "<th class='points'>blocks</th>"
            "<th class='points'>try-failures</th></tr>"
        )
        for student, latest in contended:
            for stat in latest.race_contention:
                parts.append(
                    "<tr>"
                    f"<td>{html.escape(student)}</td>"
                    f"<td>lock-{int(stat.get('lock', 0))}</td>"
                    f"<td class='points'>{int(stat.get('acquisitions', 0))}</td>"
                    f"<td class='points'>{int(stat.get('blocks', 0))}</td>"
                    f"<td class='points'>{int(stat.get('try_failures', 0))}</td>"
                    "</tr>"
                )
        parts.append("</table>")
    if timelines:
        parts.append("<h2>Timing breakdowns</h2>")
        for student in sorted(timelines):
            timing = timelines[student]
            anchor = f"timing-{html.escape(student, quote=True)}"
            parts.append(
                f'<h2 id="{anchor}">{html.escape(student)} — '
                f"{timing['duration']:.2f}s, "
                f"{timing['attempts']} attempt(s)</h2>"
            )
            parts.append(
                '<pre class="trace">' + html.escape(timing["tree"]) + "</pre>"
            )
    parts.append("</body></html>")
    return "\n".join(parts)


def write_gradebook_html(
    gradebook: Gradebook,
    path: Path | str,
    *,
    timelines: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Path:
    """Render and write the gradebook page; returns the written path."""
    target = Path(path)
    target.write_text(gradebook_html(gradebook, timelines=timelines))
    return target
