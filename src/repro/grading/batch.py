"""Batch grading: run a suite over many submissions in one sweep.

A grading session binds each submission (a registered main identifier,
standing in for a student's uploaded program) to the problem's suite,
runs it to completion, and records the result in a gradebook — the
automated path the paper contrasts with interactive self-testing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.grading.gradebook import Gradebook
from repro.grading.records import SubmissionRecord
from repro.testfw.result import SuiteResult
from repro.testfw.suite import TestSuite

__all__ = ["grade_batch", "grade_submissions"]

SuiteFactory = Callable[[str], TestSuite]


def grade_submissions(
    suite_factory: SuiteFactory,
    submissions: Dict[str, str],
    *,
    suite_name: str = "",
    dedup: bool = False,
) -> Tuple[Gradebook, Dict[str, SuiteResult]]:
    """Grade every (student -> identifier) submission with a fresh suite.

    ``suite_factory`` builds the problem's suite against one submission
    identifier; a fresh suite per student keeps semantic-check state and
    score displays isolated, exactly as separate JUnit runs would be.
    Returns the filled gradebook plus the live results for rendering.

    With ``dedup`` enabled, sha256-identical submissions are graded once
    and the representative's record fans out to the duplicates (distinct
    student names, shared result — see :mod:`repro.grading.dedup`); the
    gradebook still carries one record per student, in submissions
    order.

    An empty ``submissions`` dict is a valid state, not an error — a
    resumed batch whose journal already covers every student grades
    nothing — and yields an empty gradebook (named ``suite_name``, since
    no suite was ever built to ask).
    """
    gradebook: Optional[Gradebook] = None
    live: Dict[str, SuiteResult] = {}
    records: Dict[str, SubmissionRecord] = {}
    pending = list(submissions.items())
    clones: Dict[str, List[Tuple[str, str]]] = {}
    if dedup and pending:
        from repro.grading.dedup import group_submissions

        pending, clones = group_submissions(pending)
    for student, identifier in pending:
        suite = suite_factory(identifier)
        if gradebook is None:
            gradebook = Gradebook(suite.name)
        result = suite.run()
        live[student] = result
        records[student] = SubmissionRecord.from_suite_result(student, result)
        for clone_student, _ in clones.get(student, ()):
            live[clone_student] = result
            records[clone_student] = SubmissionRecord.from_suite_result(
                clone_student, result
            )
    if gradebook is None:
        gradebook = Gradebook(suite_name)
    for student in submissions:
        if student in records:
            gradebook.record(records[student])
    return gradebook, live


def grade_batch(
    suite_factory: SuiteFactory,
    identifiers: List[str],
) -> Tuple[Gradebook, Dict[str, SuiteResult]]:
    """Convenience: grade identifiers as their own student names."""
    return grade_submissions(
        suite_factory, {identifier: identifier for identifier in identifiers}
    )
