"""Progress logs: the raw material of instructor awareness.

Tests run on in-progress code "can give valuable feedback also to
instructors.  The logged results of these tests can provide instructors
with awareness of unseen partial work" (§1).  A :class:`ProgressLog` is
an append-only JSONL file of submission records tagged ``progress``; the
awareness module aggregates it into the inferences the paper sketches.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, List, Optional

from repro.grading.records import SubmissionRecord
from repro.testfw.result import SuiteResult

__all__ = ["ProgressLog"]


class ProgressLog:
    """Append-only log of in-progress test runs.

    Backed by a JSONL file when *path* is given; purely in-memory
    otherwise (handy for tests and single-session use).
    """

    def __init__(self, path: Optional[Path | str] = None) -> None:
        """Open (and load) the log at *path*, or start an in-memory one.

        The construction instant becomes the log's monotonic epoch: every
        record gets ``elapsed = monotonic-now - epoch`` alongside its wall
        timestamp, so ordering survives wall-clock adjustments mid-batch.
        """
        self.path = Path(path) if path is not None else None
        self._entries: List[SubmissionRecord] = []
        self._epoch = time.monotonic()
        if self.path is not None and self.path.exists():
            for line in self.path.read_text().splitlines():
                if line.strip():
                    self._entries.append(SubmissionRecord.from_dict(json.loads(line)))

    def log_run(
        self,
        student: str,
        result: SuiteResult,
        *,
        timestamp: Optional[float] = None,
    ) -> SubmissionRecord:
        """Record one self-test run of *student*'s in-progress work.

        The record carries both the wall ``timestamp`` (given or
        ``time.time()``) and the monotonic ``elapsed`` since this log was
        opened — wall clocks jump under NTP adjustment; elapsed does not.
        """
        record = SubmissionRecord.from_suite_result(
            student,
            result,
            kind="progress",
            timestamp=timestamp,
            elapsed=time.monotonic() - self._epoch,
        )
        self._entries.append(record)
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return record

    def entries(self) -> List[SubmissionRecord]:
        """All records, oldest first (a copy)."""
        return list(self._entries)

    def entries_of(self, student: str) -> List[SubmissionRecord]:
        """The records of one student, oldest first."""
        return [e for e in self._entries if e.student == student]

    def students(self) -> List[str]:
        """Distinct students in first-appearance order."""
        seen: List[str] = []
        for entry in self._entries:
            if entry.student not in seen:
                seen.append(entry.student)
        return seen

    def extend(self, records: Iterable[SubmissionRecord]) -> None:
        """Append pre-built records (merging logs, importing batches)."""
        for record in records:
            self._entries.append(record)
            if self.path is not None:
                with self.path.open("a") as handle:
                    handle.write(json.dumps(record.to_dict()) + "\n")

    def __len__(self) -> int:
        return len(self._entries)
