"""Grading and awareness layer: gradebooks, progress logs, inferences."""

from repro.grading.awareness import (
    AwarenessReport,
    StudentProgress,
    analyze_progress,
)
from repro.grading.batch import grade_batch, grade_submissions
from repro.grading.dedup import clone_record, group_submissions, submission_digest
from repro.grading.export import (
    gradebook_csv,
    gradebook_markdown,
    gradescope_document,
    suite_result_markdown,
    write_gradebook_csv,
    write_gradescope_results,
)
from repro.grading.gradebook import Gradebook
from repro.grading.html_report import (
    gradebook_html,
    suite_result_html,
    write_gradebook_html,
    write_html_report,
)
from repro.grading.journal import (
    GradingJournal,
    JournalEntry,
    JournalError,
    JournalWarning,
)
from repro.grading.logs import ProgressLog
from repro.grading.records import AspectRecord, SubmissionRecord, TestRecord
from repro.grading.service import (
    GradingService,
    MergeStats,
    ServiceReport,
    ShardStatus,
    merge_shard_journals,
    plan_shards,
    shard_of,
)

__all__ = [
    "Gradebook",
    "GradingJournal",
    "GradingService",
    "JournalEntry",
    "JournalError",
    "JournalWarning",
    "MergeStats",
    "ProgressLog",
    "ServiceReport",
    "ShardStatus",
    "merge_shard_journals",
    "plan_shards",
    "shard_of",
    "SubmissionRecord",
    "TestRecord",
    "AspectRecord",
    "AwarenessReport",
    "StudentProgress",
    "analyze_progress",
    "grade_batch",
    "grade_submissions",
    "submission_digest",
    "group_submissions",
    "clone_record",
    "gradescope_document",
    "write_gradescope_results",
    "suite_result_markdown",
    "gradebook_markdown",
    "gradebook_csv",
    "write_gradebook_csv",
    "suite_result_html",
    "write_html_report",
    "gradebook_html",
    "write_gradebook_html",
]
