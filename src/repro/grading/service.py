"""Sharded multi-process grading service: crash-tolerant at course scale.

The single-process :class:`~repro.execution.supervisor.GradingSupervisor`
survives hung *children* and wedged *threads*, but one interpreter crash
or OOM-kill still loses the whole batch.  This module grows it across
process boundaries:

* :func:`shard_of` **content-shards** a batch: each student maps to a
  shard by a stable hash of the student name, so the same roster always
  lands in the same shard journals — a resumed batch, a respawned shard,
  and a rerun all agree about who belongs where.
* Each shard is an independent OS process
  (:mod:`repro.grading.shard_worker`) running its own bounded
  supervisor and streaming per-submission results into its own fsynced
  JSONL journal.
* The coordinator (:class:`GradingService`) holds every worker's stdout
  pipe and expects **heartbeats**; a silent or dead shard is
  hard-killed and respawned, and the respawn regrades *only* the
  submissions not yet durable in that shard's journal (the supervisor's
  own journal resume does the dedup).
* A submission that repeatedly takes its shard down is **quarantined**:
  after ``quarantine_after`` worker deaths with the same first-pending
  suspect, the coordinator writes a durable ``crash`` record for it and
  moves on — one poison submission cannot wedge the service.
* ``SIGINT``/``SIGTERM`` at the coordinator trigger a **graceful
  drain**: workers are asked to stop (they finish in-flight work and
  journal it), the remainder is reported as *interrupted*, and the exact
  same command resumes from the journals.
* :func:`merge_shard_journals` folds the per-shard journals into one
  gradebook **deterministically**: batch order, durable-first dedup —
  so a disturbed run and an undisturbed run save byte-identically
  (modulo timestamps).

Shard lifecycle is observable end to end: ``service.shard`` spans per
incarnation, counters for respawns / missed heartbeats / requeues /
quarantines, and a ``service.shards_alive`` gauge.  Fleet telemetry
goes further: each manifest carries a trace context (run id + the
``service.shard`` span id opened pre-spawn), every worker writes a
crash-safe sidecar dump, :meth:`GradingService.merged_dump` stitches
them into ONE causal service-wide trace, and an optional progress
stream feeds the live ``watch`` fleet view.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.execution.faults import ShardFaultProgram
from repro.execution.taxonomy import FailureKind
from repro.grading.gradebook import Gradebook
from repro.grading.journal import GradingJournal, JournalEntry
from repro.grading.records import SubmissionRecord, TestRecord
from repro.grading.shard_worker import EVENT_PREFIX
from repro.obs import get_registry as _obs_registry
from repro.obs.context import TraceContext, new_run_id
from repro.obs.export import ObsDump
from repro.obs.merge import merge_workdir
from repro.obs.stream import ProgressStream

__all__ = [
    "GradingService",
    "ServiceReport",
    "ShardStatus",
    "MergeStats",
    "shard_of",
    "plan_shards",
    "merge_shard_journals",
    "shard_journal_path",
]


def shard_of(student: str, shards: int) -> int:
    """Stable content-shard assignment: hash of the student name.

    Independent of batch order, batch size, and Python's per-process
    hash randomization (``sha256``, not ``hash``), so every run of the
    same roster agrees about which journal holds which student.
    """
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    digest = hashlib.sha256(student.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def plan_shards(
    submissions: Mapping[str, str], shards: int
) -> List[List[Tuple[str, str]]]:
    """Split a submissions dict into per-shard slices, batch order kept."""
    plan: List[List[Tuple[str, str]]] = [[] for _ in range(shards)]
    for student, identifier in submissions.items():
        plan[shard_of(student, shards)].append((student, identifier))
    return plan


def shard_journal_path(workdir: Path | str, shard: int) -> Path:
    """Canonical journal path of one shard under a service workdir."""
    return Path(workdir) / f"shard-{shard:02d}.jsonl"


@dataclass
class MergeStats:
    """What the deterministic journal merge observed."""

    #: Records read across all shard journals (before dedup).
    records: int = 0
    #: Later duplicates dropped in favour of the durable-first record.
    duplicates_dropped: int = 0
    #: Journals that contributed at least one record.
    journals: int = 0


def merge_shard_journals(
    paths: List[Path | str],
    *,
    suite: str = "",
    order: Optional[List[str]] = None,
) -> Tuple[Gradebook, MergeStats]:
    """Merge per-shard journals into one gradebook, deterministically.

    Journals are read in the order given (shard order) and records
    within a journal in file order; the **first durable record wins**
    for a student seen twice (a submission graded by both a pre-crash
    and a post-respawn incarnation dedupes to the pre-crash record,
    which is the one the respawn should never have regraded).  The
    gradebook is filled in ``order`` (the batch's submission order) when
    given, else sorted by student — never in completion order — so the
    merged artifact depends only on the inputs.

    Torn trailing lines are tolerated per journal (each warns via
    :class:`~repro.grading.journal.JournalWarning`).
    """
    stats = MergeStats()
    first: Dict[str, JournalEntry] = {}
    for path in paths:
        journal = GradingJournal(path)
        entries = journal.entries()
        if entries:
            stats.journals += 1
        for entry in entries:
            stats.records += 1
            if entry.student in first:
                stats.duplicates_dropped += 1
                continue
            first[entry.student] = entry
    if stats.duplicates_dropped:
        _obs_registry().counter("service.journal_duplicates_dropped").inc(
            stats.duplicates_dropped
        )
    book_suite = suite
    if not book_suite:
        for entry in first.values():
            book_suite = entry.record.suite
            break
    book = Gradebook(book_suite)
    students = order if order is not None else sorted(first)
    for student in students:
        entry = first.get(student)
        if entry is not None:
            book.record(entry.record)
    return book, stats


@dataclass
class ShardStatus:
    """One shard's final account: staffing, progress, and casualties."""

    shard: int
    journal: Path
    assigned: List[str] = field(default_factory=list)
    graded: List[str] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    interrupted: List[str] = field(default_factory=list)
    #: Worker incarnations beyond the first (kill/crash recoveries).
    respawns: int = 0
    #: Deaths detected via missed heartbeats (vs. pipe EOF / exit).
    heartbeat_timeouts: int = 0


@dataclass
class ServiceReport:
    """The service's full answer for one sharded batch."""

    gradebook: Gradebook
    shards: List[ShardStatus]
    merge: MergeStats
    #: Students whose grades were already durable before this run.
    resumed: List[str] = field(default_factory=list)
    #: Students quarantined this run (durable ``crash`` records).
    quarantined: List[str] = field(default_factory=list)
    #: Students left ungraded by a graceful drain — resumable, never
    #: written to any journal as graded.
    interrupted: List[str] = field(default_factory=list)

    @property
    def drained(self) -> bool:
        """True when the batch ended by drain rather than completion."""
        return bool(self.interrupted)

    def summary(self) -> str:
        """Operator-facing one-screen account of the sharded batch."""
        total_respawns = sum(s.respawns for s in self.shards)
        lines = [
            f"sharded batch: {len(self.shards)} shard(s), "
            f"{sum(len(s.assigned) for s in self.shards)} submission(s), "
            f"{len(self.resumed)} resumed from journals, "
            f"{total_respawns} shard respawn(s)"
        ]
        for status in self.shards:
            line = (
                f"  shard {status.shard:02d}: {len(status.graded)}/"
                f"{len(status.assigned)} graded"
            )
            if status.respawns:
                line += f", respawned x{status.respawns}"
            if status.heartbeat_timeouts:
                line += f", heartbeat timeouts x{status.heartbeat_timeouts}"
            if status.quarantined:
                line += f", quarantined: {', '.join(status.quarantined)}"
            if status.interrupted:
                line += f", interrupted: {len(status.interrupted)}"
            lines.append(line)
        if self.quarantined:
            lines.append(
                "quarantined (repeated shard crashes): "
                + ", ".join(sorted(self.quarantined))
            )
        if self.interrupted:
            lines.append(
                f"drained with {len(self.interrupted)} submission(s) "
                f"ungraded — rerun the same command to resume"
            )
        if self.merge.duplicates_dropped:
            lines.append(
                f"journal merge dropped {self.merge.duplicates_dropped} "
                f"duplicate record(s) (durable-first)"
            )
        return "\n".join(lines)


class _ShardState:
    """Coordinator-side live state of one shard."""

    def __init__(self, shard: int, journal: Path,
                 assigned: List[Tuple[str, str]]) -> None:
        self.shard = shard
        self.journal = journal
        self.assigned = assigned
        self.status = ShardStatus(
            shard=shard,
            journal=journal,
            assigned=[student for student, _ in assigned],
        )
        self.proc: Optional[subprocess.Popen] = None
        self.reader: Optional[threading.Thread] = None
        self.last_beat = 0.0
        self.incarnation = 0
        self.done = False
        #: The current incarnation's ``service.shard`` span (opened by
        #: the coordinator pre-spawn so its id can ride the manifest).
        self.span = None
        self.sidecar: Optional[Path] = None
        #: Suspect -> deaths observed with that suspect first-pending.
        self.crashes: Dict[str, int] = {}

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class GradingService:
    """Grade a submissions dict across N crash-tolerant shard processes.

    Parameters
    ----------
    suite:
        Name of the problem suite (resolved in every worker via
        :func:`repro.graders.build_named_suite`).
    workdir:
        Directory holding the per-shard journals and manifests.  Point
        a later run at the same directory to resume: durable grades are
        never recomputed.
    shards:
        Number of independent worker processes.
    subprocess_mode / jobs_per_shard / retries / deadline /
    explore_schedules / explore_seed / explore_strategy / explore_depth /
    race_detect / race_credit:
        Forwarded to each shard's inner
        :class:`~repro.execution.supervisor.GradingSupervisor` (the race
        flags travel in the shard manifest's ``supervisor`` dict, so a
        respawned incarnation grades with the same race policy).
    pool_size:
        When > 0, each shard worker keeps this many pre-forked warm
        interpreters (:class:`~repro.execution.worker_pool.WorkerPool`)
        and grades on them instead of cold-starting a child per
        submission; implies subprocess isolation inside the shard.
    dedup:
        Forwarded to each shard's supervisor: sha256-identical
        submissions within a shard grade once and fan the record out
        (journal- and resume-safe; see :mod:`repro.grading.dedup`).
    heartbeat_interval:
        Worker heartbeat period, seconds.
    heartbeat_timeout:
        Silence after which a worker is declared wedged, hard-killed,
        and respawned.  Must comfortably exceed the interval and the
        slowest single submission.
    quarantine_after:
        Worker deaths with the same first-pending suspect before that
        submission is quarantined (durable ``crash`` record).
    max_respawns_per_shard:
        Hard ceiling on incarnations per shard (safety net; quarantine
        normally guarantees progress long before it).  ``None`` derives
        a generous bound from the shard size.
    faults:
        Shard -> :class:`~repro.execution.faults.ShardFaultProgram` for
        the deterministic crash drills.  One-shot: cleared on respawn.
    python:
        Interpreter for the workers (defaults to ``sys.executable``).
    progress_stream:
        Optional :class:`~repro.obs.stream.ProgressStream`; when given,
        the coordinator emits one flushed JSONL event per fleet state
        change (spawn/death/graded/quarantine/...) that ``forkjoin-test
        watch`` tails into a live fleet view.
    """

    #: Monitor poll period, seconds.
    POLL = 0.05
    #: Grace given to a SIGTERMed worker before it is hard-killed.
    DRAIN_GRACE = 10.0

    def __init__(
        self,
        suite: str,
        *,
        workdir: Path | str,
        shards: int = 2,
        subprocess_mode: bool = False,
        jobs_per_shard: int = 1,
        retries: int = 0,
        deadline: Optional[float] = None,
        explore_schedules: int = 0,
        explore_seed: int = 0,
        explore_strategy: str = "random-walk",
        explore_depth: int = 3,
        pool_size: int = 0,
        dedup: bool = False,
        race_detect: bool = False,
        race_credit: bool = False,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 10.0,
        quarantine_after: int = 2,
        max_respawns_per_shard: Optional[int] = None,
        faults: Optional[Mapping[int, ShardFaultProgram]] = None,
        python: Optional[str] = None,
        progress_stream: Optional[ProgressStream] = None,
    ) -> None:
        """Configure the service; see the class docstring for knobs."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.suite = suite
        self.workdir = Path(workdir)
        self.shards = int(shards)
        self.subprocess_mode = subprocess_mode
        self.jobs_per_shard = max(1, int(jobs_per_shard))
        self.retries = max(0, int(retries))
        self.deadline = deadline
        self.explore_schedules = max(0, int(explore_schedules))
        self.explore_seed = int(explore_seed)
        self.explore_strategy = explore_strategy
        self.explore_depth = max(0, int(explore_depth))
        self.pool_size = max(0, int(pool_size))
        self.dedup = bool(dedup)
        self.race_credit = bool(race_credit)
        self.race_detect = bool(race_detect) or self.race_credit
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.quarantine_after = max(1, int(quarantine_after))
        self.max_respawns_per_shard = max_respawns_per_shard
        self.faults = dict(faults or {})
        self.python = python or sys.executable
        self.progress = progress_stream
        #: Fleet-wide id shared by every process of one batch (fresh per
        #: :meth:`grade` call; sidecar files are stamped and filtered
        #: by it, so reused work directories never merge stale traces).
        self.run_id = ""
        self._drain = threading.Event()
        self._batch_span = None
        self._progress_lock = threading.Lock()
        self._expected = 0
        self._progress_graded = 0
        self._progress_quarantined = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Request a graceful drain (what SIGINT/SIGTERM do)."""
        self._drain.set()

    def _emit(self, event: str, **fields: Any) -> None:
        """Progress-stream an event; telemetry must never fail grading."""
        if self.progress is None:
            return
        try:
            self.progress.emit(event, **fields)
        except Exception:  # pragma: no cover - full disk etc.
            pass

    def _emit_queue_depth(self) -> None:
        with self._progress_lock:
            graded = self._progress_graded
            settled = graded + self._progress_quarantined
        self._emit(
            "queue-depth",
            graded=graded,
            remaining=max(0, self._expected - settled),
            total=self._expected,
        )

    def merged_dump(self) -> ObsDump:
        """ONE service-wide dump: coordinator registry + shard sidecars.

        Every shard-worker and pool-child span is causally parented
        under this batch's ``service.batch`` root; sidecars from other
        runs in a reused work directory are filtered out by run id.
        """
        return merge_workdir(
            self.workdir, registry=_obs_registry(), run_id=self.run_id
        )

    def grade(self, submissions: Dict[str, str]) -> ServiceReport:
        """Grade the batch across the shards; returns the merged report.

        Installs SIGINT/SIGTERM handlers for the duration when called
        from the main thread (restored afterwards); either signal — or
        :meth:`drain` from any thread — triggers the graceful drain.
        """
        obs = _obs_registry()
        self._drain.clear()
        self.run_id = new_run_id()
        self.workdir.mkdir(parents=True, exist_ok=True)
        plan = plan_shards(submissions, self.shards)
        states = [
            _ShardState(i, shard_journal_path(self.workdir, i), assigned)
            for i, assigned in enumerate(plan)
        ]
        self._expected = len(submissions)
        self._progress_graded = 0
        self._progress_quarantined = 0
        self._emit(
            "batch-start",
            suite=self.suite,
            shards=self.shards,
            submissions=len(submissions),
            run_id=self.run_id,
        )

        batch_span = obs.begin_span(
            "service.batch",
            suite=self.suite,
            shards=self.shards,
            submissions=len(submissions),
        )
        self._batch_span = batch_span
        resumed: List[str] = []
        try:
            for state in states:
                durable = set(GradingJournal(state.journal).completed())
                already = [s for s, _ in state.assigned if s in durable]
                state.status.resumed = already
                resumed.extend(already)
                if already:
                    with self._progress_lock:
                        self._progress_graded += len(already)
                    self._emit(
                        "shard-resumed", shard=state.shard,
                        resumed=len(already),
                    )
                if len(already) == len(state.assigned):
                    state.done = True
                    self._emit("shard-done", shard=state.shard)
                else:
                    self._spawn(state)
            restore = self._install_signal_handlers()
            try:
                self._monitor(states)
            finally:
                restore()
        finally:
            obs.end_span(batch_span)
            self._batch_span = None

        report = self._finalize(submissions, states, sorted(resumed))
        self._emit(
            "batch-end",
            graded=len(report.gradebook.students()),
            drained=report.drained,
            interrupted=len(report.interrupted),
        )
        return report

    # ------------------------------------------------------------------
    # Spawning and events
    # ------------------------------------------------------------------
    def _manifest_path(self, shard: int) -> Path:
        return self.workdir / f"shard-{shard:02d}.manifest.json"

    def _write_manifest(self, state: _ShardState,
                        fault: ShardFaultProgram) -> Path:
        manifest = {
            "shard": state.shard,
            "suite": self.suite,
            "subprocess": self.subprocess_mode,
            "submissions": [list(pair) for pair in state.assigned],
            "journal": str(state.journal),
            "supervisor": {
                "jobs": self.jobs_per_shard,
                "retries": self.retries,
                "deadline": self.deadline,
                "explore_schedules": self.explore_schedules,
                "explore_seed": self.explore_seed,
                "explore_strategy": self.explore_strategy,
                "explore_depth": self.explore_depth,
                "pool_size": self.pool_size,
                "dedup": self.dedup,
                "race_detect": self.race_detect,
                "race_credit": self.race_credit,
            },
            "heartbeat_interval": self.heartbeat_interval,
            "fault": fault.to_dict(),
            "obs": {
                "enabled": _obs_registry().enabled,
                "run_id": self.run_id,
                "incarnation": state.incarnation,
                "parent_process": "coordinator",
                "parent_span_id": (
                    state.span.span_id
                    if state.span is not None and state.span.span_id > 0
                    else None
                ),
                "sidecar": str(state.sidecar) if state.sidecar else None,
            },
        }
        path = self._manifest_path(state.shard)
        path.write_text(json.dumps(manifest, indent=2))
        return path

    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # The worker must import the same `repro` this coordinator runs:
        # prepend its package root, whatever the caller's environment.
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        return env

    def _spawn(self, state: _ShardState) -> None:
        obs = _obs_registry()
        fault = self.faults.get(state.shard, ShardFaultProgram())
        if state.incarnation > 0:
            # Faults are one-shot drills: a respawned incarnation runs
            # clean, so recovery is observable rather than cyclic.
            fault = ShardFaultProgram()
        # The incarnation's `service.shard` span opens *before* the
        # worker exists: its id must ride the manifest so the worker's
        # own root spans stitch under it at merge time.  Detached — the
        # coordinator thread opens overlapping shard lifetimes; the
        # incarnation's reader thread closes it.
        state.span = obs.begin_span(
            "service.shard",
            parent_id=(
                self._batch_span.span_id
                if self._batch_span is not None
                and self._batch_span.span_id > 0
                else None
            ),
            detached=True,
            shard=state.shard,
            incarnation=state.incarnation,
            assigned=len(state.status.assigned),
        )
        state.sidecar = self.workdir / (
            f"obs-shard-{state.shard:02d}.inc{state.incarnation:02d}.jsonl"
        )
        manifest = self._write_manifest(state, fault)
        state.proc = subprocess.Popen(
            [self.python, "-m", "repro.grading.shard_worker", str(manifest)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=self._worker_env(),
        )
        state.last_beat = time.monotonic()
        state.reader = threading.Thread(
            target=self._reader_loop,
            args=(state, state.proc.stdout, state.span),
            name=f"shard-{state.shard}-reader",
            daemon=True,
        )
        state.reader.start()
        self._emit(
            "shard-spawn",
            shard=state.shard,
            incarnation=state.incarnation,
            assigned=len(state.status.assigned),
        )
        state.incarnation += 1
        obs.counter("service.shards_spawned").inc()
        obs.gauge("service.shards_alive").add(1)

    def _reader_loop(self, state: _ShardState, stream, span) -> None:
        """Drain one worker's stdout; every event line is a heartbeat.

        One reader thread lives exactly as long as one worker
        incarnation, so it closes that incarnation's ``service.shard``
        *span* (opened, detached, by :meth:`_spawn` so its id could
        travel in the manifest).
        """
        obs = _obs_registry()
        try:
            for line in stream:
                if not line.startswith(EVENT_PREFIX):
                    continue  # tested-program noise on the shared fd
                try:
                    event = json.loads(line[len(EVENT_PREFIX):])
                except json.JSONDecodeError:
                    continue
                state.last_beat = time.monotonic()
                if event.get("event") == "graded":
                    student = event.get("student")
                    if student and student not in state.status.graded:
                        state.status.graded.append(student)
                        with self._progress_lock:
                            self._progress_graded += 1
                        self._emit(
                            "graded",
                            shard=state.shard,
                            student=student,
                            failure_kind=event.get("failure_kind"),
                            score=event.get("score"),
                            max_score=event.get("max_score"),
                            graded=len(state.status.graded),
                        )
                        self._emit_queue_depth()
        except (OSError, ValueError):  # pragma: no cover - pipe torn down
            pass
        finally:
            try:
                stream.close()
            except OSError:  # pragma: no cover
                pass
            obs.end_span(span, graded=len(state.status.graded))

    # ------------------------------------------------------------------
    # Monitoring, death handling, respawn
    # ------------------------------------------------------------------
    def _install_signal_handlers(self):
        """SIGINT/SIGTERM -> drain; returns the restore callable."""
        if threading.current_thread() is not threading.main_thread():
            return lambda: None

        previous = {}

        def _handler(signum: int, frame: Any) -> None:
            # Only set an Event: the monitor loop does the actual work,
            # so the handler can never deadlock on coordinator state.
            self._drain.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _handler)

        def _restore() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

        return _restore

    def _monitor(self, states: List[_ShardState]) -> None:
        obs = _obs_registry()
        while True:
            if self._drain.is_set():
                self._drain_workers(states)
                return
            pending = [s for s in states if not s.done]
            if not pending:
                return
            for state in pending:
                if state.proc is None:
                    continue
                if state.proc.poll() is not None:
                    self._handle_death(state)
                elif (
                    time.monotonic() - state.last_beat
                    > self.heartbeat_timeout
                ):
                    # Alive but silent: wedged or stalled.  Only a hard
                    # kill recovers the shard.
                    obs.counter("service.heartbeat_timeouts").inc()
                    state.status.heartbeat_timeouts += 1
                    self._emit(
                        "shard-health",
                        shard=state.shard,
                        status="heartbeat-timeout",
                    )
                    self._kill(state)
                    self._handle_death(state)
            time.sleep(self.POLL)

    def _kill(self, state: _ShardState) -> None:
        if state.proc is not None and state.proc.poll() is None:
            try:
                state.proc.kill()
            except OSError:  # pragma: no cover - reaped concurrently
                pass
            state.proc.wait()

    def _reap(self, state: _ShardState) -> None:
        if state.proc is not None:
            state.proc.wait()
            if state.reader is not None:
                state.reader.join(timeout=5.0)
            state.proc = None
            state.reader = None
            _obs_registry().gauge("service.shards_alive").add(-1)

    def _durable(self, state: _ShardState) -> set:
        return set(GradingJournal(state.journal).completed())

    def _remaining(self, state: _ShardState) -> List[Tuple[str, str]]:
        durable = self._durable(state)
        quarantined = set(state.status.quarantined)
        return [
            (student, identifier)
            for student, identifier in state.assigned
            if student not in durable and student not in quarantined
        ]

    def _handle_death(self, state: _ShardState) -> None:
        """A worker exited (or was killed): finish, quarantine, respawn."""
        obs = _obs_registry()
        returncode = state.proc.returncode if state.proc else None
        self._reap(state)
        remaining = self._remaining(state)
        if not remaining:
            # Every assigned submission is durable (a clean exit — or a
            # crash precisely after the last record): the shard is done.
            state.done = True
            self._emit("shard-done", shard=state.shard)
            return

        # The shard died with work left.  Blame the first pending
        # submission in manifest order — with a serial inner supervisor
        # that is exactly the one in flight at death.
        suspect = remaining[0][0]
        state.crashes[suspect] = state.crashes.get(suspect, 0) + 1
        obs.counter("service.shard_deaths").inc()
        self._emit(
            "shard-death",
            shard=state.shard,
            returncode=returncode,
            remaining=len(remaining),
        )
        if state.crashes[suspect] >= self.quarantine_after:
            self._quarantine(state, remaining[0], state.crashes[suspect])
            remaining = remaining[1:]
            if not remaining:
                state.done = True
                self._emit("shard-done", shard=state.shard)
                return

        ceiling = self.max_respawns_per_shard
        if ceiling is None:
            ceiling = self.quarantine_after * len(state.assigned) + 2
        if state.incarnation > ceiling:
            # Safety net: mark what's left as infra errors rather than
            # respawn forever.  Durable, so a resume will not loop here.
            for pair in remaining:
                self._record_infra_error(state, pair, returncode)
            state.done = True
            return

        obs.counter("service.shards_respawned").inc()
        obs.counter("service.submissions_requeued").inc(len(remaining))
        state.status.respawns += 1
        self._spawn(state)

    def _quarantine(self, state: _ShardState, pair: Tuple[str, str],
                    deaths: int) -> None:
        """Write the durable crash record that retires a shard-killer."""
        student, identifier = pair
        _obs_registry().counter("service.submissions_quarantined").inc()
        record = SubmissionRecord(
            student=student,
            suite=self.suite,
            timestamp=time.time(),
            tests=[
                TestRecord(
                    test_name="service",
                    score=0.0,
                    max_score=0.0,
                    fatal=(
                        f"submission {identifier!r} took its shard worker "
                        f"down {deaths} time(s); quarantined"
                    ),
                    failure_kind=FailureKind.CRASH.value,
                )
            ],
            failure_kind=FailureKind.CRASH.value,
            attempts=deaths,
            attempt_outcomes=[FailureKind.SIGNAL.value] * deaths,
        )
        GradingJournal(state.journal).append(
            JournalEntry(student=student, identifier=identifier, record=record)
        )
        state.status.quarantined.append(student)
        with self._progress_lock:
            self._progress_quarantined += 1
        self._emit("quarantine", shard=state.shard, student=student)
        self._emit_queue_depth()

    def _record_infra_error(self, state: _ShardState, pair: Tuple[str, str],
                            returncode: Optional[int]) -> None:
        student, identifier = pair
        record = SubmissionRecord(
            student=student,
            suite=self.suite,
            timestamp=time.time(),
            tests=[
                TestRecord(
                    test_name="service",
                    score=0.0,
                    max_score=0.0,
                    fatal=(
                        f"shard {state.shard} exhausted its respawn budget "
                        f"(last exit {returncode}); not graded"
                    ),
                    failure_kind=FailureKind.INFRA_ERROR.value,
                )
            ],
            failure_kind=FailureKind.INFRA_ERROR.value,
        )
        GradingJournal(state.journal).append(
            JournalEntry(student=student, identifier=identifier, record=record)
        )

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def _drain_workers(self, states: List[_ShardState]) -> None:
        """SIGTERM every live worker, wait for drains, kill stragglers."""
        for state in states:
            if state.alive:
                try:
                    state.proc.terminate()
                except OSError:  # pragma: no cover - racing exit
                    pass
        deadline = time.monotonic() + self.DRAIN_GRACE
        for state in states:
            if state.proc is None:
                continue
            while state.proc.poll() is None and time.monotonic() < deadline:
                time.sleep(self.POLL)
            if state.proc.poll() is None:
                self._kill(state)
            self._reap(state)
        for state in states:
            if state.done:
                continue
            state.status.interrupted = [
                student for student, _ in self._remaining(state)
            ]

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def _finalize(
        self,
        submissions: Dict[str, str],
        states: List[_ShardState],
        resumed: List[str],
    ) -> ServiceReport:
        book, stats = merge_shard_journals(
            [state.journal for state in states],
            suite=self.suite,
            order=list(submissions),
        )
        quarantined = sorted(
            student
            for state in states
            for student in state.status.quarantined
        )
        interrupted = sorted(
            student
            for state in states
            for student in state.status.interrupted
        )
        for state in states:
            durable = self._durable(state)
            state.status.graded = [
                student for student, _ in state.assigned if student in durable
            ]
        return ServiceReport(
            gradebook=book,
            shards=[state.status for state in states],
            merge=stats,
            resumed=resumed,
            quarantined=quarantined,
            interrupted=interrupted,
        )
