"""Instructor awareness: inferences over logged in-progress runs.

The paper (§1) motivates logged test results as a way for instructors to
"manually or automatically infer if the assignment is too easy or
difficult, or difficult only for a subset of identified students", and to
spot students "in apparent difficulty or [who] have taken the wrong
path".  This module makes those inferences concrete:

* per-aspect failure rates across the class — which *requirement* is the
  sticking point (syntax? interleaving? the race in result combination?);
* per-student trajectories — latest score, trend, and stuck-ness (many
  runs without improvement);
* an overall difficulty classification from the class's latest scores.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List

from repro.grading.logs import ProgressLog
from repro.grading.records import SubmissionRecord

__all__ = ["StudentProgress", "AwarenessReport", "analyze_progress"]

#: Runs without improvement after which a student counts as stuck.
STUCK_RUN_THRESHOLD = 3
#: Mean latest-percent boundaries for the difficulty classification.
TOO_EASY_MEAN = 90.0
TOO_HARD_MEAN = 50.0


@dataclass
class StudentProgress:
    """One student's trajectory through their logged runs."""

    student: str
    runs: int
    first_percent: float
    latest_percent: float
    best_percent: float
    runs_since_improvement: int
    recurring_failures: List[str] = field(default_factory=list)

    @property
    def improving(self) -> bool:
        return self.latest_percent > self.first_percent

    @property
    def stuck(self) -> bool:
        """Many runs without improvement while below full score."""
        return (
            self.latest_percent < 100.0
            and self.runs_since_improvement >= STUCK_RUN_THRESHOLD
        )


@dataclass
class AwarenessReport:
    """Class-level view an instructor acts on."""

    suite: str
    students: List[StudentProgress]
    aspect_failure_rates: Dict[str, float]
    mean_latest_percent: float

    @property
    def difficulty(self) -> str:
        """"too easy" / "appropriate" / "too hard" from latest scores."""
        if self.mean_latest_percent >= TOO_EASY_MEAN:
            return "too easy"
        if self.mean_latest_percent <= TOO_HARD_MEAN:
            return "too hard"
        return "appropriate"

    def stuck_students(self) -> List[StudentProgress]:
        return [s for s in self.students if s.stuck]

    def hardest_aspects(self, limit: int = 3) -> List[str]:
        ranked = sorted(
            self.aspect_failure_rates.items(), key=lambda kv: kv[1], reverse=True
        )
        return [aspect for aspect, rate in ranked[:limit] if rate > 0.0]

    def render(self) -> str:
        lines = [
            f"Awareness report for {self.suite!r}: assignment looks "
            f"{self.difficulty} (mean latest score "
            f"{self.mean_latest_percent:.0f}%)"
        ]
        hardest = self.hardest_aspects()
        if hardest:
            lines.append("  hardest requirements: " + ", ".join(hardest))
        for progress in self.students:
            marker = " <- STUCK" if progress.stuck else ""
            lines.append(
                f"  {progress.student:<20} {progress.runs:3d} runs, "
                f"{progress.first_percent:3.0f}% -> "
                f"{progress.latest_percent:3.0f}%{marker}"
            )
        return "\n".join(lines)


def _student_progress(student: str, history: List[SubmissionRecord]) -> StudentProgress:
    ordered = sorted(history, key=lambda r: r.timestamp)
    percents = [r.percent for r in ordered]
    best = max(percents)
    # Runs after the best score was *first* achieved: repeating the same
    # score is not progress, so a plateau counts toward stuck-ness.
    first_best = next(i for i, p in enumerate(percents) if p >= best)
    runs_since_improvement = len(percents) - 1 - first_best
    # Aspects that failed in at least half of this student's runs.
    failure_counts: Dict[str, int] = {}
    for record in ordered:
        for aspect in set(record.failed_aspects()):
            failure_counts[aspect] = failure_counts.get(aspect, 0) + 1
    recurring = sorted(
        aspect
        for aspect, count in failure_counts.items()
        if count * 2 >= len(ordered)
    )
    return StudentProgress(
        student=student,
        runs=len(ordered),
        first_percent=percents[0],
        latest_percent=percents[-1],
        best_percent=best,
        runs_since_improvement=runs_since_improvement,
        recurring_failures=recurring,
    )


def analyze_progress(log: ProgressLog, *, suite: str = "") -> AwarenessReport:
    """Build the class-level awareness report from a progress log."""
    entries = log.entries()
    if suite:
        entries = [e for e in entries if e.suite == suite]
    by_student: Dict[str, List[SubmissionRecord]] = {}
    for entry in entries:
        by_student.setdefault(entry.student, []).append(entry)

    students = [
        _student_progress(student, history)
        for student, history in sorted(by_student.items())
    ]

    # Aspect failure rates over each student's *latest* run: the current
    # state of the class, not its history.
    latest_runs = [
        max(history, key=lambda r: r.timestamp) for history in by_student.values()
    ]
    aspect_failures: Dict[str, int] = {}
    for record in latest_runs:
        for aspect in set(record.failed_aspects()):
            aspect_failures[aspect] = aspect_failures.get(aspect, 0) + 1
    rates = {
        aspect: count / len(latest_runs)
        for aspect, count in sorted(aspect_failures.items())
    }

    mean_latest = (
        statistics.mean(r.percent for r in latest_runs) if latest_runs else 0.0
    )
    return AwarenessReport(
        suite=suite or (entries[0].suite if entries else ""),
        students=students,
        aspect_failure_rates=rates,
        mean_latest_percent=mean_latest,
    )
