"""Checkpoint journal: one JSONL line per completed submission.

A batch over a whole class is long-running and interruptible — a
``KeyboardInterrupt``, a harness crash, an OOM-kill — and regrading
everything from scratch doubles the damage.  The journal is the
supervisor's write-ahead record: *after* each submission's grade is
final (all retries done), one self-contained JSON line is appended and
flushed to disk.  Resuming a batch against the same journal grades only
the students the journal does not cover, and the merged gradebook is
identical to the uninterrupted run's.

Crash tolerance is asymmetric by design: a torn *final* line is exactly
what an interrupted ``append`` leaves behind, so it is dropped silently;
a corrupt line anywhere *else* means the file was damaged some other
way, and silently skipping it would silently lose a student's grade —
that raises :class:`JournalError` instead.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.grading.records import SubmissionRecord

__all__ = ["GradingJournal", "JournalEntry", "JournalError"]


class JournalError(RuntimeError):
    """The journal file is damaged beyond the torn-tail case."""


@dataclass
class JournalEntry:
    """One completed (student, identifier) grading, as journaled."""

    student: str
    identifier: str
    record: SubmissionRecord

    def to_dict(self) -> dict:
        """Primitive-dict form for the JSONL line."""
        return {
            "student": self.student,
            "identifier": self.identifier,
            "record": self.record.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JournalEntry":
        """Rebuild from a parsed JSONL line (raises on missing keys)."""
        return cls(
            student=data["student"],
            identifier=data.get("identifier", ""),
            record=SubmissionRecord.from_dict(data["record"]),
        )


class GradingJournal:
    """Append-only JSONL checkpoint of a grading batch."""

    def __init__(self, path: Path | str) -> None:
        """Bind to the journal file at *path* (created on first append)."""
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Reading (resume)
    # ------------------------------------------------------------------
    def entries(self) -> List[JournalEntry]:
        """Every durable entry, oldest first.

        Tolerates a torn final line (the interrupted-write case); any
        other unparseable line raises :class:`JournalError`.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text().splitlines()
        entries: List[JournalEntry] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(JournalEntry.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if index == len(lines) - 1:
                    break  # torn tail from an interrupted append
                raise JournalError(
                    f"{self.path}: corrupt journal line {index + 1}: {exc}"
                ) from exc
        return entries

    def completed(self) -> Dict[str, JournalEntry]:
        """Latest entry per student — the set a resumed batch skips."""
        by_student: Dict[str, JournalEntry] = {}
        for entry in self.entries():
            by_student[entry.student] = entry
        return by_student

    def completed_students(self) -> List[str]:
        """Sorted students already covered by the journal."""
        return sorted(self.completed())

    def suite_name(self) -> Optional[str]:
        """Suite of the journaled batch (``None`` for an empty journal)."""
        entries = self.entries()
        return entries[0].record.suite if entries else None

    def __len__(self) -> int:
        return len(self.entries())

    # ------------------------------------------------------------------
    # Writing (checkpoint)
    # ------------------------------------------------------------------
    def append(self, entry: JournalEntry) -> None:
        """Durably append one completed submission.

        Opens, writes, flushes, fsyncs, closes per call: the journal is
        written once per *submission*, not per event, so durability wins
        over write batching.  Callers grading in parallel must serialize
        appends (the supervisor holds a lock around this).
        """
        line = json.dumps(entry.to_dict(), separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
