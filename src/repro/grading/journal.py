"""Checkpoint journal: one JSONL line per completed submission.

A batch over a whole class is long-running and interruptible — a
``KeyboardInterrupt``, a harness crash, an OOM-kill — and regrading
everything from scratch doubles the damage.  The journal is the
supervisor's write-ahead record: *after* each submission's grade is
final (all retries done), one self-contained JSON line is appended and
flushed to disk.  Resuming a batch against the same journal grades only
the students the journal does not cover, and the merged gradebook is
identical to the uninterrupted run's.

Crash tolerance is asymmetric by design: a torn or corrupt *final* line
is exactly what an interrupted ``append`` leaves behind (a shard worker
``SIGKILL``-ed between record and fsync leaves the same shape), so it is
dropped — with a :class:`JournalWarning` and an observability counter,
never silently, so the operator can see that one submission will be
regraded on resume.  A corrupt line anywhere *else* means the file was
damaged some other way, and silently skipping it would silently lose a
student's grade — that raises :class:`JournalError` instead.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.grading.records import SubmissionRecord
from repro.obs import get_registry as _obs_registry

__all__ = ["GradingJournal", "JournalEntry", "JournalError", "JournalWarning"]


class JournalError(RuntimeError):
    """The journal file is damaged beyond the torn-tail case."""


class JournalWarning(UserWarning):
    """A torn/corrupt trailing journal line was dropped (and warned)."""


@dataclass
class JournalEntry:
    """One completed (student, identifier) grading, as journaled."""

    student: str
    identifier: str
    record: SubmissionRecord

    def to_dict(self) -> dict:
        """Primitive-dict form for the JSONL line."""
        return {
            "student": self.student,
            "identifier": self.identifier,
            "record": self.record.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JournalEntry":
        """Rebuild from a parsed JSONL line (raises on missing keys)."""
        return cls(
            student=data["student"],
            identifier=data.get("identifier", ""),
            record=SubmissionRecord.from_dict(data["record"]),
        )


class GradingJournal:
    """Append-only JSONL checkpoint of a grading batch."""

    def __init__(self, path: Path | str) -> None:
        """Bind to the journal file at *path* (created on first append)."""
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Reading (resume)
    # ------------------------------------------------------------------
    def entries(self) -> List[JournalEntry]:
        """Every durable entry, oldest first.

        A torn or corrupt *final* line (the interrupted-write case) is
        dropped with a :class:`JournalWarning` — the affected submission
        is simply regraded by the resume instead of crashing it; the
        drop is also counted on the ``journal.torn_tail_dropped``
        observability counter.  Any other unparseable line raises
        :class:`JournalError`.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text().splitlines()
        entries: List[JournalEntry] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(JournalEntry.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if index == len(lines) - 1:
                    # Torn tail from an interrupted append: warn, drop,
                    # and let the resume regrade that one submission.
                    _obs_registry().counter("journal.torn_tail_dropped").inc()
                    warnings.warn(
                        f"{self.path}: dropping torn/corrupt trailing "
                        f"journal line {index + 1} ({exc}); the affected "
                        f"submission will be regraded on resume",
                        JournalWarning,
                        stacklevel=2,
                    )
                    break
                raise JournalError(
                    f"{self.path}: corrupt journal line {index + 1}: {exc}"
                ) from exc
        return entries

    def completed(self) -> Dict[str, JournalEntry]:
        """Latest entry per student — the set a resumed batch skips."""
        by_student: Dict[str, JournalEntry] = {}
        for entry in self.entries():
            by_student[entry.student] = entry
        return by_student

    def completed_students(self) -> List[str]:
        """Sorted students already covered by the journal."""
        return sorted(self.completed())

    def suite_name(self) -> Optional[str]:
        """Suite of the journaled batch (``None`` for an empty journal)."""
        entries = self.entries()
        return entries[0].record.suite if entries else None

    def __len__(self) -> int:
        return len(self.entries())

    # ------------------------------------------------------------------
    # Writing (checkpoint)
    # ------------------------------------------------------------------
    def append(self, entry: JournalEntry) -> None:
        """Durably append one completed submission.

        Opens, writes, flushes, fsyncs, closes per call: the journal is
        written once per *submission*, not per event, so durability wins
        over write batching.  Callers grading in parallel must serialize
        appends (the supervisor holds a lock around this).

        A torn tail left by an interrupted earlier append is
        :meth:`repair`-ed first — otherwise the new record would be
        glued onto the half-written line, turning a recoverable torn
        tail into unrecoverable mid-file corruption.
        """
        line = json.dumps(entry.to_dict(), separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._tail_unterminated():
            self.repair()
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _tail_unterminated(self) -> bool:
        """True when the journal's last byte is not a newline (torn tail)."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):
            # Missing or empty file: nothing to heal.
            return False

    def repair(self) -> bool:
        """Heal a torn trailing line in place; True when bytes changed.

        Exactly mirrors what :meth:`entries` tolerates on read, but
        makes the file safely *appendable* again:

        * a trailing line that parses but lacks its newline (the append
          was cut between the JSON and the terminator) gets the newline
          appended — the record survives;
        * a trailing line that does not parse (cut mid-JSON) is
          truncated away with a :class:`JournalWarning` — that one
          submission is simply regraded on resume.

        Corruption anywhere but the final line is *not* touched (see
        :class:`JournalError`): silently truncating there would discard
        good records written after the damage.
        """
        if not self.path.exists():
            return False
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        last = None
        for index in range(len(lines) - 1, -1, -1):
            if lines[index].strip():
                last = index
                break
        if last is None:
            return False
        tail = lines[last]
        terminated = last < len(lines) - 1
        try:
            JournalEntry.from_dict(json.loads(tail.decode("utf-8", "replace")))
            parses = True
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            parses = False
        if parses and terminated:
            return False
        if parses:
            # The record is whole; only its newline was lost.
            with self.path.open("ab") as handle:
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
            return True
        if terminated:
            # Newline-terminated garbage cannot come from a torn append
            # (the newline is the last byte written): leave it for
            # entries() to classify.
            return False
        offset = sum(len(line) + 1 for line in lines[:last])
        _obs_registry().counter("journal.torn_tail_repaired").inc()
        warnings.warn(
            f"{self.path}: truncating torn trailing journal line "
            f"{last + 1} before append; the affected submission will be "
            f"regraded on resume",
            JournalWarning,
            stacklevel=2,
        )
        with self.path.open("r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        return True
