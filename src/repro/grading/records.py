"""Plain-data records shared by the grading and awareness layers.

These are the serializable shadows of live results: what gets written to
gradebooks and progress logs, and what the awareness analysis reads back.
Keeping them as dicts-of-primitives (via ``to_dict``/``from_dict``) keeps
the JSON round-trip trivial and the analysis decoupled from the live
checker objects.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.testfw.result import AspectStatus, SuiteResult, TestResult

__all__ = ["AspectRecord", "TestRecord", "SubmissionRecord"]


@dataclass
class AspectRecord:
    """Serialized shadow of one graded aspect outcome."""

    aspect: str
    status: str
    message: str
    points_earned: float
    points_possible: float

    def to_dict(self) -> Dict[str, Any]:
        """Primitive-dict form for JSON serialization."""
        return {
            "aspect": self.aspect,
            "status": self.status,
            "message": self.message,
            "points_earned": self.points_earned,
            "points_possible": self.points_possible,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AspectRecord":
        """Rebuild from :meth:`to_dict` output (tolerant of omissions)."""
        return cls(
            aspect=data["aspect"],
            status=data["status"],
            message=data.get("message", ""),
            points_earned=float(data.get("points_earned", 0.0)),
            points_possible=float(data.get("points_possible", 0.0)),
        )

    @property
    def failed(self) -> bool:
        """True when this aspect was checked and failed."""
        return self.status == AspectStatus.FAILED.value

    @property
    def passed(self) -> bool:
        """True when this aspect was checked and passed."""
        return self.status == AspectStatus.PASSED.value


@dataclass
class TestRecord:
    """Serialized shadow of one test program's result."""

    test_name: str
    score: float
    max_score: float
    fatal: str = ""
    aspects: List[AspectRecord] = field(default_factory=list)
    #: Failure-taxonomy kind of the underlying execution (empty when the
    #: result predates the taxonomy or never ran a program).
    failure_kind: str = ""

    @classmethod
    def from_result(cls, result: TestResult) -> "TestRecord":
        """Snapshot a live :class:`TestResult` into plain data."""
        return cls(
            test_name=result.test_name,
            score=result.score,
            max_score=result.max_score,
            fatal=result.fatal,
            failure_kind=result.failure_kind,
            aspects=[
                AspectRecord(
                    aspect=o.aspect,
                    status=o.status.value,
                    message=o.message,
                    points_earned=o.points_earned,
                    points_possible=o.points_possible,
                )
                for o in result.outcomes
            ],
        )

    def to_dict(self) -> Dict[str, Any]:
        """Primitive-dict form for JSON serialization."""
        return {
            "test_name": self.test_name,
            "score": self.score,
            "max_score": self.max_score,
            "fatal": self.fatal,
            "failure_kind": self.failure_kind,
            "aspects": [a.to_dict() for a in self.aspects],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TestRecord":
        """Rebuild from :meth:`to_dict` output (tolerant of omissions)."""
        return cls(
            test_name=data["test_name"],
            score=float(data["score"]),
            max_score=float(data["max_score"]),
            fatal=data.get("fatal", ""),
            failure_kind=data.get("failure_kind", ""),
            aspects=[AspectRecord.from_dict(a) for a in data.get("aspects", [])],
        )

    @property
    def percent(self) -> float:
        """Score as a percentage of the maximum (0.0 when unscored)."""
        return 100.0 * self.score / self.max_score if self.max_score else 0.0

    def failed_aspects(self) -> List[str]:
        """Names of the aspects that failed, in check order."""
        return [a.aspect for a in self.aspects if a.failed]


@dataclass
class SubmissionRecord:
    """One student's (or one variant's) graded suite at one point in time."""

    student: str
    suite: str
    timestamp: float
    tests: List[TestRecord] = field(default_factory=list)
    #: Free-form tag: "final" for submissions, "progress" for in-progress
    #: self-test runs logged for instructor awareness.
    kind: str = "final"
    #: Failure-taxonomy kind for the submission as a whole (``"ok"``,
    #: ``"flaky-pass"``, ``"timeout"``, ``"crash"``, ``"signal"``,
    #: ``"garbled-trace"``, ``"infra-error"``).
    failure_kind: str = "ok"
    #: How many grading attempts this record reflects (> 1 after retries).
    attempts: int = 1
    #: Per-attempt failure kinds, oldest first — the rerun-vote history
    #: that lets a grader tell "deterministically wrong" from "flaky".
    attempt_outcomes: List[str] = field(default_factory=list)
    #: Seed of the controlled schedule under which the recorded failure
    #: reproduces (``None`` for free-running grades); an instructor can
    #: replay the student's race with ``explore --seed <seed>``.
    schedule_seed: Optional[int] = None
    #: Which schedule family exploration used (``"random-walk"``,
    #: ``"pct"``, ``"exhaustive"``; empty when the grade never explored).
    schedule_strategy: str = ""
    #: Exhaustive exploration coverage: how many of the
    #: ``interleavings_total`` distinct interleavings failed (N of M).
    #: ``None`` for seeded strategies, which sample instead of counting.
    interleavings_failing: Optional[int] = None
    #: Exhaustive exploration coverage: distinct interleavings
    #: enumerated within the preemption bound (M).
    interleavings_total: Optional[int] = None
    #: The exhaustive enumeration covered the whole bound (``False``
    #: when the execution budget capped it, so M is a lower bound).
    interleavings_complete: bool = False
    #: Three-way race-aware verdict (``"correct"`` / ``"racy-lucky"`` /
    #: ``"wrong"``); empty when race detection was off for this grade.
    concurrency_verdict: str = ""
    #: Distinct racing pairs found by lockset/happens-before analysis.
    race_count: int = 0
    #: Human-facing labels of the racing pairs (capped upstream), e.g.
    #: ``worker-0@3(checkpoint,unlocked) × worker-1@7(checkpoint,unlocked)``.
    race_pairs: List[str] = field(default_factory=list)
    #: Why (and how) race-aware credit adjusted this record's score —
    #: empty when ``--race-credit`` was off or no adjustment applied.
    race_note: str = ""
    #: Per-lock traffic dicts (``lock``/``acquisitions``/``blocks``/
    #: ``try_failures``) summed across the analyzed schedules — the
    #: contention table the HTML timing report renders.
    race_contention: List[Dict[str, Any]] = field(default_factory=list)
    #: Monotonic seconds since the grading batch started (``time.time``
    #: wall timestamps above can jump with clock adjustments; this field
    #: is what resume-ordering may rely on).
    elapsed: float = 0.0

    @classmethod
    def from_suite_result(
        cls,
        student: str,
        result: SuiteResult,
        *,
        kind: str = "final",
        timestamp: float | None = None,
        failure_kind: str = "ok",
        attempts: int = 1,
        attempt_outcomes: List[str] | None = None,
        schedule_seed: Optional[int] = None,
        schedule_strategy: str = "",
        interleavings_failing: Optional[int] = None,
        interleavings_total: Optional[int] = None,
        interleavings_complete: bool = False,
        concurrency_verdict: str = "",
        race_count: int = 0,
        race_pairs: List[str] | None = None,
        race_note: str = "",
        race_contention: List[Dict[str, Any]] | None = None,
        elapsed: float = 0.0,
    ) -> "SubmissionRecord":
        """Snapshot a live :class:`SuiteResult` into plain data."""
        return cls(
            student=student,
            suite=result.suite_name,
            timestamp=time.time() if timestamp is None else timestamp,
            tests=[TestRecord.from_result(r) for r in result.results],
            kind=kind,
            failure_kind=failure_kind,
            attempts=attempts,
            attempt_outcomes=list(attempt_outcomes or []),
            schedule_seed=schedule_seed,
            schedule_strategy=schedule_strategy,
            interleavings_failing=interleavings_failing,
            interleavings_total=interleavings_total,
            interleavings_complete=interleavings_complete,
            concurrency_verdict=concurrency_verdict,
            race_count=race_count,
            race_pairs=list(race_pairs or []),
            race_note=race_note,
            race_contention=[dict(c) for c in race_contention or []],
            elapsed=elapsed,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Primitive-dict form for JSON serialization."""
        return {
            "student": self.student,
            "suite": self.suite,
            "timestamp": self.timestamp,
            "elapsed": self.elapsed,
            "kind": self.kind,
            "failure_kind": self.failure_kind,
            "attempts": self.attempts,
            "attempt_outcomes": list(self.attempt_outcomes),
            "schedule_seed": self.schedule_seed,
            "schedule_strategy": self.schedule_strategy,
            "interleavings_failing": self.interleavings_failing,
            "interleavings_total": self.interleavings_total,
            "interleavings_complete": self.interleavings_complete,
            "concurrency_verdict": self.concurrency_verdict,
            "race_count": self.race_count,
            "race_pairs": list(self.race_pairs),
            "race_note": self.race_note,
            "race_contention": [dict(c) for c in self.race_contention],
            "tests": [t.to_dict() for t in self.tests],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SubmissionRecord":
        """Rebuild from :meth:`to_dict` output (tolerant of omissions)."""
        seed = data.get("schedule_seed")
        failing = data.get("interleavings_failing")
        total = data.get("interleavings_total")
        return cls(
            student=data["student"],
            suite=data["suite"],
            timestamp=float(data.get("timestamp", 0.0)),
            elapsed=float(data.get("elapsed", 0.0)),
            kind=data.get("kind", "final"),
            failure_kind=data.get("failure_kind", "ok"),
            attempts=int(data.get("attempts", 1)),
            attempt_outcomes=list(data.get("attempt_outcomes", [])),
            schedule_seed=None if seed is None else int(seed),
            schedule_strategy=data.get("schedule_strategy", ""),
            interleavings_failing=None if failing is None else int(failing),
            interleavings_total=None if total is None else int(total),
            interleavings_complete=bool(data.get("interleavings_complete", False)),
            concurrency_verdict=data.get("concurrency_verdict", ""),
            race_count=int(data.get("race_count", 0)),
            race_pairs=[str(p) for p in data.get("race_pairs", [])],
            race_note=data.get("race_note", ""),
            race_contention=[dict(c) for c in data.get("race_contention", [])],
            tests=[TestRecord.from_dict(t) for t in data.get("tests", [])],
        )

    @property
    def score(self) -> float:
        """Points earned across all tests of the suite."""
        return sum(t.score for t in self.tests)

    @property
    def max_score(self) -> float:
        """Points possible across all tests of the suite."""
        return sum(t.max_score for t in self.tests)

    @property
    def percent(self) -> float:
        """Score as a percentage of the maximum (0.0 when unscored)."""
        return 100.0 * self.score / self.max_score if self.max_score else 0.0

    @property
    def racy(self) -> bool:
        """True when the failure reproduces under a recorded schedule —
        deterministic, replayable, and therefore *not* flaky.

        Seeded exploration pins a failing seed; exhaustive exploration
        instead counts failing interleavings, and any nonzero count is
        just as replayable (the first failing trace is recorded).
        """
        return self.schedule_seed is not None or bool(self.interleavings_failing)

    @property
    def flaky(self) -> bool:
        """True when attempts disagreed — the grade is schedule-dependent.

        A racy record (failing schedule seed attached) is excluded: its
        attempts disagreed, but exploration pinned the failure to a
        deterministic, replayable schedule, so nobody needs to eyeball it.
        """
        if self.racy:
            return False
        if self.failure_kind == "flaky-pass":
            return True
        # The ``@s<seed>`` suffix marks *which* controlled schedule an
        # attempt ran under, not a different outcome: a race sweep whose
        # every schedule passed must not read as disagreement.
        outcomes = {o.split("@s", 1)[0] for o in self.attempt_outcomes}
        return len(outcomes) > 1

    def schedule_tag(self) -> str:
        """Short racy-provenance label for gradebooks, ``""`` when none.

        ``@seed 7`` for a seeded strategy's pinned failing schedule;
        ``3 of 26 interleavings fail`` for an exhaustive verdict (a
        trailing ``+`` marks a budget-capped, hence partial, count).
        """
        if self.interleavings_total is not None and self.interleavings_failing:
            cap = "" if self.interleavings_complete else "+"
            return (
                f"{self.interleavings_failing} of "
                f"{self.interleavings_total}{cap} interleavings fail"
            )
        if self.schedule_seed is not None:
            return f"@seed {self.schedule_seed}"
        return ""

    @property
    def racy_lucky(self) -> bool:
        """True when every explored schedule passed but race analysis
        found a race — the answer was right by scheduling luck."""
        return self.concurrency_verdict == "racy-lucky"

    def race_tag(self) -> str:
        """Short race-evidence label for gradebooks, ``""`` when none.

        Names the first racing pair so reports can point at the exact
        property-write pair, e.g. ``2 races: worker-0@3(checkpoint,
        unlocked) × worker-1@7(checkpoint,unlocked)``.
        """
        if not self.race_count:
            return ""
        first = self.race_pairs[0] if self.race_pairs else ""
        label = f"{self.race_count} race" + ("s" if self.race_count != 1 else "")
        return f"{label}: {first}" if first else label

    def failed_aspects(self) -> List[str]:
        """Names of every failed aspect across the suite, in order."""
        aspects: List[str] = []
        for test in self.tests:
            aspects.extend(test.failed_aspects())
        return aspects
