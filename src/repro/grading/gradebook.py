"""Gradebooks: persistent per-student scores (the Gradescope analogue).

Students "confident that they have met all requirements can simply submit
their solution" (§4.1); the gradebook is where those submissions land.
It is a JSON file mapping students to their best and latest submission
records, plus simple class-level statistics an instructor reads first.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.grading.records import SubmissionRecord

__all__ = ["Gradebook"]


class Gradebook:
    """Submission store for one assignment (suite)."""

    def __init__(self, suite: str) -> None:
        """Create an empty gradebook for the named assignment suite."""
        self.suite = suite
        self._submissions: Dict[str, List[SubmissionRecord]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, submission: SubmissionRecord) -> None:
        """File one submission; rejects records for another suite."""
        if submission.suite != self.suite:
            raise ValueError(
                f"submission is for suite {submission.suite!r}, gradebook "
                f"is for {self.suite!r}"
            )
        self._submissions.setdefault(submission.student, []).append(submission)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def students(self) -> List[str]:
        """All students with at least one submission, sorted."""
        return sorted(self._submissions)

    def submissions_of(self, student: str) -> List[SubmissionRecord]:
        """One student's full submission history (a copy)."""
        return list(self._submissions.get(student, []))

    def latest(self, student: str) -> Optional[SubmissionRecord]:
        """The student's most recent submission, or ``None``."""
        history = self._submissions.get(student)
        if not history:
            return None
        return max(history, key=lambda s: s.timestamp)

    def best(self, student: str) -> Optional[SubmissionRecord]:
        """The student's highest-scoring submission (latest on ties)."""
        history = self._submissions.get(student)
        if not history:
            return None
        return max(history, key=lambda s: (s.score, s.timestamp))

    def class_percentages(self) -> Dict[str, float]:
        """Each student's best percentage — the instructor's first look."""
        return {
            student: best.percent
            for student in self.students()
            if (best := self.best(student)) is not None
        }

    def mean_percent(self) -> float:
        """Class mean of the best-submission percentages."""
        percentages = list(self.class_percentages().values())
        return sum(percentages) / len(percentages) if percentages else 0.0

    def failure_kinds(self) -> Dict[str, str]:
        """Each student's latest failure-taxonomy kind."""
        return {
            student: latest.failure_kind
            for student in self.students()
            if (latest := self.latest(student)) is not None
        }

    def flaky_students(self) -> List[str]:
        """Students whose latest grade is schedule-dependent (rerun-vote
        attempts disagreed) — the ones a grader should eyeball."""
        return [
            student
            for student in self.students()
            if (latest := self.latest(student)) is not None and latest.flaky
        ]

    def racy_students(self) -> List[str]:
        """Students whose latest failure reproduces under a recorded
        schedule seed — deterministic races an instructor can replay."""
        return [
            student
            for student in self.students()
            if (latest := self.latest(student)) is not None and latest.racy
        ]

    def racy_lucky_students(self) -> List[str]:
        """Students whose latest grade passed every explored schedule
        but carries race evidence — right answers by scheduling luck."""
        return [
            student
            for student in self.students()
            if (latest := self.latest(student)) is not None
            and latest.racy_lucky
        ]

    def failed_students(self) -> List[str]:
        """Students whose latest run ended in a hard failure kind
        (timeout / crash / signal / garbled-trace / infra-error)."""
        return [
            student
            for student, kind in self.failure_kinds().items()
            if kind not in ("ok", "flaky-pass")
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Path | str) -> None:
        """Write the whole gradebook (all histories) as one JSON file."""
        payload = {
            "suite": self.suite,
            "submissions": {
                student: [s.to_dict() for s in history]
                for student, history in self._submissions.items()
            },
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: Path | str) -> "Gradebook":
        """Rebuild a gradebook from a :meth:`save`'d JSON file."""
        payload = json.loads(Path(path).read_text())
        book = cls(payload["suite"])
        for student, history in payload.get("submissions", {}).items():
            for record in history:
                book._submissions.setdefault(student, []).append(
                    SubmissionRecord.from_dict(record)
                )
        return book

    def render(self) -> str:
        """Plain-text class summary with failure-kind / racy tags."""
        lines = [f"Gradebook: {self.suite} (mean {self.mean_percent():.0f}%)"]
        kinds = self.failure_kinds()
        for student, percent in sorted(self.class_percentages().items()):
            line = f"  {student:<24} {percent:6.1f}%"
            kind = kinds.get(student, "ok")
            latest = self.latest(student)
            schedule = latest.schedule_tag() if latest is not None else ""
            race = latest.race_tag() if latest is not None else ""
            if kind != "ok":
                tag = kind
                if schedule:
                    tag += f" {schedule}"
                line += f"  [{tag}]"
            elif schedule:
                line += f"  [racy {schedule}]"
            # Racy-lucky stands on its own: it can coincide with a
            # flaky-pass kind (free run failed, every schedule passed).
            if latest is not None and latest.racy_lucky:
                line += f"  [racy-lucky {race}]"
                race = ""
            if race:
                line += f"  [{race}]"
            if latest is not None and latest.race_note:
                line += f"  ({latest.race_note})"
            lines.append(line)
        return "\n".join(lines)
