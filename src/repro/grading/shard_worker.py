"""Shard worker: one OS process grading one slice of a batch.

The sharded grading service (:mod:`repro.grading.service`) splits a
submission batch across independent worker *processes*; this module is
the worker's entry point, launched as::

    python -m repro.grading.shard_worker <manifest.json>

The manifest names the problem suite, the ordered (student, identifier)
slice, the shard's own JSONL journal, the supervisor knobs, and an
optional :class:`~repro.execution.faults.ShardFaultProgram` for the
crash drills.  The worker runs its slice under a bounded
:class:`~repro.execution.supervisor.GradingSupervisor` whose journal is
the shard journal, so every finished submission is durable the moment it
is graded and a respawned incarnation resumes from the journal
automatically.

**Heartbeats.**  The coordinator holds the worker's stdout pipe; the
worker emits one JSON event line (prefixed ``@shard-event``) per
heartbeat interval and per graded submission, written straight to a
duplicated stdout *file descriptor* — the in-process tracing layer
patches ``sys.stdout`` during runs, and tested-program prints must never
be able to impersonate (or garble) a heartbeat.  Silence longer than the
coordinator's timeout means the worker is dead or wedged either way, and
it is hard-killed and respawned.

**Telemetry.**  The manifest's ``obs`` block carries the fleet trace
context (run id, this incarnation's ``service.shard`` span id in the
coordinator, a sidecar path).  The worker installs it as its
:class:`~repro.obs.context.TraceContext` and appends every completed
span to the crash-safe sidecar JSONL file as it finishes — so even a
``kill -9`` mid-batch leaves the finished spans on disk for
:func:`repro.obs.merge.merge_workdir` to stitch under the
coordinator's trace.

**Drain.**  ``SIGTERM``/``SIGINT`` trigger a graceful drain: queued
submissions are dropped (they stay resumable — the journal simply does
not cover them), in-flight attempts finish and are journaled, a final
``drained`` event lists the remainder, and the worker exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.execution.faults import ShardFaultProgram
from repro.execution.supervisor import GradingSupervisor
from repro.grading.journal import GradingJournal, JournalEntry

__all__ = ["main", "EVENT_PREFIX", "ShardManifest"]

#: Sentinel prefix of every worker->coordinator event line.  Anything
#: else appearing on the worker's stdout (tested-program prints, student
#: noise) is ignored by the coordinator's reader.
EVENT_PREFIX = "@shard-event "


class ShardManifest:
    """Parsed form of one shard's JSON manifest."""

    def __init__(self, data: Dict[str, Any]) -> None:
        """Pick the manifest fields out of the parsed JSON dict."""
        self.shard: int = int(data["shard"])
        self.suite: str = data["suite"]
        self.subprocess_mode: bool = bool(data.get("subprocess", False))
        self.submissions: List[List[str]] = [
            [student, identifier]
            for student, identifier in data["submissions"]
        ]
        self.journal: Path = Path(data["journal"])
        self.supervisor: Dict[str, Any] = dict(data.get("supervisor", {}))
        self.heartbeat_interval: float = float(
            data.get("heartbeat_interval", 0.5)
        )
        self.fault = ShardFaultProgram.from_dict(data.get("fault"))
        #: Fleet trace context: run id, parent span, sidecar path.
        self.obs: Dict[str, Any] = dict(data.get("obs", {}))

    @classmethod
    def load(cls, path: Path | str) -> "ShardManifest":
        """Read and parse a manifest file."""
        return cls(json.loads(Path(path).read_text()))


class _EventStream:
    """Worker->coordinator event lines over a raw, unpatchable fd."""

    def __init__(self) -> None:
        # Duplicate stdout *now*, before any tracing layer patches
        # sys.stdout: events must bypass whatever the graded programs
        # print through.
        self._fd = os.dup(1)
        self._lock = threading.Lock()

    def emit(self, event: str, **fields: Any) -> None:
        """Write one prefixed JSON event line, atomically and unbuffered."""
        payload = {"event": event, **fields}
        line = EVENT_PREFIX + json.dumps(payload, separators=(",", ":")) + "\n"
        with self._lock:
            try:
                os.write(self._fd, line.encode())
            except OSError:  # pragma: no cover - coordinator went away
                pass


class _ServiceJournal(GradingJournal):
    """The shard journal, with fault hooks and per-append events.

    Appends are serialized by the supervisor's journal lock, so the
    append index is a faithful sequence number for the fault programs
    and the ``graded`` progress events.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        events: _EventStream,
        fault: ShardFaultProgram,
        stalled: threading.Event,
        offset: int = 0,
    ) -> None:
        """Wrap the journal at *path* with fault/event instrumentation."""
        super().__init__(path)
        self._events = events
        self._fault = fault
        self._stalled = stalled
        self._count = offset

    def append(self, entry: JournalEntry) -> None:
        """Append one record, firing any scripted process-level fault."""
        index = self._count
        self._fault.fire_before_append(index)
        if self._fault.kind == "torn-journal-write" and index == self._fault.index:
            line = json.dumps(entry.to_dict(), separators=(",", ":"))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                self._fault.fire_torn_append(index, line, handle)
            raise AssertionError("torn-journal-write fault must not return")
        super().append(entry)
        self._count = index + 1
        self._events.emit(
            "graded",
            student=entry.student,
            graded=self._count,
            failure_kind=entry.record.failure_kind,
            score=entry.record.score,
            max_score=entry.record.max_score,
        )
        if self._fault.stalls_after(index):
            # Scripted wedge: heartbeats stop, the worker stays alive
            # and silent, and only the coordinator's missed-heartbeat
            # watchdog can end it.
            self._stalled.set()
            while True:  # pragma: no cover - only ever exits by SIGKILL
                time.sleep(3600)


def _heartbeat_loop(
    events: _EventStream,
    interval: float,
    stop: threading.Event,
    stalled: threading.Event,
) -> None:
    while not stop.wait(interval):
        if stalled.is_set():
            return
        events.emit("heartbeat", ts=round(time.monotonic(), 3))


def main(argv: Optional[List[str]] = None) -> int:
    """Run one shard to completion (or drain); returns the exit status."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.grading.shard_worker <manifest.json>",
              file=sys.stderr)
        return 2
    manifest = ShardManifest.load(argv[0])

    import repro.workloads  # noqa: F401 - registers every tested program

    from repro.graders import build_named_suite
    from repro.obs import get_registry
    from repro.obs.context import TraceContext, set_context
    from repro.obs.export import SidecarWriter

    # Install this worker's fleet identity before any span is opened:
    # the sidecar meta line and every exported span carry it, and the
    # merge layer stitches this process's roots under the coordinator's
    # `service.shard` span named here.
    obs_cfg = manifest.obs
    context = TraceContext(
        run_id=str(obs_cfg.get("run_id", "")),
        role="shard",
        shard=manifest.shard,
        incarnation=int(obs_cfg.get("incarnation", 0) or 0),
        parent_process=str(obs_cfg.get("parent_process", "coordinator")),
        parent_span_id=obs_cfg.get("parent_span_id"),
    )
    set_context(context)
    registry = get_registry()
    sidecar = None
    if obs_cfg.get("enabled") and obs_cfg.get("sidecar") and registry.enabled:
        sidecar = SidecarWriter(
            obs_cfg["sidecar"], registry=registry, context=context
        )
        registry.add_span_sink(sidecar.on_span)

    events = _EventStream()
    stalled = threading.Event()
    journal = _ServiceJournal(
        manifest.journal,
        events=events,
        fault=manifest.fault,
        stalled=stalled,
        offset=len(GradingJournal(manifest.journal).completed()),
    )

    opts = manifest.supervisor
    pool = None
    pool_size = int(opts.get("pool_size", 0))
    if pool_size > 0:
        # The shard reuses the pre-forked worker pool: one set of warm
        # interpreters per incarnation, shared by all grading jobs.
        from repro.execution.worker_pool import WorkerPool

        pool = WorkerPool(pool_size)
    supervisor = GradingSupervisor(
        lambda identifier: build_named_suite(
            manifest.suite,
            identifier,
            subprocess_mode=manifest.subprocess_mode,
        ),
        jobs=int(opts.get("jobs", 1)),
        retries=int(opts.get("retries", 0)),
        deadline=opts.get("deadline"),
        journal=journal,
        explore_schedules=int(opts.get("explore_schedules", 0)),
        explore_seed=int(opts.get("explore_seed", 0)),
        explore_strategy=str(opts.get("explore_strategy", "random-walk")),
        explore_depth=int(opts.get("explore_depth", 3)),
        pool=pool,
        dedup=bool(opts.get("dedup", False)),
        race_detect=bool(opts.get("race_detect", False)),
        race_credit=bool(opts.get("race_credit", False)),
    )

    drained = threading.Event()

    def _drain(signum: int, frame: Any) -> None:
        # Never touch supervisor locks from a signal handler: the main
        # thread may hold them.  A helper thread drains instead.
        if drained.is_set():
            return
        drained.set()
        threading.Thread(
            target=supervisor.request_stop, name="shard-drainer", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    stop_heartbeat = threading.Event()
    heartbeat = threading.Thread(
        target=_heartbeat_loop,
        args=(events, manifest.heartbeat_interval, stop_heartbeat, stalled),
        name="shard-heartbeat",
        daemon=True,
    )
    heartbeat.start()
    events.emit("hello", shard=manifest.shard, pid=os.getpid(),
                submissions=len(manifest.submissions))

    try:
        report = supervisor.grade(
            {student: identifier for student, identifier in manifest.submissions}
        )
    finally:
        stop_heartbeat.set()
        if pool is not None:
            pool.shutdown()
        if sidecar is not None:
            # Clean shutdown: metric aggregates join the spans already
            # flushed line-by-line (a kill -9 keeps the spans only).
            sidecar.flush_metrics()
            sidecar.close()

    if drained.is_set():
        durable = set(journal.completed())
        remaining = [
            student
            for student, _ in manifest.submissions
            if student not in durable
        ]
        events.emit("drained", remaining=remaining,
                    graded=len(report.outcomes))
    else:
        events.emit("done", graded=len(report.outcomes))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a process
    sys.exit(main())
