"""Queries over event logs used by the fork-join concurrency checks.

These are the questions the paper's event-database layer answers for the
testing program: how many distinct threads announced events (within a
selected range), whether the announcements of those threads were
*interleaved* or serialized, and how evenly work was spread over threads.
They are pure functions over event sequences so they can be unit- and
property-tested in isolation from the interception machinery.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

from repro.eventdb.events import PropertyEvent

__all__ = [
    "distinct_threads",
    "distinct_thread_ids",
    "events_by_thread",
    "thread_spans",
    "interleaved_thread_pairs",
    "is_interleaved",
    "serialization_order",
    "load_counts",
    "is_load_balanced",
    "max_load_imbalance",
]


def distinct_threads(events: Sequence[PropertyEvent]) -> List[threading.Thread]:
    """Threads that produced at least one event, in first-output order."""
    seen: "OrderedDict[int, threading.Thread]" = OrderedDict()
    for event in events:
        seen.setdefault(id(event.thread), event.thread)
    return list(seen.values())


def distinct_thread_ids(events: Sequence[PropertyEvent]) -> List[int]:
    """Registry ids of event-producing threads, in first-output order."""
    seen: List[int] = []
    for event in events:
        if event.thread_id not in seen:
            seen.append(event.thread_id)
    return seen


def events_by_thread(
    events: Sequence[PropertyEvent],
) -> "OrderedDict[int, List[PropertyEvent]]":
    """Partition *events* into per-thread sub-streams.

    Keys are thread ids in first-output order; each value preserves the
    global ordering of that thread's events.
    """
    grouped: "OrderedDict[int, List[PropertyEvent]]" = OrderedDict()
    for event in events:
        grouped.setdefault(event.thread_id, []).append(event)
    return grouped


def thread_spans(events: Sequence[PropertyEvent]) -> Dict[int, Tuple[int, int]]:
    """Map thread id -> (first seq, last seq) over its events."""
    spans: Dict[int, Tuple[int, int]] = {}
    for event in events:
        first, last = spans.get(event.thread_id, (event.seq, event.seq))
        spans[event.thread_id] = (min(first, event.seq), max(last, event.seq))
    return spans


def interleaved_thread_pairs(
    events: Sequence[PropertyEvent],
) -> List[Tuple[int, int]]:
    """Pairs of thread ids whose events genuinely interleave.

    Two threads are *interleaved* when at least one event of one falls
    strictly inside the ``(first, last)`` span of the other — i.e.
    ``a_first < b_seq < a_last`` for some event of B, or vice versa.  For
    logs with globally unique sequence numbers (every database-produced
    log) this is equivalent to closed-interval span intersection, since
    distinct threads can never share an endpoint seq; for hand-built
    logs where two threads touch at a boundary seq, the strict test is
    authoritative: boundary contact alone is still a serialization.
    """
    spans = thread_spans(events)
    streams = events_by_thread(events)
    seqs: Dict[int, List[int]] = {
        tid: sorted(e.seq for e in stream) for tid, stream in streams.items()
    }

    def strictly_inside(inner: List[int], first: int, last: int) -> bool:
        # Any seq of `inner` in the open interval (first, last)?
        idx = bisect_right(inner, first)
        return idx < len(inner) and inner[idx] < last

    ids = sorted(spans)
    pairs: List[Tuple[int, int]] = []
    for i, a in enumerate(ids):
        a_first, a_last = spans[a]
        for b in ids[i + 1 :]:
            b_first, b_last = spans[b]
            if a_first > b_last or b_first > a_last:
                continue  # disjoint spans: cheap rejection first
            if strictly_inside(seqs[b], a_first, a_last) or strictly_inside(
                seqs[a], b_first, b_last
            ):
                pairs.append((a, b))
    return pairs


def is_interleaved(events: Sequence[PropertyEvent]) -> bool:
    """True when the event-producing threads genuinely interleaved.

    A single-threaded (or empty) event stream is trivially *not*
    interleaved.  With two or more threads, we require at least one pair
    of threads with overlapping spans; a fully serialized schedule — each
    thread's entire output block preceding the next thread's — has no
    overlapping pair, which is exactly the mistake Fig. 10 of the paper
    flags.
    """
    if len(distinct_thread_ids(events)) < 2:
        return False
    return bool(interleaved_thread_pairs(events))


def serialization_order(events: Sequence[PropertyEvent]) -> List[int]:
    """If the threads were fully serialized, their execution order.

    Returns the thread ids in span order when no pair interleaves; returns
    an empty list when any pair interleaves (no total serialization order
    exists).  Used to phrase the Fig. 10 error message "execution of the
    threads is serialized in the order ...".
    """
    spans = thread_spans(events)
    if not spans:
        return []
    if interleaved_thread_pairs(events):
        return []
    return sorted(spans, key=lambda tid: spans[tid][0])


def load_counts(
    events: Sequence[PropertyEvent],
    *,
    per_iteration_events: int = 1,
) -> Dict[int, int]:
    """Iterations performed per thread, from its event count.

    Each iteration of the fork phase prints a fixed-size tuple of
    properties (``per_iteration_events`` of them), so dividing a thread's
    iteration-phase event count by the tuple size yields its iteration
    count.  Remainders indicate a torn tuple and are counted as a partial
    iteration (rounded up) so imbalance is never hidden by truncation.
    """
    if per_iteration_events < 1:
        raise ValueError("per_iteration_events must be >= 1")
    counts: Dict[int, int] = {}
    for tid, stream in events_by_thread(events).items():
        n = len(stream)
        counts[tid] = -(-n // per_iteration_events)  # ceil division
    return counts


def max_load_imbalance(counts: Dict[int, int]) -> int:
    """Difference between the most- and least-loaded thread."""
    if not counts:
        return 0
    values = list(counts.values())
    return max(values) - min(values)


def is_load_balanced(counts: Dict[int, int], *, tolerance: int = 1) -> bool:
    """True when loads are "as balanced as they can be".

    With ``n`` iterations over ``t`` threads the best achievable spread is
    ``ceil(n/t)`` vs ``floor(n/t)``, i.e. a max-min difference of at most
    1; *tolerance* generalizes this for checkers that allow slack.
    """
    return max_load_imbalance(counts) <= tolerance
