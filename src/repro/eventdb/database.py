"""Append-only, thread-safe store of trace events.

This is the "event database" layer the paper describes: it (a) observes
all events announced by the tested program's prints, (b) stores each event
with the thread object that announced it, and (c) answers the queries the
fork-join checker needs — how many threads produced events in a range, and
whether those threads' events were interleaved (see
:mod:`repro.eventdb.queries`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.eventdb.events import PropertyEvent, make_event
from repro.util.thread_registry import ThreadRegistry

__all__ = ["EventDatabase"]


class EventDatabase:
    """Totally ordered event log with per-thread sub-streams.

    Events are appended under a lock, which both assigns the global
    sequence number and guarantees observers of the log see a consistent
    order.  The database is an observer of the print interceptor in the
    sense of :class:`repro.tracing.observable.PrintObserver`, but it also
    exposes :meth:`record` directly so it can be used standalone (e.g. in
    unit tests of the query layer).
    """

    def __init__(self, registry: Optional[ThreadRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._events: List[PropertyEvent] = []
        self._per_thread_counts: Dict[int, int] = {}
        self.registry = registry if registry is not None else ThreadRegistry()
        #: Identity of the controlled schedule this run executes under
        #: (stamped onto every event); empty for free-running runs.
        self.schedule_id: str = ""

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        value: Any,
        raw_line: str,
        *,
        thread: Optional[threading.Thread] = None,
        explicit: bool = True,
    ) -> PropertyEvent:
        """Append one event and return it.

        The announcing thread defaults to the calling thread; this is the
        normal path, since observers are notified synchronously on the
        printing thread.
        """
        if thread is None:
            thread = threading.current_thread()
        thread_id = self.registry.id_for(thread)
        now = time.monotonic()
        with self._lock:
            seq = len(self._events)
            thread_seq = self._per_thread_counts.get(thread_id, 0)
            self._per_thread_counts[thread_id] = thread_seq + 1
            event = make_event(
                seq=seq,
                thread=thread,
                thread_id=thread_id,
                name=name,
                value=value,
                raw_line=raw_line,
                explicit=explicit,
                timestamp=now,
                thread_seq=thread_seq,
                schedule_id=self.schedule_id,
            )
            self._events.append(event)
        return event

    def notify(self, event: PropertyEvent) -> None:
        """Observer-protocol entry point: re-record an announced event.

        Used when the database is chained behind another announcing
        component; the event's payload is preserved but it is re-sequenced
        into this database's total order.
        """
        self.record(
            event.name,
            event.value,
            event.raw_line,
            thread=event.thread,
            explicit=event.explicit,
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> List[PropertyEvent]:
        """A point-in-time copy of the full event log, in global order."""
        with self._lock:
            return list(self._events)

    def events_between(self, first_seq: int, last_seq: int) -> List[PropertyEvent]:
        """Events with ``first_seq <= seq <= last_seq`` (a *selected event
        range* in the paper's phrasing)."""
        with self._lock:
            return [e for e in self._events if first_seq <= e.seq <= last_seq]

    def events_of(self, thread: threading.Thread) -> List[PropertyEvent]:
        """All events produced by *thread*, in order."""
        with self._lock:
            return [e for e in self._events if e.thread is thread]

    def events_named(self, name: str) -> List[PropertyEvent]:
        """All events tracing the logical variable *name*, in order."""
        with self._lock:
            return [e for e in self._events if e.name == name]

    def thread_ids(self) -> List[int]:
        """Ids of every thread that has produced at least one event, in
        first-output order."""
        seen: List[int] = []
        with self._lock:
            for event in self._events:
                if event.thread_id not in seen:
                    seen.append(event.thread_id)
        return seen

    def clear(self) -> None:
        """Drop all events (the registry keeps its id assignments)."""
        with self._lock:
            self._events.clear()
            self._per_thread_counts.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[PropertyEvent]:
        return iter(self.snapshot())
