"""Append-only, thread-safe store of trace events.

This is the "event database" layer the paper describes: it (a) observes
all events announced by the tested program's prints, (b) stores each event
with the thread object that announced it, and (c) answers the queries the
fork-join checker needs — how many threads produced events in a range, and
whether those threads' events were interleaved (see
:mod:`repro.eventdb.queries`).

The store is *indexed*: per-thread and per-name sub-streams are
maintained incrementally on :meth:`record`, and the global sequence
numbers are dense (``events[i].seq == i``), so range queries are array
slices and per-thread/per-name queries are dictionary lookups instead of
full-log scans.  At course scale (100k+ events per batch) the checkers'
queries are on the grading hot path; see
``benchmarks/test_ablation_eventdb_index.py`` for the indexed-vs-linear
ablation.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.eventdb.events import PropertyEvent, make_event
from repro.util.thread_registry import ThreadRegistry

__all__ = ["EventDatabase"]


class EventDatabase:
    """Totally ordered event log with per-thread sub-streams.

    Events are appended under a lock, which both assigns the global
    sequence number and guarantees observers of the log see a consistent
    order.  The database is an observer of the print interceptor in the
    sense of :class:`repro.tracing.observable.PrintObserver`, but it also
    exposes :meth:`record` directly so it can be used standalone (e.g. in
    unit tests of the query layer).
    """

    def __init__(self, registry: Optional[ThreadRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._events: List[PropertyEvent] = []
        self._per_thread_counts: Dict[int, int] = {}
        #: Per-thread-id sub-streams, maintained on record (global order
        #: preserved within each stream).
        self._by_thread: Dict[int, List[PropertyEvent]] = {}
        #: Per-logical-variable sub-streams, maintained on record.
        self._by_name: Dict[str, List[PropertyEvent]] = {}
        #: Thread ids in first-output order (the ``thread_ids`` answer).
        self._thread_order: List[int] = []
        #: Database-local attribution map: ``id(thread object)`` -> the
        #: registry ``thread_id`` it was recorded under.  Events hold
        #: strong references to their thread objects, so ``id()`` values
        #: of recorded threads cannot be recycled while the log lives.
        self._identity_ids: Dict[int, int] = {}
        self.registry = registry if registry is not None else ThreadRegistry()
        #: Identity of the controlled schedule this run executes under
        #: (stamped onto every event); empty for free-running runs.
        self.schedule_id: str = ""

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        value: Any,
        raw_line: str,
        *,
        thread: Optional[threading.Thread] = None,
        explicit: bool = True,
    ) -> PropertyEvent:
        """Append one event and return it.

        The announcing thread defaults to the calling thread; this is the
        normal path, since observers are notified synchronously on the
        printing thread.
        """
        if thread is None:
            thread = threading.current_thread()
        thread_id = self.registry.id_for(thread)
        now = time.monotonic()
        with self._lock:
            event = self._append_locked(
                name, value, raw_line, thread, thread_id, explicit, now
            )
        return event

    def record_batch(
        self,
        items: Iterable[Tuple[str, Any, str, threading.Thread, bool]],
    ) -> List[PropertyEvent]:
        """Append many ``(name, value, raw_line, thread, explicit)`` items.

        One lock acquisition covers the whole batch — the ingestion path
        for observers that buffer announcements (e.g. a subprocess
        parent folding a child's entire output into the database at
        once) instead of paying a lock round-trip per event.
        """
        materialized = list(items)
        ids = [self.registry.id_for(thread) for _, _, _, thread, _ in materialized]
        now = time.monotonic()
        events: List[PropertyEvent] = []
        with self._lock:
            for (name, value, raw_line, thread, explicit), thread_id in zip(
                materialized, ids
            ):
                events.append(
                    self._append_locked(
                        name, value, raw_line, thread, thread_id, explicit, now
                    )
                )
        return events

    def _append_locked(
        self,
        name: str,
        value: Any,
        raw_line: str,
        thread: threading.Thread,
        thread_id: int,
        explicit: bool,
        now: float,
    ) -> PropertyEvent:
        """Append one event and maintain every index; lock held."""
        seq = len(self._events)
        thread_seq = self._per_thread_counts.get(thread_id, 0)
        self._per_thread_counts[thread_id] = thread_seq + 1
        event = make_event(
            seq=seq,
            thread=thread,
            thread_id=thread_id,
            name=name,
            value=value,
            raw_line=raw_line,
            explicit=explicit,
            timestamp=now,
            thread_seq=thread_seq,
            schedule_id=self.schedule_id,
        )
        self._events.append(event)
        stream = self._by_thread.get(thread_id)
        if stream is None:
            self._by_thread[thread_id] = [event]
            self._thread_order.append(thread_id)
        else:
            stream.append(event)
        named = self._by_name.get(name)
        if named is None:
            self._by_name[name] = [event]
        else:
            named.append(event)
        self._identity_ids.setdefault(id(thread), thread_id)
        return event

    def notify(self, event: PropertyEvent) -> None:
        """Observer-protocol entry point: re-record an announced event.

        Used when the database is chained behind another announcing
        component; the event's payload is preserved but it is re-sequenced
        into this database's total order.
        """
        self.record(
            event.name,
            event.value,
            event.raw_line,
            thread=event.thread,
            explicit=event.explicit,
        )

    def notify_many(self, events: Sequence[PropertyEvent]) -> None:
        """Batched observer entry point: re-record many events at once.

        The batched analogue of :meth:`notify` for buffering observers —
        the whole batch is re-sequenced under a single lock acquisition,
        preserving the given order.
        """
        self.record_batch(
            (e.name, e.value, e.raw_line, e.thread, e.explicit) for e in events
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> List[PropertyEvent]:
        """A point-in-time copy of the full event log, in global order."""
        with self._lock:
            return list(self._events)

    def events_between(self, first_seq: int, last_seq: int) -> List[PropertyEvent]:
        """Events with ``first_seq <= seq <= last_seq`` (a *selected event
        range* in the paper's phrasing).

        Sequence numbers are dense (``events[i].seq == i``), so the
        range is a clamped array slice rather than a full-log filter.
        """
        with self._lock:
            if not self._events:
                return []
            lo = max(int(first_seq), 0)
            hi = min(int(last_seq), len(self._events) - 1)
            if lo > hi:
                return []
            return self._events[lo : hi + 1]

    def events_of(self, thread: threading.Thread) -> List[PropertyEvent]:
        """All events produced by *thread*, in order.

        Keyed on the registry ``thread_id`` the thread was recorded
        under — the same key every other layer uses — **not** on object
        identity: a persistent worker pool (and CPython's dummy-thread
        wrappers) can represent the same logical thread with distinct
        objects across runs, and an identity scan misattributes those
        events.
        """
        thread_id = self.registry.peek_id(thread)
        with self._lock:
            if thread_id is None:
                thread_id = self._identity_ids.get(id(thread))
            if thread_id is None:
                return []
            return list(self._by_thread.get(thread_id, ()))

    def events_of_id(self, thread_id: int) -> List[PropertyEvent]:
        """All events recorded under registry id *thread_id*, in order."""
        with self._lock:
            return list(self._by_thread.get(thread_id, ()))

    def events_named(self, name: str) -> List[PropertyEvent]:
        """All events tracing the logical variable *name*, in order."""
        with self._lock:
            return list(self._by_name.get(name, ()))

    # ------------------------------------------------------------------
    # Phase-scoped queries
    # ------------------------------------------------------------------
    #: The fork-join phases :meth:`events_in_phase` understands.
    PHASES = ("pre-fork", "fork", "post-join")

    def _root_id_locked(self, root: threading.Thread,
                        peeked: Optional[int]) -> Optional[int]:
        if peeked is not None:
            return peeked
        return self._identity_ids.get(id(root))

    def _phase_bounds_locked(
        self, root_id: Optional[int]
    ) -> Optional[Tuple[int, int]]:
        """(first, last) worker seq from the per-thread index; lock held.

        ``_thread_order`` is first-output order, so the first non-root
        entry owns the minimal worker seq; the maximal one is the tail
        of some non-root sub-stream.  Cost is O(#threads), independent
        of the event count — no log scan.
        """
        first: Optional[int] = None
        last: Optional[int] = None
        for tid in self._thread_order:
            if tid == root_id:
                continue
            stream = self._by_thread[tid]
            if first is None:
                first = stream[0].seq
            seq = stream[-1].seq
            if last is None or seq > last:
                last = seq
        if first is None or last is None:
            return None
        return first, last

    def phase_bounds(
        self, root: threading.Thread
    ) -> Optional[Tuple[int, int]]:
        """Global seq bounds of the fork phase: (first worker event seq,
        last worker event seq), or ``None`` when no thread other than
        *root* has produced an event.

        These are exactly the boundaries :func:`~repro.core.trace_model.
        build_phased_trace` derives by scanning the whole log; here they
        come from the per-thread index, so phase-scoped callers can
        slice with :meth:`events_between` instead of filtering.
        """
        peeked = self.registry.peek_id(root)
        with self._lock:
            return self._phase_bounds_locked(self._root_id_locked(root, peeked))

    def events_in_phase(
        self, root: threading.Thread, phase: str
    ) -> List[PropertyEvent]:
        """Events of one fork-join phase, as a dense-seq array slice.

        *phase* is ``"pre-fork"`` (everything before the first worker
        event — root-only by construction), ``"fork"`` (first worker
        event through last worker event, including any structure-
        violating mid-fork root output), or ``"post-join"`` (everything
        after the last worker event).  A run with no worker events is
        entirely pre-fork.
        """
        if phase not in self.PHASES:
            raise ValueError(
                f"unknown phase {phase!r}: expected one of {self.PHASES}"
            )
        peeked = self.registry.peek_id(root)
        with self._lock:
            bounds = self._phase_bounds_locked(
                self._root_id_locked(root, peeked)
            )
            if bounds is None:
                return list(self._events) if phase == "pre-fork" else []
            first, last = bounds
            if phase == "pre-fork":
                return self._events[:first]
            if phase == "fork":
                return self._events[first : last + 1]
            return self._events[last + 1 :]

    def thread_ids(self) -> List[int]:
        """Ids of every thread that has produced at least one event, in
        first-output order."""
        with self._lock:
            return list(self._thread_order)

    def clear(self) -> None:
        """Drop all events (the registry keeps its id assignments)."""
        with self._lock:
            self._events.clear()
            self._per_thread_counts.clear()
            self._by_thread.clear()
            self._by_name.clear()
            self._thread_order.clear()
            self._identity_ids.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[PropertyEvent]:
        return iter(self.snapshot())
