"""Event-database layer: observable print events with thread identity.

This package reproduces the layer the paper inherited from its earlier
work on testing observable concurrent animations: every print of the
tested program becomes an event stored with the announcing thread object,
and the query module answers the concurrency questions (distinct threads,
interleaving, load balance) the fork-join checker asks.
"""

from repro.eventdb.database import EventDatabase
from repro.eventdb.events import PropertyEvent
from repro.eventdb.queries import (
    distinct_thread_ids,
    distinct_threads,
    events_by_thread,
    interleaved_thread_pairs,
    is_interleaved,
    is_load_balanced,
    load_counts,
    max_load_imbalance,
    serialization_order,
    thread_spans,
)

__all__ = [
    "EventDatabase",
    "PropertyEvent",
    "distinct_thread_ids",
    "distinct_threads",
    "events_by_thread",
    "interleaved_thread_pairs",
    "is_interleaved",
    "is_load_balanced",
    "load_counts",
    "max_load_imbalance",
    "serialization_order",
    "thread_spans",
]
