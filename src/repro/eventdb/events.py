"""Event types stored in the trace event database.

Every intercepted print becomes a :class:`PropertyEvent`: the setting of a
*logical variable* (a JavaBean-style "property" in the paper's vocabulary)
to a value, by a particular thread.  Two kinds of prints produce events:

* ``print_property(name, value)`` — an explicit structured trace.  The
  event keeps the property *name*, the live Python *value* object, and the
  exact line of text that was printed.

* a plain ``print(obj)`` — intercepted transparently.  The output text is
  unchanged, but internally the print is stored as the setting of a
  logical variable named after ``type(obj)`` (``"str"``, ``"int"``, ...),
  mirroring the paper's treatment of ``System.out.println(T)`` as a trace
  of a logical variable named ``T``.

In both cases the *actual thread object* that performed the print is kept
with the event, so a tested program that prints a forged thread id cannot
fool the infrastructure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["PropertyEvent"]


@dataclass(frozen=True)
class PropertyEvent:
    """One logical-variable setting observed in a trace.

    Attributes:
        seq: Global 0-based sequence number; total order of all events in
            the run, assigned under the database lock at insertion time.
        thread: The live thread object that produced the print.
        thread_id: The registry id assigned to that thread (small, stable,
            the id shown in trace output).
        name: Property (logical variable) name — explicit for
            ``print_property``, the value's type name for plain prints.
        value: The live value object passed by the tested program.  For
            plain prints this is the original object when interception
            could capture it, else the printed text.
        raw_line: The exact line of output text, without the trailing
            newline.  Static-syntax checking runs regular expressions over
            this, exactly as the paper describes.
        explicit: True for ``print_property`` calls, False for intercepted
            plain prints.
        timestamp: Wall-clock seconds at announcement (``time.monotonic``
            domain); used only for diagnostics, never for checking.
    """

    seq: int
    thread: threading.Thread
    thread_id: int
    name: str
    value: Any
    raw_line: str
    explicit: bool = True
    timestamp: float = 0.0
    #: Index of the event within its own thread's event stream.
    thread_seq: int = field(default=0)
    #: Identity of the controlled schedule the run executed under
    #: (e.g. ``"random-walk:17"``); empty for free-running runs.
    schedule_id: str = field(default="")

    def is_from(self, thread: threading.Thread) -> bool:
        """True when this event was produced by *thread* (identity test)."""
        return self.thread is thread

    def describe(self) -> str:
        """Human-readable one-line description used in error messages."""
        return f"[#{self.seq} thread {self.thread_id}] {self.name} = {self.value!r}"


def make_event(
    seq: int,
    thread: threading.Thread,
    thread_id: int,
    name: str,
    value: Any,
    raw_line: str,
    explicit: bool,
    timestamp: float,
    thread_seq: int,
    schedule_id: str = "",
) -> PropertyEvent:
    """Internal constructor used by the database; keeps call sites tidy."""
    return PropertyEvent(
        seq=seq,
        thread=thread,
        thread_id=thread_id,
        name=name,
        value=value,
        raw_line=raw_line,
        explicit=explicit,
        timestamp=timestamp,
        thread_seq=thread_seq,
        schedule_id=schedule_id,
    )
