"""Observer plumbing that makes intercepted prints *observable events*.

The paper layers its fork-join support on earlier infrastructure for
testing observable concurrent animations: every intercepted print is
converted into an event that arbitrary observer objects can subscribe to.
This module provides that observer registry.  The event database
(:mod:`repro.eventdb`) is simply one such observer; test writers may add
their own (e.g. live trace viewers or instructor-awareness loggers).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Protocol, runtime_checkable

from repro.eventdb.events import PropertyEvent

__all__ = ["PrintObserver", "ObserverRegistry", "CallbackObserver"]


@runtime_checkable
class PrintObserver(Protocol):
    """Anything that wants to see print events as they are announced."""

    def notify(self, event: PropertyEvent) -> None:
        """Called synchronously, on the announcing thread, per event."""


class CallbackObserver:
    """Adapt a plain callable into a :class:`PrintObserver`."""

    def __init__(self, callback: Callable[[PropertyEvent], None]) -> None:
        self._callback = callback

    def notify(self, event: PropertyEvent) -> None:
        self._callback(event)


class ObserverRegistry:
    """Thread-safe fan-out of events to registered observers.

    Observers are notified synchronously on the thread that produced the
    print, mirroring the paper's design where the event database records
    the announcing ``Thread`` object.  Observer exceptions are not
    swallowed: a broken observer is a broken test harness and should fail
    loudly rather than silently drop trace data.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._observers: List[PrintObserver] = []

    def add(self, observer: PrintObserver) -> None:
        with self._lock:
            if observer not in self._observers:
                self._observers.append(observer)

    def remove(self, observer: PrintObserver) -> None:
        with self._lock:
            try:
                self._observers.remove(observer)
            except ValueError:
                pass

    def announce(self, event: PropertyEvent) -> None:
        with self._lock:
            observers = list(self._observers)
        for observer in observers:
            observer.notify(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._observers)
