"""Trace sessions: the ambient context connecting programs to the trace.

A :class:`TraceSession` is installed around one run of a tested program.
While active it owns the print interception (``sys.stdout`` and
``builtins.print``), the thread registry, the event database, the
observer registry, and the *hide* flag that disables prints during
performance testing.  Tested programs never see the session object: they
call the module-level API (:func:`repro.tracing.print_property`,
:func:`repro.tracing.set_hide_redirected_prints`), which looks up the
ambient session — exactly how the paper's programs talk to an invisible
infrastructure through ``printProperty`` and ``setHideRedirectedPrints``.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, List, Optional

from repro.eventdb.database import EventDatabase
from repro.obs import get_registry as _obs_registry
from repro.tracing.formatting import format_property_line
from repro.tracing.interceptor import PrintPatch, RedirectingWriter
from repro.tracing.observable import ObserverRegistry, PrintObserver
from repro.util.thread_registry import ThreadRegistry

__all__ = [
    "TraceSession",
    "current_session",
    "set_hide_redirected_prints",
    "get_hide_redirected_prints",
]

_session_lock = threading.RLock()
_current: Optional["TraceSession"] = None


def current_session() -> Optional["TraceSession"]:
    """The active session, or ``None`` when running outside the harness."""
    with _session_lock:
        return _current


def set_hide_redirected_prints(hidden: bool) -> None:
    """Enable/disable all intercepted prints (both output and tracing).

    Callable by both tested and testing programs, as in the paper.  A
    disabled print produces no output and makes no change to the trace.
    Outside a session this is a no-op: the tested program then behaves as
    a normal console program.
    """
    session = current_session()
    if session is not None:
        session.hidden = hidden


def get_hide_redirected_prints() -> bool:
    """Whether intercepted prints are currently disabled."""
    session = current_session()
    return session.hidden if session is not None else False


class TraceSession:
    """Owns the interception state for one tested-program run.

    Usage::

        session = TraceSession()
        with session.activate():
            tested_main(args)
        events = session.database.snapshot()
        text = session.output()

    Sessions do not nest: the infrastructure tests complete programs, one
    at a time, always running ``main`` to completion before analyzing its
    output.
    """

    def __init__(
        self,
        *,
        hidden: bool = False,
        registry: Optional[ThreadRegistry] = None,
        echo: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else ThreadRegistry()
        self.database = EventDatabase(self.registry)
        self.observers = ObserverRegistry()
        self.hidden = hidden
        #: When False (the default under test), the "real console" is an
        #: in-memory sink so test runs do not spam the harness's stdout.
        #: When True, output is forwarded to the genuine stdout as well.
        self.echo = echo
        self._captured: List[str] = []
        self._capture_lock = threading.Lock()
        self._writer: Optional[RedirectingWriter] = None
        self._print_patch: Optional[PrintPatch] = None
        self._saved_stdout: Optional[Any] = None
        #: Scheduling hook: called (with no arguments) after every
        #: recorded event, making each intercepted print — the paper's
        #: ``printProperty`` interception point — a controlled-scheduler
        #: yield point.  Set by the runner when a run executes under
        #: :class:`repro.execution.scheduling.ScheduledBackend`; ``None``
        #: (the default) costs nothing.
        self.yield_hook: Optional[Callable[[], None]] = None
        #: Observability span covering install → uninstall (property-event
        #: ingestion).  Event counting happens once at teardown from the
        #: database size, so the per-event hot path carries no obs cost.
        self._obs_span = None

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    class _Activation:
        def __init__(self, session: "TraceSession") -> None:
            self._session = session

        def __enter__(self) -> "TraceSession":
            self._session._install()
            return self._session

        def __exit__(self, *exc: Any) -> None:
            self._session._uninstall()

    def activate(self) -> "TraceSession._Activation":
        return TraceSession._Activation(self)

    def _install(self) -> None:
        global _current
        with _session_lock:
            if _current is not None:
                raise RuntimeError(
                    "a trace session is already active; fork-join tests run "
                    "one complete program at a time"
                )
            self._saved_stdout = sys.stdout
            real = sys.stdout if self.echo else _NullConsole()
            self._writer = RedirectingWriter(self, real)
            sys.stdout = self._writer
            self._print_patch = PrintPatch(self, self._writer)
            self._print_patch.install()
            _current = self
            self._obs_span = _obs_registry().begin_span(
                "session.ingest", hidden=self.hidden or None
            )

    def _uninstall(self) -> None:
        global _current
        with _session_lock:
            if _current is not self:
                return
            if self._obs_span is not None:
                obs = _obs_registry()
                events = len(self.database)
                obs.end_span(self._obs_span, events=events)
                obs.counter("session.events").inc(events)
                self._obs_span = None
            if self._writer is not None:
                self._writer.close_line_buffers()
            if self._print_patch is not None:
                self._print_patch.uninstall()
                self._print_patch = None
            if self._saved_stdout is not None:
                sys.stdout = self._saved_stdout
                self._saved_stdout = None
            self._writer = None
            _current = None

    @property
    def active(self) -> bool:
        with _session_lock:
            return _current is self

    # ------------------------------------------------------------------
    # Recording (called by the interceptor and print_property)
    # ------------------------------------------------------------------
    def capture(self, line: str) -> None:
        """Keep the raw output line for :meth:`output` reconstruction."""
        with self._capture_lock:
            self._captured.append(line)

    def record_plain_line(self, line: str) -> None:
        """A completed line written directly to stdout (not via print)."""
        self._record("str", line, line, explicit=False)

    def record_plain_value(self, type_name: str, value: Any, line: str) -> None:
        """A plain ``print(obj)``: logical variable named after the type."""
        self._record(type_name, value, line, explicit=False)

    def record_property(self, name: str, value: Any, line: str) -> None:
        """An explicit ``print_property(name, value)`` trace."""
        self._record(name, value, line, explicit=True)

    def _record(self, name: str, value: Any, line: str, *, explicit: bool) -> None:
        event = self.database.record(name, value, line, explicit=explicit)
        self.observers.announce(event)
        hook = self.yield_hook
        if hook is not None:
            hook()

    # ------------------------------------------------------------------
    # Output and helpers
    # ------------------------------------------------------------------
    def output(self) -> str:
        """The program's full console output, in write order."""
        with self._capture_lock:
            return "\n".join(self._captured) + ("\n" if self._captured else "")

    def output_lines(self) -> List[str]:
        with self._capture_lock:
            return list(self._captured)

    def writer(self) -> RedirectingWriter:
        if self._writer is None:
            raise RuntimeError("session is not active")
        return self._writer

    def add_observer(self, observer: PrintObserver) -> None:
        self.observers.add(observer)

    def emit_property_line(self, name: str, value: Any) -> None:
        """Write and record one standard property line for the caller.

        This is the session-side implementation of ``print_property``: the
        line is written with plain-print recording suppressed, then
        recorded once as an explicit property event.
        """
        if self.hidden:
            return
        thread_id = self.registry.id_for()
        line = format_property_line(thread_id, name, value)
        writer = self._writer
        if writer is not None:
            with writer.suppress_recording():
                writer.write(line + "\n")
        self.record_property(name, value, line)


class _NullConsole:
    """Default 'real console' for sessions running under the harness."""

    def write(self, text: str) -> int:
        return len(text)

    def flush(self) -> None:
        pass
