"""Print interception: the tested program's console becomes observable.

The paper replaces Java's ``System.out`` with a custom observable object
that (a) forwards to the real console while printing is enabled and
(b) converts every print into an event.  The Python equivalent here swaps
``sys.stdout`` for a :class:`RedirectingWriter` and patches
``builtins.print`` for the duration of a trace session, so that:

* output text is unchanged (students see exactly what they printed);
* each completed line is recorded as an event carrying the true thread
  object of the printer;
* a plain ``print(obj)`` is internally stored as the setting of a logical
  variable named ``type(obj).__name__``;
* when prints are *hidden* (performance testing), a print produces no
  output **and** no trace event.

The writer buffers per thread until a newline so that interleaved partial
writes from different threads do not corrupt each other's lines.
"""

from __future__ import annotations

import builtins
import io
import sys
import threading
from typing import Any, Callable, Optional, TextIO

__all__ = ["RedirectingWriter", "PrintPatch"]


class RedirectingWriter(io.TextIOBase):
    """``sys.stdout`` replacement that records completed lines as events.

    ``session`` is duck-typed: it must provide ``hidden`` (bool),
    ``record_plain_line(text)`` and ``capture(text)``.  The writer talks
    to the *original* stdout for actual display.
    """

    def __init__(self, session: Any, real: TextIO) -> None:
        super().__init__()
        self._session = session
        self._real = real
        self._buffers = threading.local()
        # Re-entrancy guard: while an explicit print_property (or patched
        # print) is emitting its own formatted line, the writer must not
        # record the same text a second time as a plain-print event.
        self._suppress = threading.local()

    # -- suppression --------------------------------------------------
    def suppressed(self) -> bool:
        return getattr(self._suppress, "value", False)

    class _Suppress:
        def __init__(self, writer: "RedirectingWriter") -> None:
            self._writer = writer

        def __enter__(self) -> None:
            self._writer._suppress.value = True

        def __exit__(self, *exc: Any) -> None:
            self._writer._suppress.value = False

    def suppress_recording(self) -> "RedirectingWriter._Suppress":
        """Context manager: write without generating plain-print events."""
        return RedirectingWriter._Suppress(self)

    # -- TextIOBase interface -----------------------------------------
    def writable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def write(self, text: str) -> int:
        if not isinstance(text, str):
            raise TypeError(f"write() argument must be str, not {type(text).__name__}")
        if self._session.hidden:
            # Disabled prints make no output and no trace.
            return len(text)
        buffer = getattr(self._buffers, "value", "")
        buffer += text
        emitted = 0
        while True:
            newline = buffer.find("\n")
            if newline < 0:
                break
            line, buffer = buffer[:newline], buffer[newline + 1 :]
            self._emit_line(line)
            emitted += 1
        self._buffers.value = buffer
        return len(text)

    def flush(self) -> None:
        # Partial (newline-less) content stays buffered until its line
        # completes; flushing only propagates to the real console.
        self._real.flush()

    def close_line_buffers(self) -> None:
        """Flush any trailing newline-less output of the calling thread."""
        buffer = getattr(self._buffers, "value", "")
        if buffer:
            self._buffers.value = ""
            self._emit_line(buffer)

    # -- internals -----------------------------------------------------
    def _emit_line(self, line: str) -> None:
        self._real.write(line + "\n")
        self._session.capture(line)
        if not self.suppressed():
            self._session.record_plain_line(line)

    @property
    def real(self) -> TextIO:
        return self._real


class PrintPatch:
    """Temporarily replace ``builtins.print`` to capture live objects.

    A plain ``print(obj)`` must be stored as the setting of a logical
    variable named after ``obj``'s type, *with the live object as value*.
    Intercepting only ``sys.stdout`` would lose the object (the stream
    sees text); patching ``print`` preserves it.  Prints directed at other
    files (``file=sys.stderr`` etc.) pass through untouched.
    """

    def __init__(self, session: Any, writer: RedirectingWriter) -> None:
        self._session = session
        self._writer = writer
        self._original: Optional[Callable[..., None]] = None

    def install(self) -> None:
        if self._original is not None:
            raise RuntimeError("print patch already installed")
        self._original = builtins.print
        original = self._original
        session = self._session
        writer = self._writer

        def traced_print(*args: Any, **kwargs: Any) -> None:
            file = kwargs.get("file")
            if file is not None and file is not writer and file is not sys.stdout:
                original(*args, **kwargs)
                return
            if session.hidden:
                return
            sep = kwargs.get("sep")
            sep = " " if sep is None else sep
            text = sep.join(str(a) for a in args)
            if len(args) == 1:
                name = type(args[0]).__name__
                value: Any = args[0]
            else:
                name = "str"
                value = text
            # Write through the interceptor with recording suppressed,
            # then record once with the live object.
            end = kwargs.get("end")
            end = "\n" if end is None else end
            with writer.suppress_recording():
                writer.write(text + end)
            for line in (text + end).splitlines():
                session.record_plain_value(name, value, line)

        builtins.print = traced_print

    def uninstall(self) -> None:
        if self._original is None:
            return
        builtins.print = self._original
        self._original = None
