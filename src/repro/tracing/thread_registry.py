"""Compatibility re-export; the registry lives in :mod:`repro.util`."""

from repro.util.thread_registry import FIRST_THREAD_ID, ThreadRegistry

__all__ = ["ThreadRegistry", "FIRST_THREAD_ID"]
