"""The tested program's tracing call: ``print_property(name, value)``.

This is the one special method the infrastructure asks student programs
to use (§4.2 of the paper).  It prints the current thread id with the
logical-variable name and value in the standard form::

    Thread 24->Is Prime:true

Under a trace session the line is additionally recorded as an explicit
property event carrying the live value object and the actual printing
thread.  Outside a session — a student running their program normally —
it simply prints, so the same source serves development and grading.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.tracing.formatting import format_property_line
from repro.tracing.session import current_session
from repro.util.thread_registry import ThreadRegistry

__all__ = [
    "print_property",
    "set_standalone_hidden",
    "standalone_hidden",
    "reset_standalone_state",
]

# Fallback registry for standalone (session-less) runs so thread ids in
# plain console output are still small and stable within a process.
_standalone_registry = ThreadRegistry()

# Standalone analogue of the session hide flag: a tested program running
# as a *subprocess* (no in-process session) still needs its trace prints
# disabled during performance timing.  Set by the child entry point from
# the REPRO_HIDE_PRINTS environment variable.
_standalone_hidden = False


def set_standalone_hidden(hidden: bool) -> None:
    """Disable/enable ``print_property`` output outside any session."""
    global _standalone_hidden
    _standalone_hidden = bool(hidden)


def reset_standalone_state() -> None:
    """Start a fresh standalone trace: new registry, prints enabled.

    A persistent worker interpreter (``repro.execution.pool_child``) runs
    many submissions in one process; each run must hand out thread ids
    from :data:`~repro.util.thread_registry.FIRST_THREAD_ID` again so its
    trace is indistinguishable from a cold-started child's.
    """
    global _standalone_registry, _standalone_hidden
    _standalone_registry = ThreadRegistry()
    _standalone_hidden = False


def standalone_thread_id(thread: "threading.Thread | None" = None) -> int:
    """The calling thread's standalone trace id (registers on first use).

    Used by the subprocess child to annotate plain output lines with the
    same id numbering ``print_property`` uses.
    """
    return _standalone_registry.id_for(thread)


def standalone_hidden() -> bool:
    """Whether standalone (session-less) trace prints are disabled."""
    return _standalone_hidden


def print_property(name: str, value: Any) -> None:
    """Trace the setting of logical variable *name* to *value*.

    The logical-variable names used by a solution are part of the
    assignment requirement: all solutions to a problem must use the same
    names, which the problem's test program also declares in its property
    specifications.
    """
    if not isinstance(name, str):
        raise TypeError(
            f"property name must be a string, got {type(name).__name__}"
        )
    session = current_session()
    if session is not None:
        session.emit_property_line(name, value)
        return
    if _standalone_hidden:
        return
    thread_id = _standalone_registry.id_for(threading.current_thread())
    print(format_property_line(thread_id, name, value))
