"""Tracing layer: the programming interface for *tested* programs.

Student (tested) programs use exactly two calls from this package —
:func:`print_property` to trace logical variables and
:func:`set_hide_redirected_prints` to honour performance-test print
disabling — mirroring §4.2 of the paper.  The rest of the package is the
interception machinery the testing side installs around a run.
"""

from repro.tracing.formatting import (
    PROPERTY_LINE_RE,
    format_property_line,
    format_value,
    parse_property_line,
)
from repro.tracing.observable import CallbackObserver, ObserverRegistry, PrintObserver
from repro.tracing.print_property import print_property
from repro.tracing.session import (
    TraceSession,
    current_session,
    get_hide_redirected_prints,
    set_hide_redirected_prints,
)
from repro.util.thread_registry import FIRST_THREAD_ID, ThreadRegistry

__all__ = [
    "print_property",
    "set_hide_redirected_prints",
    "get_hide_redirected_prints",
    "TraceSession",
    "current_session",
    "ThreadRegistry",
    "FIRST_THREAD_ID",
    "ObserverRegistry",
    "PrintObserver",
    "CallbackObserver",
    "format_value",
    "format_property_line",
    "parse_property_line",
    "PROPERTY_LINE_RE",
]
