"""Standard textual form of traced logical variables.

The infrastructure requires all solutions to a problem to print logical
variables the same way, so the trace can be checked with regular
expressions rather than a grammar.  This module defines that standard
form, used by :func:`repro.tracing.print_property` when producing output
and by :mod:`repro.core.syntax` when building the regexes that check it:

    ``Thread <id>-><Name>:<value>``

Values are rendered in a Java-trace-compatible way (``true``/``false``
booleans, ``[a, b, c]`` arrays) so the example traces in the paper's
figures are reproduced verbatim in shape.
"""

from __future__ import annotations

import re
from typing import Any, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "format_value",
    "format_property_line",
    "parse_property_line",
    "PROPERTY_LINE_RE",
]

#: Generic shape of any property line; used for coarse filtering before
#: the per-property regexes of the static-syntax checker are applied.
PROPERTY_LINE_RE = re.compile(r"^Thread (?P<tid>\d+)->(?P<name>[^:]*):(?P<value>.*)$")


def format_value(value: Any) -> str:
    """Render *value* in the standard trace form.

    Booleans print as ``true``/``false`` and sequences as
    ``[a, b, c]`` to match the paper's example output; everything else
    uses its natural ``str`` form.  ``numpy`` scalars and arrays format
    like their Python counterparts so traced programs may freely mix
    vectorised and scalar code.
    """
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, np.generic):
        return format_value(value.item())
    if isinstance(value, np.ndarray):
        return format_value(value.tolist())
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    if isinstance(value, float) and value.is_integer():
        # keep 3.0 as "3.0": do not collapse floats to ints, students see
        # exactly what they computed
        return repr(value)
    return str(value)


def format_property_line(thread_id: int, name: str, value: Any) -> str:
    """The full standard line for one logical-variable setting."""
    return f"Thread {thread_id}->{name}:{format_value(value)}"


def parse_property_line(line: str) -> Optional[Tuple[int, str, str]]:
    """Invert :func:`format_property_line` textually.

    Returns ``(thread_id, name, value_text)`` or ``None`` when the line is
    not in property form.  Only used when checking output that arrived as
    bare text (e.g. from a subprocess run); the in-process path keeps the
    live objects and never needs to parse.
    """
    match = PROPERTY_LINE_RE.match(line)
    if match is None:
        return None
    return int(match.group("tid")), match.group("name"), match.group("value")
