"""Controlled scheduling: deterministic interleaving of tested programs.

PR 1's rerun-vote retries catch racy submissions only when the OS
scheduler happens to expose the race.  This module removes the luck: a
**controlled scheduler** in the style of Fray (Li et al., 2025) and the
one-page model checkers serializes the tested program's worker threads —
only one runs at a time — and decides, at every *yield point*, which
worker proceeds next.  The interleaving is then a pure function of a
pluggable :class:`ScheduleStrategy`, so a failing schedule can be
**recorded**, attached to a gradebook record as a seed, and **replayed
exactly** from a serialized schedule file.

Yield points, in the fork-join vocabulary of the paper:

* ``fork``/``start`` — workers are spawned and gated; the first grant is
  a recorded decision over the full ready set;
* ``checkpoint`` — the workload API's explicit scheduling point
  (``backend.checkpoint()``);
* ``trace`` — every intercepted print / ``print_property`` call (wired
  through :attr:`repro.tracing.session.TraceSession.yield_hook`);
* ``lock-acquire`` / ``lock-release`` / ``block`` — operations on locks
  handed out by :meth:`ScheduledBackend.lock`; a worker that finds its
  lock held leaves the ready set until the holder releases;
* ``lock-tryacquire`` — a non-blocking (or timed) acquire attempt; the
  attempt itself is a decision point, the raw probe never parks the
  worker, and the probe's outcome is decided by the schedule;
* ``retire`` — a worker finished; the scheduler picks a survivor.

Three strategy families ship here:

* :class:`RandomWalkStrategy` — a seeded random walk over the ready set;
  the workhorse of N-schedule exploration;
* :class:`BoundedPreemptionStrategy` — round-robin with a fixed quantum
  and starting rotation; :func:`bounded_preemption_sweep` enumerates the
  (quantum, rotation) grid deterministically, a small-preemption-bound
  sweep in the CHESS tradition;
* :class:`PCTStrategy` — probabilistic concurrency testing in the style
  of Fray/PCT: random per-worker priorities plus ``depth - 1`` seeded
  priority-change points, which finds any depth-*d* ordering bug with
  probability at least ``1 / (n * k**(d-1))`` per run (n workers, k
  total yield points);
* :class:`ExhaustiveStrategy` — a forced decision prefix with a
  non-preemptive default continuation; the DFS driver in
  :mod:`repro.execution.exploration` uses it to enumerate *all*
  interleavings up to a preemption bound;
* :class:`ReplayStrategy` — replays a recorded :class:`ScheduleTrace`
  decision for decision, raising :class:`ScheduleDivergenceError` the
  moment the live run disagrees with the recording.

Strategies expose ``clone()`` returning a pristine instance with the
same configuration: the equivalence oracle consumes a clone's internal
state (RNG draws, quantum counters) in offline simulation exactly as a
live run would, leaving the original untouched.

Only worker threads participate; the root thread runs free (it is
blocked in ``join`` for the whole fork phase of a correct program) and
harness threads pass through every hook untouched.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Union

__all__ = [
    "SCHEDULE_FORMAT_VERSION",
    "ScheduleAbort",
    "ScheduleDivergenceError",
    "ScheduleStrategy",
    "RandomWalkStrategy",
    "BoundedPreemptionStrategy",
    "bounded_preemption_sweep",
    "PCTStrategy",
    "ExhaustiveStrategy",
    "ReplayStrategy",
    "ScheduleDecision",
    "ScheduleTrace",
    "ControlledScheduler",
    "InstrumentedLock",
    "ScheduledBackend",
    "resolve_schedule_strategy",
]

#: Version stamp written into serialized schedule files.
SCHEDULE_FORMAT_VERSION = 1


class ScheduleAbort(Exception):
    """The controlled run is being torn down; gated workers unwind.

    Raised inside worker threads when the scheduler aborts (timeout,
    deadlock, replay divergence).  The backend's gate wrapper swallows
    it, so an aborted worker dies quietly rather than spamming stderr.
    """


class ScheduleDivergenceError(RuntimeError):
    """A replayed run disagreed with its recorded schedule.

    The tested program took a different sequence of yield points (or
    presented a different ready set) than the recording — it is either
    nondeterministic beyond its scheduling or not the same program.
    """


class ScheduleStrategy(Protocol):
    """Chooses which ready worker runs after each yield point."""

    #: Stable strategy family name, serialized into schedule files.
    name: str
    #: Seed for seeded strategies; ``None`` for enumerative/replay ones.
    seed: Optional[int]

    def choose(
        self, ready: List[int], current: Optional[int], point: str, step: int
    ) -> int:
        """Pick one key from *ready* (non-empty, ascending).  *current*
        is the worker that just yielded when still runnable, else
        ``None``; *point* is the yield-point kind; *step* the 0-based
        global decision index."""

    def label(self) -> str:
        """Human/file-facing identity, e.g. ``random-walk:17``."""


class RandomWalkStrategy:
    """Seeded random walk: each decision is a uniform pick over ready."""

    name = "random-walk"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def choose(
        self, ready: List[int], current: Optional[int], point: str, step: int
    ) -> int:
        return self._rng.choice(ready)

    def label(self) -> str:
        return f"{self.name}:{self.seed}"

    def clone(self) -> "RandomWalkStrategy":
        return RandomWalkStrategy(self.seed)


class BoundedPreemptionStrategy:
    """Round-robin with a fixed quantum and starting rotation.

    The chosen worker keeps running for *quantum* consecutive decisions
    before the grant rotates to the next ready worker in key order;
    *rotation* offsets the very first pick.  Enumerating small
    (quantum, rotation) pairs is a preemption-bound sweep: most
    schedule-sensitive bugs need only a couple of well-placed context
    switches to surface.
    """

    name = "preemption-bound"
    seed: Optional[int] = None

    def __init__(self, quantum: int = 1, rotation: int = 0) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self.rotation = max(0, int(rotation))
        self._remaining = quantum

    def choose(
        self, ready: List[int], current: Optional[int], point: str, step: int
    ) -> int:
        if current is None or current not in ready:
            self._remaining = self.quantum
            return ready[self.rotation % len(ready)]
        if self._remaining > 1:
            self._remaining -= 1
            return current
        self._remaining = self.quantum
        return ready[(ready.index(current) + 1) % len(ready)]

    def label(self) -> str:
        return f"{self.name}:q{self.quantum}.r{self.rotation}"

    def clone(self) -> "BoundedPreemptionStrategy":
        return BoundedPreemptionStrategy(
            quantum=self.quantum, rotation=self.rotation
        )


def bounded_preemption_sweep(
    schedules: int, *, max_quantum: int = 4
) -> Iterator["BoundedPreemptionStrategy"]:
    """Deterministically enumerate *schedules* preemption-bound points.

    Walks the (quantum, rotation) grid column-first — all rotations of
    quantum 1 (maximal preemption) before quantum 2, and so on — then
    wraps, so any budget yields a stable, preemption-dense prefix.
    """
    produced = 0
    while produced < schedules:
        for quantum in range(1, max_quantum + 1):
            for rotation in range(max_quantum):
                if produced >= schedules:
                    return
                yield BoundedPreemptionStrategy(quantum=quantum, rotation=rotation)
                produced += 1


class PCTStrategy:
    """Probabilistic concurrency testing: priorities + change points.

    The PCT discipline (Burckhardt et al., adopted by Fray): every
    worker gets a random base priority when first seen; at each decision
    the highest-priority ready worker runs.  ``depth - 1`` *change
    points* are sampled from ``range(1, expected_length)``; when the
    global decision index hits one, the running worker's priority drops
    below every other priority handed out so far.  A bug that needs
    ``d`` specific ordering constraints ("depth d") is found with
    probability at least ``1 / (n * k**(d-1))`` per run — a guarantee a
    uniform random walk lacks, because the walk re-decides every step
    and the probability of keeping one worker behind for a long stretch
    decays exponentially.

    Everything is derived from ``seed``: same seed, same priorities and
    change points, same recorded schedule — so PCT schedules serialize
    into :class:`ScheduleTrace` files and replay like any other family.
    """

    name = "pct"

    def __init__(
        self, seed: int = 0, *, depth: int = 3, expected_length: int = 64
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.seed = int(seed)
        self.depth = int(depth)
        self.expected_length = max(2, int(expected_length))
        self._rng = random.Random(self.seed)
        #: Decision indices at which the running worker is demoted;
        #: sampled up front so priority draws cannot shift them.
        population = range(1, self.expected_length)
        self._change_points = set(
            self._rng.sample(population, min(self.depth - 1, len(population)))
        )
        self._priorities: Dict[int, float] = {}
        self._demotions = 0

    def choose(
        self, ready: List[int], current: Optional[int], point: str, step: int
    ) -> int:
        for key in ready:  # ready is ascending: draws are deterministic
            if key not in self._priorities:
                self._priorities[key] = self._rng.random()
        if step in self._change_points:
            self._change_points.discard(step)
            self._demotions += 1
            victim = (
                current
                if current is not None
                else max(ready, key=lambda k: (self._priorities[k], -k))
            )
            self._priorities[victim] = -float(self._demotions)
        return max(ready, key=lambda k: (self._priorities[k], -k))

    def label(self) -> str:
        return f"{self.name}:{self.seed}.d{self.depth}"

    def clone(self) -> "PCTStrategy":
        return PCTStrategy(
            self.seed, depth=self.depth, expected_length=self.expected_length
        )


class ExhaustiveStrategy:
    """A forced decision prefix, then a non-preemptive continuation.

    The DFS driver (:class:`repro.execution.exploration.ExhaustiveSearch`)
    enumerates interleavings by replaying ever-longer prefixes of chosen
    workers; past the prefix the default rule — keep the current worker
    while it is ready, else the lowest ready key — adds **zero**
    preemptions, so the preemption count of a run is decided entirely by
    its prefix and the bound is exact.
    """

    name = "exhaustive"
    seed: Optional[int] = None

    def __init__(self, prefix: Optional[List[int]] = None) -> None:
        self.prefix: List[int] = list(prefix or [])

    def choose(
        self, ready: List[int], current: Optional[int], point: str, step: int
    ) -> int:
        if step < len(self.prefix):
            want = self.prefix[step]
            if want not in ready:
                raise ScheduleDivergenceError(
                    f"exhaustive prefix wants worker {want} at decision "
                    f"{step} but ready is {ready}"
                )
            return want
        if current is not None and current in ready:
            return current
        return ready[0]

    def label(self) -> str:
        if len(self.prefix) <= 12:
            body = ",".join(str(k) for k in self.prefix)
        else:
            head = ",".join(str(k) for k in self.prefix[:12])
            body = f"{head},+{len(self.prefix) - 12}"
        return f"{self.name}:[{body}]"

    def clone(self) -> "ExhaustiveStrategy":
        return ExhaustiveStrategy(self.prefix)


class ReplayStrategy:
    """Replay a recorded schedule exactly, validating every decision."""

    name = "replay"

    def __init__(self, trace: "ScheduleTrace") -> None:
        self.trace = trace
        self.seed = trace.seed

    def choose(
        self, ready: List[int], current: Optional[int], point: str, step: int
    ) -> int:
        decisions = self.trace.decisions
        if step >= len(decisions):
            raise ScheduleDivergenceError(
                f"replay exhausted: live run reached decision {step} but the "
                f"recording holds only {len(decisions)}"
            )
        recorded = decisions[step]
        if recorded.ready != ready or recorded.point != point:
            raise ScheduleDivergenceError(
                f"replay diverged at decision {step}: recorded "
                f"{recorded.point}/ready={recorded.ready}, live "
                f"{point}/ready={ready}"
            )
        return recorded.chosen

    def label(self) -> str:
        return f"{self.name}:{self.trace.label()}"

    def clone(self) -> "ReplayStrategy":
        return ReplayStrategy(self.trace)


def resolve_schedule_strategy(
    spec: Union[int, "ScheduleTrace", ScheduleStrategy]
) -> ScheduleStrategy:
    """Coerce a runner-facing schedule spec into a strategy.

    An ``int`` is shorthand for a random walk with that seed; a
    :class:`ScheduleTrace` replays itself; a strategy passes through.
    """
    if isinstance(spec, ScheduleTrace):
        return ReplayStrategy(spec)
    if isinstance(spec, int) and not isinstance(spec, bool):
        return RandomWalkStrategy(spec)
    if hasattr(spec, "choose"):
        return spec  # type: ignore[return-value]
    raise TypeError(
        f"schedule must be a seed, a ScheduleTrace, or a strategy; got "
        f"{type(spec).__name__}"
    )


# ----------------------------------------------------------------------
# Recorded schedules
# ----------------------------------------------------------------------
@dataclass
class ScheduleDecision:
    """One scheduling decision: who ran next, and why we were asked.

    ``lock`` identifies which :class:`InstrumentedLock` a lock-flavoured
    point (``lock-acquire`` / ``lock-tryacquire`` / ``lock-release`` /
    ``block``) refers to, by per-scheduler creation order.  It is
    advisory metadata for race analysis: replay compares only ``ready``
    and ``point``, and the happens-before canonical form ignores it, so
    schedule files recorded before the field existed stay loadable and
    equivalent.
    """

    step: int
    point: str
    ready: List[int]
    chosen: int
    lock: Optional[int] = None

    def to_dict(self) -> dict:
        data = {
            "step": self.step,
            "point": self.point,
            "ready": list(self.ready),
            "chosen": self.chosen,
        }
        if self.lock is not None:
            data["lock"] = self.lock
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleDecision":
        lock = data.get("lock")
        return cls(
            step=int(data["step"]),
            point=str(data["point"]),
            ready=[int(k) for k in data["ready"]],
            chosen=int(data["chosen"]),
            lock=None if lock is None else int(lock),
        )


@dataclass
class ScheduleTrace:
    """A complete recorded interleaving, serializable for exact replay."""

    identifier: str = ""
    args: List[str] = field(default_factory=list)
    strategy: str = ""
    seed: Optional[int] = None
    #: Worker key (spawn order) -> thread name, for human-readable files.
    workers: Dict[int, str] = field(default_factory=dict)
    decisions: List[ScheduleDecision] = field(default_factory=list)
    deadlocked: bool = False
    #: Non-empty when a replay against this trace diverged.
    divergence: str = ""
    version: int = SCHEDULE_FORMAT_VERSION

    def label(self) -> str:
        tag = self.strategy or "schedule"
        return f"{tag}:{self.seed}" if self.seed is not None else tag

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "identifier": self.identifier,
            "args": list(self.args),
            "strategy": self.strategy,
            "seed": self.seed,
            "workers": {str(k): v for k, v in self.workers.items()},
            "deadlocked": self.deadlocked,
            "decisions": [d.to_dict() for d in self.decisions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleTrace":
        version = int(data.get("version", SCHEDULE_FORMAT_VERSION))
        if version > SCHEDULE_FORMAT_VERSION:
            raise ValueError(
                f"schedule file version {version} is newer than this "
                f"harness understands ({SCHEDULE_FORMAT_VERSION})"
            )
        seed = data.get("seed")
        return cls(
            identifier=data.get("identifier", ""),
            args=[str(a) for a in data.get("args", [])],
            strategy=data.get("strategy", ""),
            seed=None if seed is None else int(seed),
            workers={int(k): str(v) for k, v in data.get("workers", {}).items()},
            decisions=[
                ScheduleDecision.from_dict(d) for d in data.get("decisions", [])
            ],
            deadlocked=bool(data.get("deadlocked", False)),
            version=version,
        )

    def save(self, path: Union[Path, str]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    @classmethod
    def load(cls, path: Union[Path, str]) -> "ScheduleTrace":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
class _WorkerState:
    __slots__ = ("key", "blocked_on")

    def __init__(self, key: int) -> None:
        self.key = key
        self.blocked_on: Optional["InstrumentedLock"] = None


class ControlledScheduler:
    """Token-passing gate whose every grant is a recorded decision.

    Worker keys are assigned at *spawn* time on the root thread (program
    order), not at enrollment (OS order), so the ready sets the strategy
    sees — and therefore the whole interleaving — are deterministic for
    a deterministic tested program.
    """

    def __init__(self, strategy: ScheduleStrategy) -> None:
        self.strategy = strategy
        self._cv = threading.Condition()
        self._states: Dict[int, _WorkerState] = {}
        self._by_thread: Dict[int, int] = {}
        self._total_enrolled = 0
        self._granted: Optional[int] = None
        self._started = False
        self._aborted = False
        self._step = 0
        self.deadlocked = False
        self.divergence = ""
        self.decisions: List[ScheduleDecision] = []
        #: Every worker ever spawned under this scheduler: key -> name.
        self.workers: Dict[int, str] = {}
        self._next_lock_id = 0

    # -- root / backend side -------------------------------------------
    def register(self, key: int, name: str) -> None:
        """Pre-assign *key* (spawn order) to a worker named *name*."""
        with self._cv:
            self.workers[key] = name

    def register_lock(self) -> int:
        """Assign the next lock id (creation order) to a new lock."""
        with self._cv:
            lock_id = self._next_lock_id
            self._next_lock_id += 1
            return lock_id

    def start(self, expected_total: int) -> None:
        """Open the gate once *expected_total* workers have ever enrolled
        (a cumulative count, so batched start/join patterns work)."""
        with self._cv:
            self._cv.wait_for(
                lambda: self._aborted or self._total_enrolled >= expected_total
            )
            if self._aborted:
                return
            self._started = True
            self._grant_next(current=None, point="start")

    def abort(self) -> None:
        """Release every gated worker with :class:`ScheduleAbort`."""
        with self._cv:
            self._aborted = True
            self._granted = None
            self._cv.notify_all()

    def live_workers(self) -> int:
        with self._cv:
            return len(self._states)

    # -- worker side ----------------------------------------------------
    def enroll(self, key: int) -> None:
        me = threading.get_ident()
        with self._cv:
            self._check_abort()
            if key in self._states:
                raise RuntimeError(f"worker key {key} enrolled twice")
            self._states[key] = _WorkerState(key)
            self._by_thread[me] = key
            self._total_enrolled += 1
            self._cv.notify_all()
            self._wait_for_grant(key)

    def yield_point(self, point: str) -> None:
        """Give up the grant at *point*; return when granted again.

        Unenrolled threads (the root, the harness) pass through — this
        is what makes it safe to call from the trace-session hook on
        every intercepted print.
        """
        with self._cv:
            key = self._by_thread.get(threading.get_ident())
            if key is None or self._aborted or not self._started:
                return
            self._grant_next(current=key, point=point)
            self._wait_for_grant(key)

    def retire(self) -> None:
        me = threading.get_ident()
        with self._cv:
            key = self._by_thread.pop(me, None)
            if key is None:
                return
            self._states.pop(key, None)
            if self._aborted:
                self._cv.notify_all()
                return
            if self._started:
                self._grant_next(current=key, point="retire")

    def participating(self) -> bool:
        """Is the calling thread an enrolled, un-aborted worker?"""
        with self._cv:
            return (
                threading.get_ident() in self._by_thread and not self._aborted
            )

    # -- locks ----------------------------------------------------------
    def acquire_lock(self, lock: "InstrumentedLock") -> None:
        """Enrolled-worker lock acquire: a yield point, then a wait that
        leaves the ready set while the lock is held elsewhere."""
        with self._cv:
            key = self._by_thread.get(threading.get_ident())
            if key is None:
                raise RuntimeError("acquire_lock called by unenrolled thread")
            state = self._states[key]
            if self._started:
                self._grant_next(
                    current=key, point="lock-acquire", lock=lock.lock_id
                )
                self._wait_for_grant(key)
            while not lock.raw.acquire(blocking=False):
                state.blocked_on = lock
                self._grant_next(current=key, point="block", lock=lock.lock_id)
                self._cv.wait_for(
                    lambda: self._aborted
                    or (state.blocked_on is None and self._granted == key)
                )
                self._check_abort()
            lock.holder = key

    def try_acquire_lock(self, lock: "InstrumentedLock") -> bool:
        """Enrolled-worker non-blocking acquire: a ``lock-tryacquire``
        decision point followed by a raw probe that never parks.

        The probe's outcome is a pure function of the schedule (whoever
        holds the lock when the worker is re-granted), so try-acquire
        loops are recorded, replayed, and visible to race analysis
        instead of bypassing the scheduler.  Timed acquires take this
        path too: under a one-granted-worker schedule the holder cannot
        release while the caller sleeps, so a timed wait is equivalent
        to (and recorded as) a single probe.
        """
        with self._cv:
            key = self._by_thread.get(threading.get_ident())
            if key is None:
                raise RuntimeError(
                    "try_acquire_lock called by unenrolled thread"
                )
            if self._started:
                self._grant_next(
                    current=key, point="lock-tryacquire", lock=lock.lock_id
                )
                self._wait_for_grant(key)
            acquired = lock.raw.acquire(blocking=False)
            if acquired:
                lock.holder = key
            return acquired

    def release_lock(self, lock: "InstrumentedLock") -> None:
        """Release *lock* and wake any workers parked on it.

        Callable by enrolled workers (a yield point) and by free-running
        threads such as the root (waiters are unparked, no yield).
        """
        with self._cv:
            lock.holder = None
            lock.raw.release()
            woken = False
            for state in self._states.values():
                if state.blocked_on is lock:
                    state.blocked_on = None
                    woken = True
            if self._aborted:
                self._cv.notify_all()
                return
            key = self._by_thread.get(threading.get_ident())
            if key is not None and self._started:
                self._grant_next(
                    current=key, point="lock-release", lock=lock.lock_id
                )
                self._wait_for_grant(key)
            elif woken and self._granted is None and self._started:
                # A free-running thread released the lock every live
                # worker was parked on; restart granting.
                self._grant_next(
                    current=None, point="lock-release", lock=lock.lock_id
                )

    # -- internals (hold self._cv) --------------------------------------
    def _check_abort(self) -> None:
        if self._aborted:
            raise ScheduleAbort(
                "controlled schedule aborted"
                + (": deadlock" if self.deadlocked else "")
                + (f": {self.divergence}" if self.divergence else "")
            )

    def _wait_for_grant(self, key: int) -> None:
        self._cv.wait_for(
            lambda: self._aborted
            or (
                self._started
                and self._granted == key
                and self._states[key].blocked_on is None
            )
        )
        self._check_abort()

    def _ready(self) -> List[int]:
        return sorted(
            key for key, state in self._states.items() if state.blocked_on is None
        )

    def _grant_next(
        self,
        current: Optional[int],
        point: str,
        lock: Optional[int] = None,
    ) -> None:
        ready = self._ready()
        if not ready:
            if self._states and all(
                state.blocked_on is not None
                and state.blocked_on.holder is not None
                for state in self._states.values()
            ):
                # Live workers remain and every one is parked on a lock
                # held by an enrolled worker: a genuine deadlock.  Abort
                # deterministically; the workers unwind and the trace
                # records the verdict.  A lock held by a *free-running*
                # thread (holder None — e.g. the root pre-acquired it)
                # is not a deadlock: that thread is outside the one-
                # granted-worker gate and can still release, at which
                # point release_lock restarts granting.
                self.deadlocked = True
                self._aborted = True
            self._granted = None
            self._cv.notify_all()
            return
        try:
            chosen = self.strategy.choose(
                ready, current if current in ready else None, point, self._step
            )
        except ScheduleDivergenceError as exc:
            self.divergence = str(exc)
            self._aborted = True
            self._granted = None
            self._cv.notify_all()
            raise ScheduleAbort(str(exc)) from exc
        if chosen not in ready:
            raise RuntimeError(
                f"strategy {self.strategy.label()} chose worker {chosen} "
                f"outside ready set {ready}"
            )
        self.decisions.append(
            ScheduleDecision(
                step=self._step,
                point=point,
                ready=ready,
                chosen=chosen,
                lock=lock,
            )
        )
        self._step += 1
        self._granted = chosen
        self._cv.notify_all()


class InstrumentedLock:
    """A lock whose acquire/release are scheduling decisions.

    Handed out by :meth:`ScheduledBackend.lock`.  Enrolled workers go
    through the scheduler (yield on acquire, park while held, yield on
    release; non-blocking and timed acquires yield at
    ``lock-tryacquire`` and probe without parking); any other thread —
    the root after ``join``, harness code — falls back to the raw lock,
    with waiter wake-up still routed through the scheduler so parked
    workers are not stranded.
    """

    def __init__(self, scheduler: ControlledScheduler) -> None:
        self._scheduler = scheduler
        self.raw = threading.Lock()
        #: Per-scheduler creation order; stamped onto lock-flavoured
        #: :class:`ScheduleDecision` records for race analysis.
        self.lock_id = scheduler.register_lock()
        #: Key of the enrolled worker currently holding the lock, or
        #: ``None`` — which covers both "unheld" and "held by a
        #: free-running thread" (the distinction the deadlock detector
        #: needs: only worker-held locks can form a deadlock cycle).
        self.holder: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        scheduler = self._scheduler
        if scheduler.participating():
            if blocking and timeout == -1:
                scheduler.acquire_lock(self)
                return True
            return scheduler.try_acquire_lock(self)
        return self.raw.acquire(blocking, timeout)

    def release(self) -> None:
        self._scheduler.release_lock(self)

    def locked(self) -> bool:
        return self.raw.locked()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class ScheduledBackend:
    """Concurrency backend that runs workers under a controlled schedule.

    Duck-typed drop-in for the ambient-backend API tested programs
    already use (``spawn`` / ``start_all`` / ``join_all`` /
    ``checkpoint`` / ``lock``; deliberately not a
    :class:`repro.simulation.backend.ConcurrencyBackend` subclass, to
    keep this module import-cycle-free): install with
    :func:`repro.simulation.backend.use_backend`, or let
    :meth:`repro.execution.runner.ProgramRunner.run` install it via its
    ``schedule=`` argument.
    """

    def __init__(
        self,
        strategy: Optional[ScheduleStrategy] = None,
        *,
        seed: Optional[int] = None,
    ) -> None:
        if strategy is None:
            strategy = RandomWalkStrategy(0 if seed is None else seed)
        self.strategy = strategy
        self.scheduler = ControlledScheduler(strategy)
        self._spawn_lock = threading.Lock()
        self._spawned = 0
        self._started_total = 0

    # -- workload API ---------------------------------------------------
    def spawn(self, target: Callable[[], None], name: str = "") -> threading.Thread:
        with self._spawn_lock:
            key = self._spawned
            self._spawned += 1
        label = name or f"worker-{key}"
        scheduler = self.scheduler
        scheduler.register(key, label)

        def gated() -> None:
            try:
                scheduler.enroll(key)
                target()
            except ScheduleAbort:
                pass
            finally:
                scheduler.retire()

        # Daemon: a timed-out controlled run must not pin the process on
        # workers parked in the scheduler gate.
        return threading.Thread(target=gated, name=label, daemon=True)

    def start_all(self, threads: List[threading.Thread]) -> None:
        for thread in threads:
            thread.start()
        with self._spawn_lock:
            self._started_total += len(threads)
            expected = self._started_total
        self.scheduler.start(expected)

    def join_all(self, threads: List[threading.Thread]) -> None:
        for thread in threads:
            thread.join()

    def checkpoint(self, cost: float = 0.0) -> None:
        self.scheduler.yield_point("checkpoint")

    def charge_root(self, cost: float) -> None:
        """Virtual-cost accounting is a simulation concern; no-op here."""

    def lock(self) -> InstrumentedLock:
        return InstrumentedLock(self.scheduler)

    # -- harness API ----------------------------------------------------
    def trace_yield(self) -> None:
        """Yield point invoked by the trace session on every recorded
        print — the ``printProperty`` interception hook."""
        self.scheduler.yield_point("trace")

    def abort(self) -> None:
        self.scheduler.abort()

    def finish(self) -> None:
        """Post-run cleanup: abort only if gated workers linger (a
        program that returned from ``main`` without joining)."""
        if self.scheduler.live_workers():
            self.scheduler.abort()

    @property
    def seed(self) -> Optional[int]:
        return getattr(self.strategy, "seed", None)

    def schedule_id(self) -> str:
        """Stable identity stamped onto this run's trace events."""
        return self.strategy.label()

    def schedule_trace(
        self, identifier: str = "", args: Optional[List[str]] = None
    ) -> ScheduleTrace:
        """The recorded interleaving of the run this backend hosted."""
        scheduler = self.scheduler
        return ScheduleTrace(
            identifier=identifier,
            args=list(args) if args else [],
            strategy=self.strategy.name,
            seed=self.seed,
            workers=dict(scheduler.workers),
            decisions=list(scheduler.decisions),
            deadlocked=scheduler.deadlocked,
            divergence=scheduler.divergence,
        )
