"""Deterministic fault injection: misbehaving programs, on demand.

Every branch of the failure taxonomy needs a test that *provably*
reaches it, and "wait for a student to segfault" is not a test plan.
This module ships one registered tested-program per failure mode, each
deterministic (no randomness, no timing races in what they emit), so
the supervisor, the subprocess runner, and the retry policy can be
exercised end to end:

==================  ====================================================
identifier          behaviour
==================  ====================================================
``faults.ok``       prints a tiny valid trace and exits cleanly
``faults.hang``     prints a partial trace, flushes, then never returns
                    (the deadlocked-join shape; must be hard-killed)
``faults.crash``    prints a partial trace then raises
``faults.signal``   prints a partial trace then kills itself with a
                    signal (arg 0: signal number, default ``SIGKILL``)
``faults.truncate`` writes a property line with **no** trailing newline
                    straight to fd 1 and ``os._exit(0)`` — a trace torn
                    mid-line, as a kill mid-write would leave it
``faults.garble``   emits property-shaped lines that fail the grammar
``faults.flaky``    fails the first K runs, then passes — driven by a
                    counter file (arg 0: path, arg 1: K, default 1) so
                    the nondeterminism is *scripted*, not real
==================  ====================================================

All of them resolve through the normal registry (imported via
:mod:`repro.workloads`, so the subprocess child sees them too) and
print through :func:`repro.tracing.print_property` like any tested
program — the faults live in the *program*, never in the harness.

Beyond the per-program faults, this module also hosts the
**process-level** fault programs of the sharded grading service
(:mod:`repro.grading.service`): a :class:`ShardFaultProgram` scripts one
way a whole shard worker process dies — ``kill -9`` at a chosen
submission index, a heartbeat stall (the worker wedges but stays
alive), or a journal write torn between record and fsync — and
:data:`SHARD_FAULT_SCENARIOS` is the deterministic drill matrix the
recovery tests and the CI fault-drill job iterate.
"""

from __future__ import annotations

import os
import signal as signal_module
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.execution.registry import register_main
from repro.tracing import print_property

__all__ = [
    "ok_main",
    "hang_main",
    "crash_main",
    "signal_main",
    "truncate_main",
    "garble_main",
    "flaky_main",
    "killer_main",
    "FAULT_IDENTIFIERS",
    "ShardFaultProgram",
    "ShardFaultScenario",
    "SHARD_FAULT_KINDS",
    "SHARD_FAULT_SCENARIOS",
]

#: Identifier -> registered fault main, for sweeps in tests and docs.
FAULT_IDENTIFIERS = (
    "faults.ok",
    "faults.hang",
    "faults.crash",
    "faults.signal",
    "faults.truncate",
    "faults.garble",
    "faults.flaky",
    "faults.killer",
)


@register_main("faults.ok")
def ok_main(args: List[str]) -> None:
    """A minimal healthy program: one property, clean exit."""
    print_property("Fault", "none")


@register_main("faults.hang")
def hang_main(args: List[str]) -> None:
    """Emit a partial trace, flush it past the pipe buffer, then hang.

    The flush matters: a hung child killed by the watchdog never runs
    its exit-time flush, so without it the "partial output before the
    timeout" evidence would die in the child's stdio buffer.
    """
    print_property("Fault", "hang")
    print_property("Progress", 1)
    sys.stdout.flush()
    while True:  # pragma: no cover - only ever exits by being killed
        time.sleep(3600)


@register_main("faults.crash")
def crash_main(args: List[str]) -> None:
    """Emit a partial trace then die the way student code dies."""
    print_property("Fault", "crash")
    raise RuntimeError("injected crash")


@register_main("faults.signal")
def signal_main(args: List[str]) -> None:
    """Emit a partial trace then die by signal (default ``SIGKILL``).

    ``args[0]`` may name the signal number — e.g. ``11`` to simulate a
    segfault — so tests can pin the exact negative returncode.
    """
    print_property("Fault", "signal")
    sys.stdout.flush()
    signum = int(args[0]) if args else int(signal_module.SIGKILL)
    os.kill(os.getpid(), signum)


@register_main("faults.truncate")
def truncate_main(args: List[str]) -> None:
    """Leave a trace torn mid-line.

    Writes directly to fd 1 (bypassing the line-atomic wrapper, which
    would otherwise refuse to emit an unterminated line) and exits with
    ``os._exit`` so no buffered-IO cleanup appends the newline for us.
    """
    print_property("Fault", "truncate")
    sys.stdout.flush()
    os.write(1, b"Thread 9->Index:4")  # no newline: torn mid-value
    os._exit(0)


@register_main("faults.garble")
def garble_main(args: List[str]) -> None:
    """Emit property-shaped lines that fail the standard grammar."""
    print_property("Fault", "garble")
    print("Thread 9->NoColonHere")  # property-shaped, unparseable
    print("Thread notanumber->X:1")


@register_main("faults.flaky")
def flaky_main(args: List[str]) -> None:
    """Fail deterministically for the first K runs, then pass.

    ``args[0]`` is a counter-file path shared across runs; ``args[1]``
    is K (default 1).  Each failing run appends one line to the file
    and crashes; once K lines exist the program prints a clean trace.
    This scripts exactly the pass-by-luck shape rerun-vote grading must
    distinguish from deterministic wrongness.
    """
    if not args:
        raise ValueError("faults.flaky needs a counter-file path argument")
    counter = Path(args[0])
    failures_wanted = int(args[1]) if len(args) > 1 else 1
    failures_so_far = (
        len(counter.read_text().splitlines()) if counter.exists() else 0
    )
    if failures_so_far < failures_wanted:
        with counter.open("a") as handle:
            handle.write("fail\n")
        raise RuntimeError(
            f"injected flaky failure {failures_so_far + 1}/{failures_wanted}"
        )
    print_property("Fault", "flaky-but-recovered")


@register_main("faults.killer")
def killer_main(args: List[str]) -> None:
    """SIGKILL the *hosting interpreter* — the shard-crasher shape.

    Graded in a subprocess this is just a signal death; graded
    *in-process* inside a shard worker it takes the whole worker down,
    every incarnation, which is exactly the repeated-crash submission
    the service's quarantine policy exists for.
    """
    print_property("Fault", "killer")
    sys.stdout.flush()
    os.kill(os.getpid(), signal_module.SIGKILL)


# ----------------------------------------------------------------------
# Process-level faults: how a whole shard worker dies
# ----------------------------------------------------------------------

#: The closed set of shard-level fault kinds a worker can be scripted
#: to exhibit.  ``none`` is the explicit no-fault program.
SHARD_FAULT_KINDS = (
    "none",
    "kill-at-index",
    "heartbeat-stall",
    "torn-journal-write",
)


@dataclass(frozen=True)
class ShardFaultProgram:
    """A scripted process-level death for one shard worker.

    The program is carried in the shard manifest and interpreted by the
    worker at its journal-append hook, so the fault fires at an exact,
    reproducible point in the shard's submission sequence:

    ``kill-at-index``
        ``SIGKILL`` the worker immediately *before* appending the
        record at ``index`` — that submission was graded but is not
        durable, the canonical requeue-from-journal case.
    ``heartbeat-stall``
        After appending the record at ``index``, stop heartbeating and
        wedge forever — the worker is alive but silent, and only the
        coordinator's missed-heartbeat watchdog can recover the shard.
    ``torn-journal-write``
        Write only a prefix of the record at ``index`` (no newline, no
        fsync) and ``SIGKILL`` mid-write — the crash-between-record-and-
        fsync shape that leaves a torn journal tail behind.

    Faults are one-shot: the coordinator clears the program when it
    respawns the shard, so recovery is observable rather than cyclic.
    """

    kind: str = "none"
    #: Zero-based index into the shard's journal-append sequence at
    #: which the fault fires.
    index: int = 0
    #: Which shard of the batch the program applies to.
    shard: int = 0

    def __post_init__(self) -> None:
        """Validate the kind against the closed set."""
        if self.kind not in SHARD_FAULT_KINDS:
            raise ValueError(
                f"unknown shard fault kind {self.kind!r}; "
                f"known: {', '.join(SHARD_FAULT_KINDS)}"
            )

    @property
    def is_none(self) -> bool:
        """True for the explicit no-fault program."""
        return self.kind == "none"

    def to_dict(self) -> Dict[str, Any]:
        """Primitive-dict form for the shard manifest."""
        return {"kind": self.kind, "index": self.index, "shard": self.shard}

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "ShardFaultProgram":
        """Rebuild from a manifest dict (``None`` -> no fault)."""
        if not data:
            return cls()
        return cls(
            kind=data.get("kind", "none"),
            index=int(data.get("index", 0)),
            shard=int(data.get("shard", 0)),
        )

    # ------------------------------------------------------------------
    # Worker-side hooks (called by the shard worker's journal wrapper)
    # ------------------------------------------------------------------
    def fire_before_append(self, append_index: int) -> None:
        """``kill-at-index``: die before the record becomes durable."""
        if self.kind == "kill-at-index" and append_index == self.index:
            os.kill(os.getpid(), signal_module.SIGKILL)

    def fire_torn_append(
        self, append_index: int, line: str, handle
    ) -> None:
        """``torn-journal-write``: write half the line, then die.

        The partial write is flushed (so the torn bytes actually reach
        the file) but never fsynced and never newline-terminated — the
        reader must treat it as a torn tail, not a durable record.
        """
        if self.kind == "torn-journal-write" and append_index == self.index:
            handle.write(line[: max(1, len(line) // 2)])
            handle.flush()
            os.kill(os.getpid(), signal_module.SIGKILL)

    def stalls_after(self, append_index: int) -> bool:
        """``heartbeat-stall``: True when the worker must wedge now."""
        return self.kind == "heartbeat-stall" and append_index == self.index


@dataclass(frozen=True)
class ShardFaultScenario:
    """One named entry of the crash-recovery drill matrix."""

    name: str
    fault: ShardFaultProgram
    description: str


#: The deterministic crash-recovery drill matrix: every scenario is run
#: by ``tests/test_service.py`` and the CI fault-drill job, and each
#: must end in a merged gradebook identical (modulo timestamps) to an
#: undisturbed run's.  Coordinator-level SIGTERM is drilled separately
#: (``scripts/fault_drill.py``) because it is not a *worker* fault.
SHARD_FAULT_SCENARIOS: Tuple[ShardFaultScenario, ...] = (
    ShardFaultScenario(
        "shard-kill",
        ShardFaultProgram("kill-at-index", index=1),
        "worker SIGKILLed before its second record is durable; the "
        "respawned shard regrades exactly the non-durable submissions",
    ),
    ShardFaultScenario(
        "heartbeat-stall",
        ShardFaultProgram("heartbeat-stall", index=0),
        "worker wedges silently after its first record; the missed-"
        "heartbeat watchdog hard-kills and respawns it",
    ),
    ShardFaultScenario(
        "torn-journal-write",
        ShardFaultProgram("torn-journal-write", index=1),
        "worker dies mid-append between record and fsync; the torn "
        "tail is dropped with a warning and the submission regraded",
    ),
)
