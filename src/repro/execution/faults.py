"""Deterministic fault injection: misbehaving programs, on demand.

Every branch of the failure taxonomy needs a test that *provably*
reaches it, and "wait for a student to segfault" is not a test plan.
This module ships one registered tested-program per failure mode, each
deterministic (no randomness, no timing races in what they emit), so
the supervisor, the subprocess runner, and the retry policy can be
exercised end to end:

==================  ====================================================
identifier          behaviour
==================  ====================================================
``faults.ok``       prints a tiny valid trace and exits cleanly
``faults.hang``     prints a partial trace, flushes, then never returns
                    (the deadlocked-join shape; must be hard-killed)
``faults.crash``    prints a partial trace then raises
``faults.signal``   prints a partial trace then kills itself with a
                    signal (arg 0: signal number, default ``SIGKILL``)
``faults.truncate`` writes a property line with **no** trailing newline
                    straight to fd 1 and ``os._exit(0)`` — a trace torn
                    mid-line, as a kill mid-write would leave it
``faults.garble``   emits property-shaped lines that fail the grammar
``faults.flaky``    fails the first K runs, then passes — driven by a
                    counter file (arg 0: path, arg 1: K, default 1) so
                    the nondeterminism is *scripted*, not real
==================  ====================================================

All of them resolve through the normal registry (imported via
:mod:`repro.workloads`, so the subprocess child sees them too) and
print through :func:`repro.tracing.print_property` like any tested
program — the faults live in the *program*, never in the harness.
"""

from __future__ import annotations

import os
import signal as signal_module
import sys
import time
from pathlib import Path
from typing import List

from repro.execution.registry import register_main
from repro.tracing import print_property

__all__ = [
    "ok_main",
    "hang_main",
    "crash_main",
    "signal_main",
    "truncate_main",
    "garble_main",
    "flaky_main",
    "FAULT_IDENTIFIERS",
]

#: Identifier -> registered fault main, for sweeps in tests and docs.
FAULT_IDENTIFIERS = (
    "faults.ok",
    "faults.hang",
    "faults.crash",
    "faults.signal",
    "faults.truncate",
    "faults.garble",
    "faults.flaky",
)


@register_main("faults.ok")
def ok_main(args: List[str]) -> None:
    """A minimal healthy program: one property, clean exit."""
    print_property("Fault", "none")


@register_main("faults.hang")
def hang_main(args: List[str]) -> None:
    """Emit a partial trace, flush it past the pipe buffer, then hang.

    The flush matters: a hung child killed by the watchdog never runs
    its exit-time flush, so without it the "partial output before the
    timeout" evidence would die in the child's stdio buffer.
    """
    print_property("Fault", "hang")
    print_property("Progress", 1)
    sys.stdout.flush()
    while True:  # pragma: no cover - only ever exits by being killed
        time.sleep(3600)


@register_main("faults.crash")
def crash_main(args: List[str]) -> None:
    """Emit a partial trace then die the way student code dies."""
    print_property("Fault", "crash")
    raise RuntimeError("injected crash")


@register_main("faults.signal")
def signal_main(args: List[str]) -> None:
    """Emit a partial trace then die by signal (default ``SIGKILL``).

    ``args[0]`` may name the signal number — e.g. ``11`` to simulate a
    segfault — so tests can pin the exact negative returncode.
    """
    print_property("Fault", "signal")
    sys.stdout.flush()
    signum = int(args[0]) if args else int(signal_module.SIGKILL)
    os.kill(os.getpid(), signum)


@register_main("faults.truncate")
def truncate_main(args: List[str]) -> None:
    """Leave a trace torn mid-line.

    Writes directly to fd 1 (bypassing the line-atomic wrapper, which
    would otherwise refuse to emit an unterminated line) and exits with
    ``os._exit`` so no buffered-IO cleanup appends the newline for us.
    """
    print_property("Fault", "truncate")
    sys.stdout.flush()
    os.write(1, b"Thread 9->Index:4")  # no newline: torn mid-value
    os._exit(0)


@register_main("faults.garble")
def garble_main(args: List[str]) -> None:
    """Emit property-shaped lines that fail the standard grammar."""
    print_property("Fault", "garble")
    print("Thread 9->NoColonHere")  # property-shaped, unparseable
    print("Thread notanumber->X:1")


@register_main("faults.flaky")
def flaky_main(args: List[str]) -> None:
    """Fail deterministically for the first K runs, then pass.

    ``args[0]`` is a counter-file path shared across runs; ``args[1]``
    is K (default 1).  Each failing run appends one line to the file
    and crashes; once K lines exist the program prints a clean trace.
    This scripts exactly the pass-by-luck shape rerun-vote grading must
    distinguish from deterministic wrongness.
    """
    if not args:
        raise ValueError("faults.flaky needs a counter-file path argument")
    counter = Path(args[0])
    failures_wanted = int(args[1]) if len(args) > 1 else 1
    failures_so_far = (
        len(counter.read_text().splitlines()) if counter.exists() else 0
    )
    if failures_so_far < failures_wanted:
        with counter.open("a") as handle:
            handle.write("fail\n")
        raise RuntimeError(
            f"injected flaky failure {failures_so_far + 1}/{failures_wanted}"
        )
    print_property("Fault", "flaky-but-recovered")
