"""Supervised batch grading: a worker pool that survives its workload.

The paper's division of labour — the infrastructure owns invocation and
error reporting — has a batch-scale consequence: one deadlocked
submission must not stall a class, one segfault must not lose a
session, and a racy program must not be graded by the luck of one
schedule.  This module is that supervision layer:

* a bounded pool of worker threads grades submissions concurrently,
  each under a per-submission wall-clock **deadline**;
* a **watchdog** thread enforces deadlines from outside: a worker stuck
  waiting on a subprocess child gets that child *hard-killed* (via the
  active-child registry in
  :mod:`repro.execution.subprocess_runner`), and a worker wedged in
  pure-Python code is abandoned — its task is resolved as a timeout, a
  replacement worker is spawned, and the batch moves on;
* failed attempts are **retried** with jittered exponential backoff,
  and the per-attempt outcomes are kept (rerun-vote): a submission that
  fails then passes is recorded as ``flaky-pass``, distinct from
  "deterministically wrong";
* every finished submission is checkpointed to a
  :class:`~repro.grading.journal.GradingJournal`, so an interrupted
  batch resumes without regrading and converges to the same gradebook.

The supervisor is deliberately *outside* the test framework: suites and
checkers never learn about deadlines, retries, or journals — exactly as
tested programs never learn how they are invoked.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.execution.subprocess_runner import kill_active_child
from repro.execution.taxonomy import RETRYABLE_KINDS, FailureKind
from repro.obs import get_registry as _obs_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.execution.races import RaceReport
    from repro.execution.scheduling import ScheduleTrace
    from repro.grading.gradebook import Gradebook
    from repro.grading.journal import GradingJournal
    from repro.grading.records import SubmissionRecord
    from repro.testfw.result import SuiteResult
    from repro.testfw.suite import TestSuite

__all__ = [
    "GradingSupervisor",
    "SubmissionOutcome",
    "BatchReport",
    "suite_failure_kind",
]

SuiteFactory = Callable[[str], "TestSuite"]

#: Kind precedence when a suite's tests disagree: the most
#: infrastructure-relevant cause wins (an infra error needs a human
#: before a timeout does; a garbled trace is the least alarming).
_KIND_PRECEDENCE = (
    FailureKind.INFRA_ERROR,
    FailureKind.TIMEOUT,
    FailureKind.SIGNAL,
    FailureKind.CRASH,
    FailureKind.GARBLED_TRACE,
)


def _attempt_label(kind: FailureKind, result: "SuiteResult") -> str:
    """One attempt's entry in the rerun-vote history.

    Failure kinds appear verbatim; clean runs distinguish a full pass
    from partial credit, so ``["crash", "pass"]`` reads as flaky while
    ``["fail(80%)", "fail(80%)"]`` reads as deterministically wrong.
    """
    if kind is not FailureKind.OK:
        return kind.value
    if result.score >= result.max_score:
        return "pass"
    return f"fail({result.percent:.0f}%)"


def suite_failure_kind(result: "SuiteResult") -> FailureKind:
    """Classify a whole suite run by its worst test-level kind.

    A suite whose programs all ran cleanly is ``OK`` even when it earned
    partial credit — a wrong answer is a grade, not a failure.
    """
    kinds = []
    for test in result.results:
        if test.failure_kind:
            kind = FailureKind(test.failure_kind)
            if kind is not FailureKind.OK:
                kinds.append(kind)
        elif test.fatal:
            # A fatal with no taxonomy kind is the harness's own doing.
            kinds.append(FailureKind.INFRA_ERROR)
    for kind in _KIND_PRECEDENCE:
        if kind in kinds:
            return kind
    return kinds[0] if kinds else FailureKind.OK


@dataclass
class _ExploreVerdict:
    """What schedule exploration concluded about one submission.

    Linear strategies (random-walk, pct) pin a failure to a seed;
    exhaustive mode instead reports coverage: ``failing`` of
    ``enumerated`` distinct interleavings fail, with ``complete`` saying
    whether the enumeration covered the whole bound or hit the
    execution budget.
    """

    found: bool = False
    failing_seed: Optional[int] = None
    failing: Optional[int] = None
    enumerated: Optional[int] = None
    complete: Optional[bool] = None
    #: Merged lockset/happens-before evidence across every explored
    #: schedule (``None`` when race detection was off).
    race_report: Optional["RaceReport"] = None


@dataclass
class SubmissionOutcome:
    """Everything the supervisor learned about one submission."""

    student: str
    identifier: str
    record: "SubmissionRecord"
    #: Live suite result of the recorded attempt (``None`` when the
    #: grade was resumed from a journal or forced by the watchdog).
    result: Optional["SuiteResult"]
    failure_kind: FailureKind
    attempts: int
    attempt_outcomes: List[str] = field(default_factory=list)
    resumed: bool = False
    #: Recorded interleaving of the failing controlled schedule, when
    #: N-schedule exploration reproduced the failure (savable for replay).
    schedule_trace: Optional["ScheduleTrace"] = None


@dataclass
class BatchReport:
    """The supervisor's full answer for one batch."""

    gradebook: "Gradebook"
    live: Dict[str, "SuiteResult"]
    outcomes: Dict[str, SubmissionOutcome]
    resumed: List[str] = field(default_factory=list)
    #: Students dropped unworked by :meth:`GradingSupervisor.request_stop`
    #: (a drained batch); absent from ``outcomes`` and the gradebook.
    dropped: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """Operator-facing one-screen account of the batch."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes.values():
            key = outcome.failure_kind.value
            counts[key] = counts.get(key, 0) + 1
        parts = [f"{kind}={count}" for kind, count in sorted(counts.items())]
        lines = [
            f"graded {len(self.outcomes)} submission(s)"
            + (f", {len(self.resumed)} resumed from journal" if self.resumed else "")
            + (": " + ", ".join(parts) if parts else "")
        ]
        flaky = [s for s, o in self.outcomes.items() if o.record.flaky]
        if flaky:
            lines.append(
                "schedule-dependent (rerun-vote disagreed): " + ", ".join(sorted(flaky))
            )
        racy_bits = []
        for s in sorted(self.outcomes):
            record = self.outcomes[s].record
            if not record.racy:
                continue
            if record.schedule_seed is not None:
                bit = f"{s} @seed {record.schedule_seed}"
            else:
                bit = (
                    f"{s} ({record.interleavings_failing} of "
                    f"{record.interleavings_total} interleavings fail)"
                )
            if record.race_count:
                bit += f" [{record.race_tag()}]"
            racy_bits.append(bit)
        if racy_bits:
            lines.append(
                "racy (failure reproduces under a recorded schedule): "
                + ", ".join(racy_bits)
            )
        lucky_bits = [
            f"{s} ({self.outcomes[s].record.race_tag()})"
            for s in sorted(self.outcomes)
            if self.outcomes[s].record.racy_lucky
        ]
        if lucky_bits:
            lines.append(
                "racy-lucky (every explored schedule passed, but a race "
                "was detected): " + ", ".join(lucky_bits)
            )
        return "\n".join(lines)


class _TaskState:
    """Watchdog-visible state of one in-flight submission."""

    def __init__(self, student: str, identifier: str) -> None:
        self.student = student
        self.identifier = identifier
        self.worker: Optional[threading.Thread] = None
        #: Monotonic instant after which the watchdog intervenes;
        #: ``None`` while disarmed (between attempts / during backoff).
        self.deadline_at: Optional[float] = None
        #: The watchdog already hard-killed this attempt's child.
        self.killed = False
        self.resolved = False
        self.abandoned = False
        #: Attempt kinds observed so far (for a watchdog-forced record).
        self.attempt_outcomes: List[str] = []
        #: Recorded failing interleaving from schedule exploration.
        self.failing_trace = None


class GradingSupervisor:
    """Grade a submissions dict under supervision.

    Parameters
    ----------
    suite_factory:
        Builds the problem's suite for one submission identifier —
        the same callable :func:`repro.grading.batch.grade_submissions`
        takes.
    jobs:
        Worker-pool width (1 = serial, the exact semantics of the
        unsupervised path, still with deadlines/retries/journal).
    retries:
        Extra attempts for a failed submission.  All failures are
        retried except ``infra-error`` (the harness is broken; retrying
        regrades nothing).
    deadline:
        Per-*attempt* wall-clock limit in seconds; ``None`` disables
        the watchdog.  This backstops the runners' own timeouts: it
        also catches hangs in harness code the runners never see.
    backoff:
        Base of the jittered exponential backoff between attempts.
    jitter_seed:
        Seeds the per-submission jitter streams; a fixed seed makes the
        whole retry schedule reproducible.
    journal:
        Checkpoint journal.  Entries already present are *not*
        regraded; every newly finished submission is appended.
    explore_schedules:
        When > 0, a submission whose first attempt fails retryably is
        re-graded under this many *controlled* schedules (seeded random
        walks via :mod:`repro.execution.scheduling`) instead of blind
        reruns.  The first failing schedule becomes the grade of record
        with its seed attached (``SubmissionRecord.schedule_seed``) so
        the race replays on demand; if every explored schedule passes
        the submission is exonerated as ``flaky-pass``.
    explore_seed:
        First seed of the exploration range (seeds
        ``explore_seed .. explore_seed + explore_schedules - 1``); fixed
        seeds make the whole batch's verdicts host-independent.
    explore_strategy:
        Which schedule family exploration draws from: ``"random-walk"``
        (the default), ``"pct"`` (probabilistic concurrency testing —
        randomized priorities with ``explore_depth - 1`` priority-change
        points, far more likely to hit low-depth ordering bugs), or
        ``"exhaustive"`` (enumerate *all* distinct interleavings up to
        ``explore_depth`` preemptions, budgeted by
        ``explore_schedules`` executions).  Exhaustive verdicts carry
        coverage — "N of M distinct interleavings fail" — into the
        record's ``interleavings_*`` fields instead of a seed.
    explore_depth:
        PCT depth *d* / exhaustive preemption bound (ignored by
        random-walk).
    pool:
        Optional :class:`~repro.execution.worker_pool.WorkerPool`.  When
        given, every test of every built suite is rebound to a pooled
        :class:`~repro.execution.subprocess_runner.SubprocessRunner` —
        i.e. a pool implies subprocess isolation — so submissions
        dispatch to warm pre-forked interpreters instead of cold-starting
        one per run.  Watchdog deadline kills and respawn still work:
        the pooled runner registers its worker process in the same
        active-children table the cold path uses, and the pool respawns
        killed workers on check-in.  The pool's lifetime belongs to the
        caller.
    race_detect:
        Run lockset/happens-before race analysis
        (:mod:`repro.execution.races`) over every controlled schedule
        exploration records, and grade with a three-way *concurrency
        verdict*: ``correct`` / ``racy-lucky`` (every explored schedule
        passed but a race exists — the answer was right by scheduling
        luck) / ``wrong``.  With this flag a submission whose free
        running attempt passes outright is still swept through schedule
        exploration (when ``explore_schedules`` > 0), so a lucky racy
        program cannot dodge analysis by passing first try.
    race_credit:
        Apply :func:`repro.core.credit.race_partial_credit` to the
        grade of record: a ``racy-lucky`` full-marks score is capped,
        and a race-only bug (wrong under one schedule, passing under
        another) is floored at a fraction of its passing attempt.
        Implies ``race_detect``.
    dedup:
        Grade sha256-identical submissions once: duplicates are detected
        up front (:func:`repro.grading.dedup.group_submissions`), only
        group representatives are queued, and each resolved
        representative fans its record out to its clones (distinct
        student names, shared result).  Clones are journaled
        individually, so resume behaves as if they had been graded.
    """

    #: How long after a hard kill the watchdog waits before concluding
    #: the worker is wedged in pure-Python code and abandoning it.
    KILL_GRACE = 1.0

    def __init__(
        self,
        suite_factory: SuiteFactory,
        *,
        jobs: int = 1,
        retries: int = 0,
        deadline: Optional[float] = None,
        backoff: float = 0.05,
        jitter_seed: int = 0,
        journal: Optional["GradingJournal"] = None,
        watchdog_poll: float = 0.05,
        suite_name: str = "",
        explore_schedules: int = 0,
        explore_seed: int = 0,
        explore_strategy: str = "random-walk",
        explore_depth: int = 3,
        pool: Optional[object] = None,
        dedup: bool = False,
        race_detect: bool = False,
        race_credit: bool = False,
        on_outcome: Optional[Callable[[SubmissionOutcome], None]] = None,
    ) -> None:
        """Configure the supervisor; see the class docstring for knobs.

        *on_outcome* is called once per resolved submission (clones from
        dedup fan-out included), after the outcome is journaled — the
        hook live progress streaming attaches to.  Exceptions it raises
        are swallowed: telemetry must never fail a grade.
        """
        self.suite_factory = suite_factory
        self.jobs = max(1, int(jobs))
        self.retries = max(0, int(retries))
        self.deadline = deadline
        self.backoff = backoff
        self.jitter_seed = jitter_seed
        self.journal = journal
        self.watchdog_poll = watchdog_poll
        self._suite_name = suite_name
        self.explore_schedules = max(0, int(explore_schedules))
        self.explore_seed = int(explore_seed)
        if explore_strategy not in ("random-walk", "pct", "exhaustive"):
            raise ValueError(
                f"unknown explore_strategy {explore_strategy!r}: "
                "expected 'random-walk', 'pct', or 'exhaustive'"
            )
        self.explore_strategy = explore_strategy
        self.explore_depth = max(0, int(explore_depth))
        self.pool = pool
        self.on_outcome = on_outcome
        self.dedup = bool(dedup)
        self.race_credit = bool(race_credit)
        self.race_detect = bool(race_detect) or self.race_credit
        #: representative student -> later (student, identifier) pairs
        #: whose submissions hash identically; resolved by fan-out.
        self._clones: Dict[str, List[Tuple[str, str]]] = {}

        #: Serial for replacement-worker names; starts past the initial
        #: pool's indices so a replacement can never collide with a live
        #: worker (the old millisecond-derived name could).
        self._worker_serial = itertools.count(self.jobs)
        #: Monotonic origin of the batch; records carry ``elapsed``
        #: relative to this so resume ordering survives wall-clock jumps.
        self._epoch = time.monotonic()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._queue: deque = deque()
        self._active: Dict[threading.Thread, _TaskState] = {}
        self._outcomes: Dict[str, SubmissionOutcome] = {}
        self._expected = 0
        self._stop = False
        self._journal_lock = threading.Lock()
        #: Live workers not yet abandoned by the watchdog.  Restaffing
        #: compares this against the remaining queue so a total-wedge
        #: storm cannot spawn (and count) more replacements than there
        #: is queued work to hand them.
        self._healthy_workers = 0
        #: Threads the watchdog abandoned (already decremented from
        #: ``_healthy_workers``; their eventual exit must not decrement
        #: again).
        self._abandoned_workers: set = set()
        #: (student, identifier) pairs dropped unworked by
        #: :meth:`request_stop`, in queue order.
        self._dropped: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def grade(self, submissions: Dict[str, str]) -> BatchReport:
        """Grade every (student -> identifier) pair; returns the report.

        The gradebook's contents and ordering depend only on
        ``submissions`` — never on worker completion order — so a
        parallel batch, a serial batch, and a resumed batch of the same
        input are byte-identical once saved.
        """
        from repro.grading.gradebook import Gradebook

        self._epoch = time.monotonic()
        resumed = self._load_journal(submissions)
        pending = [
            (student, identifier)
            for student, identifier in submissions.items()
            if student not in self._outcomes
        ]

        clones: Dict[str, List[Tuple[str, str]]] = {}
        queueable = pending
        if self.dedup and pending:
            from repro.grading.dedup import group_submissions

            queueable, clones = group_submissions(pending)
            duplicates = len(pending) - len(queueable)
            if duplicates:
                obs = _obs_registry()
                obs.counter("dedup.groups").inc(len(clones))
                obs.counter("dedup.duplicates_skipped").inc(duplicates)

        enqueued_at = time.monotonic()
        with self._lock:
            self._clones = clones
            self._expected = len(self._outcomes) + len(pending)
            self._queue.extend(
                (student, identifier, enqueued_at)
                for student, identifier in queueable
            )
            self._stop = False

        workers = [
            self._spawn_worker(i) for i in range(min(self.jobs, len(queueable)))
        ]
        stop_watchdog = threading.Event()
        watchdog = None
        if self.deadline is not None and pending:
            watchdog = threading.Thread(
                target=self._watchdog_loop,
                args=(stop_watchdog,),
                name="grading-watchdog",
                daemon=True,
            )
            watchdog.start()

        try:
            with self._done:
                while len(self._outcomes) < self._expected:
                    self._done.wait(timeout=0.1)
        except BaseException:
            # KeyboardInterrupt / crash: stop handing out work; the
            # journal already holds everything that finished.
            with self._lock:
                self._stop = True
                self._queue.clear()
            stop_watchdog.set()
            raise
        stop_watchdog.set()
        for worker in workers:
            worker.join(timeout=1.0)
        if watchdog is not None:
            watchdog.join(timeout=1.0)

        # Deterministic merge: submissions order, never completion order.
        # A drained batch (request_stop) legitimately has no outcome for
        # the dropped students; they are simply absent from the report.
        book = Gradebook(self._suite_name)
        live: Dict[str, "SuiteResult"] = {}
        ordered: Dict[str, SubmissionOutcome] = {}
        for student in submissions:
            outcome = self._outcomes.get(student)
            if outcome is None:
                continue
            ordered[student] = outcome
            record = outcome.record
            if not record.suite:
                record.suite = book.suite
            book.record(record)
            if outcome.result is not None:
                live[student] = outcome.result
        with self._lock:
            dropped = [student for student, _ in self._dropped]
        return BatchReport(
            gradebook=book,
            live=live,
            outcomes=ordered,
            resumed=resumed,
            dropped=dropped,
        )

    def request_stop(self) -> List[Tuple[str, str]]:
        """Drain the batch: finish in-flight work, drop the queue.

        Safe to call from any thread *other than* one currently inside
        :meth:`grade` (a signal handler should set a flag and delegate
        to a helper thread).  Queued submissions are dropped unworked
        and returned as (student, identifier) pairs, in queue order;
        in-flight attempts run to completion and are journaled as
        usual, so the interrupted batch is exactly resumable.
        """
        with self._lock:
            self._stop = True
            dropped = []
            for student, identifier, _ in self._queue:
                dropped.append((student, identifier))
                # A dropped representative takes its unworked clones
                # with it — they were never queued in their own right.
                dropped.extend(self._clones.pop(student, []))
            self._queue.clear()
            self._dropped.extend(dropped)
            self._expected -= len(dropped)
        with self._done:
            self._done.notify_all()
        return dropped

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _load_journal(self, submissions: Dict[str, str]) -> List[str]:
        if self.journal is None:
            return []
        resumed: List[str] = []
        for student, entry in self.journal.completed().items():
            if student not in submissions:
                continue  # journaled under a different batch
            record = entry.record
            self._outcomes[student] = SubmissionOutcome(
                student=student,
                identifier=entry.identifier,
                record=record,
                result=None,
                failure_kind=FailureKind(record.failure_kind or "ok"),
                attempts=record.attempts,
                attempt_outcomes=list(record.attempt_outcomes),
                resumed=True,
            )
            resumed.append(student)
        if not self._suite_name:
            self._suite_name = self.journal.suite_name() or ""
        return sorted(resumed)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _spawn_worker(self, index: int) -> threading.Thread:
        with self._lock:
            self._healthy_workers += 1
        worker = threading.Thread(
            target=self._worker_loop, name=f"grading-worker-{index}", daemon=True
        )
        worker.start()
        return worker

    def _worker_loop(self) -> None:
        try:
            self._worker_loop_body()
        finally:
            # An abandoned worker was already written off by the
            # watchdog; everyone else leaves the healthy pool here.
            with self._lock:
                if threading.current_thread() in self._abandoned_workers:
                    self._abandoned_workers.discard(threading.current_thread())
                else:
                    self._healthy_workers -= 1

    def _worker_loop_body(self) -> None:
        obs = _obs_registry()
        while True:
            with self._lock:
                if self._stop or not self._queue:
                    return
                student, identifier, enqueued_at = self._queue.popleft()
                task = _TaskState(student, identifier)
                task.worker = threading.current_thread()
                self._active[task.worker] = task
            queue_wait = time.monotonic() - enqueued_at
            obs.histogram("supervisor.queue_wait.seconds").observe(queue_wait)
            span = obs.begin_span(
                "supervisor.submission",
                student=student,
                identifier=identifier,
                queue_wait=round(queue_wait, 6),
            )
            try:
                outcome = self._grade_with_retries(task)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                outcome = self._infra_outcome(task, exc)
            finally:
                obs.end_span(span)
            span.set(
                failure_kind=outcome.failure_kind.value,
                attempts=outcome.attempts,
            )
            obs.histogram("supervisor.submission.seconds").observe(span.duration)
            abandoned = not self._resolve(task, outcome)
            if abandoned:
                # The watchdog gave up on us and spawned a replacement;
                # whatever we just computed lost the race.  Do not pull
                # further tasks from a thread presumed wedged.
                return

    def _run_attempt(
        self, task: _TaskState, backend=None
    ) -> Tuple[FailureKind, "SuiteResult"]:
        """One armed suite run, optionally under a controlled backend.

        A controlled attempt holds the in-process session lock for the
        whole suite run, so a parallel batch cannot interleave another
        submission's run into the installed ambient backend.
        """
        obs = _obs_registry()
        seed = getattr(getattr(backend, "strategy", None), "seed", None)
        with obs.span(
            "supervisor.attempt", identifier=task.identifier, seed=seed
        ) as span:
            self._arm(task)
            try:
                suite = self._bind_pool(self.suite_factory(task.identifier))
                if backend is None:
                    result = suite.run()
                else:
                    from repro.execution.runner import in_process_session_lock
                    from repro.simulation.backend import use_backend

                    with in_process_session_lock():
                        with use_backend(backend):
                            result = suite.run()
            finally:
                self._disarm(task)
            kind = suite_failure_kind(result)
            span.set(kind=kind.value, score=result.score)
        obs.histogram("supervisor.attempt.seconds").observe(span.duration)
        return kind, result

    def _bind_pool(self, suite: "TestSuite") -> "TestSuite":
        """Rebind a suite's tests to pooled subprocess runners.

        No-op without a pool.  With one, every test that exposes
        ``make_runner`` dispatches to the warm pool — the supervisor's
        ``pool=`` mode implies subprocess isolation for the whole suite.
        """
        if self.pool is None:
            return suite
        from repro.execution.subprocess_runner import SubprocessRunner

        pool = self.pool
        for test in suite.tests:
            if hasattr(test, "make_runner"):
                test.make_runner = (  # type: ignore[method-assign]
                    lambda: SubprocessRunner(pool=pool)
                )
        return suite

    def _explore_racy(
        self,
        task: _TaskState,
        attempts: List[Tuple[FailureKind, "SuiteResult"]],
    ) -> _ExploreVerdict:
        """Schedule exploration after a retryable first failure.

        Linear strategies (``random-walk``, ``pct``) re-grade under
        ``explore_schedules`` seeded controlled schedules, appending
        each controlled attempt (labelled ``@s<seed>`` in the
        rerun-vote history) and stopping at the first failing seed —
        whose attempt, now last in *attempts*, is the deterministic
        grade of record.  ``exhaustive`` instead enumerates every
        distinct interleaving within the preemption bound and reports
        coverage.  Either way the returned verdict says whether a
        failing schedule was pinned or the submission was exonerated.
        """
        from repro.execution.scheduling import (
            PCTStrategy,
            RandomWalkStrategy,
            ScheduledBackend,
        )

        obs = _obs_registry()
        race_reports: List["RaceReport"] = []
        with obs.span(
            "supervisor.explore",
            identifier=task.identifier,
            schedules=self.explore_schedules,
            first_seed=self.explore_seed,
            strategy=self.explore_strategy,
        ) as span:
            if self.explore_strategy == "exhaustive":
                return self._explore_exhaustive(task, attempts, span)
            for index in range(self.explore_schedules):
                seed = self.explore_seed + index
                if self.explore_strategy == "pct":
                    strategy = PCTStrategy(seed, depth=max(1, self.explore_depth))
                else:
                    strategy = RandomWalkStrategy(seed)
                backend = ScheduledBackend(strategy)
                kind, result = self._run_attempt(task, backend=backend)
                obs.counter("explore.schedules").inc()
                attempts.append((kind, result))
                task.attempt_outcomes.append(
                    f"{_attempt_label(kind, result)}@s{seed}"
                )
                trace = backend.schedule_trace(task.identifier)
                if self.race_detect:
                    race_reports.append(self._analyze_trace_races(trace))
                passed = kind is FailureKind.OK and result.score >= result.max_score
                if not passed:
                    task.failing_trace = trace
                    span.set(failing_seed=seed)
                    return _ExploreVerdict(
                        found=True,
                        failing_seed=seed,
                        race_report=self._merge_races(race_reports),
                    )
            span.set(exonerated=True)
        return _ExploreVerdict(race_report=self._merge_races(race_reports))

    def _analyze_trace_races(self, trace) -> "RaceReport":
        """Lockset/happens-before analysis of one recorded schedule."""
        from repro.execution.races import analyze_trace

        obs = _obs_registry()
        report = analyze_trace(trace)
        obs.counter("races.analyzed").inc()
        if report.has_races:
            obs.counter("races.detected").inc()
            obs.counter("races.pairs").inc(report.race_count)
        return report

    def _merge_races(
        self, reports: List["RaceReport"]
    ) -> Optional["RaceReport"]:
        """Fold per-schedule reports into one verdict-ready report."""
        if not self.race_detect:
            return None
        from repro.execution.races import merge_reports

        return merge_reports(reports)

    def _explore_exhaustive(
        self,
        task: _TaskState,
        attempts: List[Tuple[FailureKind, "SuiteResult"]],
        span,
    ) -> _ExploreVerdict:
        """Exhaustive small-state exploration of one failing submission.

        Enumerates all distinct interleavings within the
        ``explore_depth`` preemption bound (``explore_schedules`` caps
        *executions*; happens-before dedup stretches that budget).  The
        rerun-vote history gets one summarizing ``exhaustive:NofM``
        entry rather than one per run, and only the grade of record —
        the first failing run, or the last passing one when exonerated —
        is appended to *attempts*, so a 40-interleaving sweep does not
        balloon the record.
        """
        from repro.execution.exploration import ExhaustiveSearch
        from repro.execution.scheduling import ScheduledBackend

        obs = _obs_registry()
        last_passing: List[Tuple[FailureKind, "SuiteResult"]] = []
        race_reports: List["RaceReport"] = []

        def run_schedule(strategy):
            backend = ScheduledBackend(strategy)
            kind, result = self._run_attempt(task, backend=backend)
            obs.counter("explore.schedules").inc()
            passed = kind is FailureKind.OK and result.score >= result.max_score
            trace = backend.schedule_trace(task.identifier)
            if self.race_detect:
                race_reports.append(self._analyze_trace_races(trace))
            if passed:
                last_passing[:] = [(kind, result)]
            return not passed, trace, (kind, result, trace)

        search = ExhaustiveSearch(
            run_schedule,
            depth=self.explore_depth,
            max_schedules=max(1, self.explore_schedules),
        )
        out = search.run()
        task.attempt_outcomes.append(
            f"exhaustive:{out.failing}of{out.enumerated}"
            + ("" if out.complete else "+")
        )
        span.set(
            enumerated=out.enumerated,
            failing=out.failing,
            executed=out.executed,
            deduped=out.deduped,
            complete=out.complete,
        )
        verdict = _ExploreVerdict(
            failing=out.failing,
            enumerated=out.enumerated,
            complete=out.complete,
            race_report=self._merge_races(race_reports),
        )
        if out.failing_payloads:
            kind, result, trace = out.failing_payloads[0]
            attempts.append((kind, result))
            task.failing_trace = trace
            verdict.found = True
            return verdict
        if last_passing:
            attempts.append(last_passing[0])
        span.set(exonerated=True)
        return verdict

    def _grade_with_retries(self, task: _TaskState) -> SubmissionOutcome:
        from repro.grading.records import SubmissionRecord

        rng = random.Random(f"{self.jitter_seed}:{task.student}")
        attempts: List[Tuple[FailureKind, "SuiteResult"]] = []
        verdict = _ExploreVerdict()
        explored = False
        for attempt in range(self.retries + 1):
            if attempt:
                _obs_registry().counter("supervisor.retries").inc()
                delay = self.backoff * (2 ** (attempt - 1))
                time.sleep(delay * (0.5 + rng.random() / 2))
            kind, result = self._run_attempt(task)
            attempts.append((kind, result))
            task.attempt_outcomes.append(_attempt_label(kind, result))
            passed = kind is FailureKind.OK and result.score >= result.max_score
            # A clean-but-imperfect run is retried too: a racy program's
            # most common failure shape is a *wrong answer* under an
            # unlucky schedule, not a crash.
            retryable = kind in RETRYABLE_KINDS or (
                kind is FailureKind.OK and not passed
            )
            if passed or not retryable:
                if (
                    passed
                    and self.race_detect
                    and self.explore_schedules > 0
                    and not explored
                ):
                    # Race sweep: a passing free-running attempt still
                    # gets explored under controlled schedules, so a
                    # lucky racy program is analyzed (and a failing
                    # schedule, if one exists, becomes the grade).
                    verdict = self._explore_racy(task, attempts)
                    explored = True
                break
            if self.explore_schedules > 0:
                # Deterministic exploration replaces blind reruns: the
                # verdict depends on the seed range, not scheduler luck.
                verdict = self._explore_racy(task, attempts)
                explored = True
                break

        outcome_kinds = list(task.attempt_outcomes)
        final_kind, final_result = attempts[-1]
        final_passed = (
            final_kind is FailureKind.OK
            and final_result.score >= final_result.max_score
        )
        any_failed = any(
            not (kind is FailureKind.OK and result.score >= result.max_score)
            for kind, result in attempts
        )
        if verdict.found:
            # The failing controlled attempt (last) is the grade of
            # record: deterministic and replayable, so never flaky and
            # never traded for a better-scoring free-running attempt.
            pass
        elif final_passed and any_failed:
            # Rerun-vote (or full exoneration by exploration): failed
            # under at least one schedule, passed under another / all
            # explored ones — flaky, not correct-with-confidence.  (A
            # race sweep whose every attempt passed stays ``ok``.)
            final_kind = FailureKind.FLAKY_PASS
        elif not final_passed and not explored:
            # Keep the best-scoring attempt as the grade of record.
            best_kind, best_result = max(
                attempts, key=lambda pair: pair[1].score
            )
            final_kind, final_result = best_kind, best_result

        race_report = verdict.race_report
        cv = ""
        race_count = 0
        race_pairs: List[str] = []
        race_contention: List[Dict[str, Any]] = []
        if race_report is not None:
            from repro.execution.taxonomy import concurrency_verdict

            race_count = race_report.race_count
            race_pairs = race_report.pair_labels()
            race_contention = [c.to_dict() for c in race_report.contention]
            cv = concurrency_verdict(
                passed=final_passed and not verdict.found,
                races=race_report.has_races,
            ).value

        if not self._suite_name:
            with self._lock:
                if not self._suite_name:
                    self._suite_name = final_result.suite_name
        record = SubmissionRecord.from_suite_result(
            task.student,
            final_result,
            failure_kind=final_kind.value,
            attempts=len(attempts),
            attempt_outcomes=outcome_kinds,
            schedule_seed=verdict.failing_seed,
            schedule_strategy=self.explore_strategy if explored else "",
            interleavings_failing=verdict.failing,
            interleavings_total=verdict.enumerated,
            interleavings_complete=bool(verdict.complete),
            concurrency_verdict=cv,
            race_count=race_count,
            race_pairs=race_pairs,
            race_contention=race_contention,
            elapsed=time.monotonic() - self._epoch,
        )
        if self.race_credit and race_count:
            self._apply_race_credit(task, record, attempts)
        return SubmissionOutcome(
            student=task.student,
            identifier=task.identifier,
            record=record,
            result=final_result,
            failure_kind=final_kind,
            attempts=len(attempts),
            attempt_outcomes=outcome_kinds,
            schedule_trace=task.failing_trace,
        )

    def _apply_race_credit(
        self,
        task: _TaskState,
        record: "SubmissionRecord",
        attempts: List[Tuple[FailureKind, "SuiteResult"]],
    ) -> None:
        """Race-aware score adjustment of one grade of record.

        Per-test scores are rescaled proportionally so the suite total
        equals the adjusted score; the human-readable reason lands in
        ``record.race_note`` for gradebooks and reports.
        """
        from repro.core.credit import race_partial_credit

        passing = [
            result.score
            for kind, result in attempts
            if kind is FailureKind.OK and result.score >= result.max_score
        ]
        adjusted, note = race_partial_credit(
            record.score,
            record.max_score,
            verdict=record.concurrency_verdict,
            race_count=record.race_count,
            best_passing_score=max(passing) if passing else None,
        )
        if not note:
            return
        total = record.score
        if total > 0:
            scale = adjusted / total
            for test in record.tests:
                test.score = round(test.score * scale, 6)
        elif record.tests:
            record.tests[0].score = adjusted
        record.race_note = note
        _obs_registry().counter("races.credit_adjusted").inc()

    def _infra_outcome(
        self, task: _TaskState, exc: BaseException
    ) -> SubmissionOutcome:
        """An exception escaped the suite factory or the framework."""
        from repro.grading.records import SubmissionRecord, TestRecord

        outcomes = task.attempt_outcomes + [FailureKind.INFRA_ERROR.value]
        record = SubmissionRecord(
            student=task.student,
            suite=self._suite_name,
            timestamp=time.time(),
            elapsed=time.monotonic() - self._epoch,
            tests=[
                TestRecord(
                    test_name="supervisor",
                    score=0.0,
                    max_score=0.0,
                    fatal=f"{type(exc).__name__}: {exc}",
                    failure_kind=FailureKind.INFRA_ERROR.value,
                )
            ],
            failure_kind=FailureKind.INFRA_ERROR.value,
            attempts=len(outcomes),
            attempt_outcomes=outcomes,
        )
        return SubmissionOutcome(
            student=task.student,
            identifier=task.identifier,
            record=record,
            result=None,
            failure_kind=FailureKind.INFRA_ERROR,
            attempts=len(outcomes),
            attempt_outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    # Resolution (worker and watchdog race; first one wins)
    # ------------------------------------------------------------------
    def _resolve(self, task: _TaskState, outcome: SubmissionOutcome) -> bool:
        with self._lock:
            if task.resolved:
                return False
            task.resolved = True
            self._outcomes[task.student] = outcome
            if task.worker is not None:
                self._active.pop(task.worker, None)
            clones = self._clones.pop(task.student, [])
        self._journal_outcome(outcome)
        self._notify_outcome(outcome)
        # Dedup fan-out: identical bytes get identical grades.  This
        # covers every resolution path — worker result, infra error, and
        # watchdog timeout alike — and journals each clone as its own
        # entry so a resumed batch sees ordinary completed students.
        for clone_student, clone_identifier in clones:
            clone = self._clone_outcome(outcome, clone_student, clone_identifier)
            with self._lock:
                self._outcomes[clone_student] = clone
            self._journal_outcome(clone)
            self._notify_outcome(clone)
        with self._done:
            self._done.notify_all()
        return True

    def _notify_outcome(self, outcome: SubmissionOutcome) -> None:
        """Fire the ``on_outcome`` hook; its failures never fail a grade."""
        if self.on_outcome is None:
            return
        try:
            self.on_outcome(outcome)
        except Exception:  # noqa: BLE001 - telemetry is best-effort
            pass

    def _clone_outcome(
        self, outcome: SubmissionOutcome, student: str, identifier: str
    ) -> SubmissionOutcome:
        """The representative's outcome re-attributed to a duplicate."""
        from repro.grading.dedup import clone_record

        return SubmissionOutcome(
            student=student,
            identifier=identifier,
            record=clone_record(outcome.record, student),
            result=outcome.result,
            failure_kind=outcome.failure_kind,
            attempts=outcome.attempts,
            attempt_outcomes=list(outcome.attempt_outcomes),
            schedule_trace=outcome.schedule_trace,
        )

    def _journal_outcome(self, outcome: SubmissionOutcome) -> None:
        if self.journal is None:
            return
        from repro.grading.journal import JournalEntry

        with self._journal_lock:
            self.journal.append(
                JournalEntry(
                    student=outcome.student,
                    identifier=outcome.identifier,
                    record=outcome.record,
                )
            )

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _arm(self, task: _TaskState) -> None:
        if self.deadline is None:
            return
        with self._lock:
            task.deadline_at = time.monotonic() + self.deadline
            task.killed = False

    def _disarm(self, task: _TaskState) -> None:
        if self.deadline is None:
            return
        with self._lock:
            task.deadline_at = None

    def _watchdog_loop(self, stop: threading.Event) -> None:
        while not stop.wait(self.watchdog_poll):
            now = time.monotonic()
            with self._lock:
                expired = [
                    task
                    for task in self._active.values()
                    if not task.resolved
                    and task.deadline_at is not None
                    and now >= task.deadline_at
                ]
            for task in expired:
                self._enforce_deadline(task)

    def _enforce_deadline(self, task: _TaskState) -> None:
        """One expired task: kill its child, or abandon its worker."""
        obs = _obs_registry()
        worker = task.worker
        assert worker is not None
        if not task.killed:
            # First strike: hard-kill whatever child the worker is
            # blocked on.  The worker unblocks, sees harness_killed,
            # and reports the attempt as a timeout through the normal
            # result path (possibly retrying).
            killed = kill_active_child(worker)
            with self._lock:
                task.killed = True
                task.deadline_at = time.monotonic() + self.KILL_GRACE
            if killed:
                obs.counter("supervisor.watchdog.kills").inc()
                return
            # No child to kill: fall through after the grace period.
            return
        if kill_active_child(worker):
            obs.counter("supervisor.watchdog.kills").inc()
            # The worker moved on to a fresh child (a retry) that is
            # itself past the deadline; kill that one too and keep
            # waiting for the worker to surface.
            with self._lock:
                task.deadline_at = time.monotonic() + self.KILL_GRACE
            return
        # Second strike with nothing left to kill: the worker thread is
        # wedged in pure-Python code.  Abandon it, resolve the task as
        # a timeout ourselves, and restaff the pool.
        with self._lock:
            if task.resolved:
                return
            task.abandoned = True
            # The wedged thread leaves the healthy pool *now*, so a
            # storm of simultaneous wedges sees the pool shrink step by
            # step instead of every enforcement believing the others'
            # workers are still serviceable.
            self._healthy_workers -= 1
            self._abandoned_workers.add(worker)
        obs.counter("supervisor.watchdog.abandoned").inc()
        outcome = self._timeout_outcome(task)
        if self._resolve(task, outcome):
            with self._lock:
                self._active.pop(worker, None)
                # Restaff only when the surviving healthy workers cannot
                # cover the queue: under a total-wedge storm with one
                # queued task this spawns exactly one replacement — not
                # one per wedged worker — so ``workers_restaffed`` counts
                # real replacements and idle spawns never busy-loop.
                restaff = (
                    bool(self._queue)
                    and not self._stop
                    and self._healthy_workers < min(self.jobs, len(self._queue))
                )
            if restaff:
                # Monotonic serial, never the millisecond clock: two
                # replacements in the same millisecond used to collide.
                obs.counter("supervisor.workers_restaffed").inc()
                self._spawn_worker(next(self._worker_serial))

    def _timeout_outcome(self, task: _TaskState) -> SubmissionOutcome:
        from repro.grading.records import SubmissionRecord, TestRecord

        outcomes = task.attempt_outcomes + [FailureKind.TIMEOUT.value]
        record = SubmissionRecord(
            student=task.student,
            suite=self._suite_name,
            timestamp=time.time(),
            elapsed=time.monotonic() - self._epoch,
            tests=[
                TestRecord(
                    test_name="supervisor",
                    score=0.0,
                    max_score=0.0,
                    fatal=(
                        f"submission {task.identifier!r} exceeded its "
                        f"{self.deadline:g}s deadline and its worker could "
                        f"not be recovered; graded as timeout"
                    ),
                    failure_kind=FailureKind.TIMEOUT.value,
                )
            ],
            failure_kind=FailureKind.TIMEOUT.value,
            attempts=len(outcomes),
            attempt_outcomes=outcomes,
        )
        return SubmissionOutcome(
            student=task.student,
            identifier=task.identifier,
            record=record,
            result=None,
            failure_kind=FailureKind.TIMEOUT,
            attempts=len(outcomes),
            attempt_outcomes=outcomes,
        )
