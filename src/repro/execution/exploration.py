"""N-schedule exploration: deterministic interleaving search for races.

The :mod:`repro.simulation` fuzzer varies interleavings through the
virtual-time backend; this module is its controlled-scheduler successor.
A :class:`ScheduleExplorer` reruns the *same* functionality checker under
deterministic schedules produced by :mod:`repro.execution.scheduling`
strategies and reports every schedule whose trace failed a check,
keeping the full recorded :class:`ScheduleTrace` so the exact
interleaving can be saved to a file and replayed.

Four strategy families:

* ``random-walk`` — seeded uniform walks, seeds ``first_seed ..
  first_seed + schedules - 1``;
* ``preemption-sweep`` — the deterministic (quantum, rotation) grid of
  :func:`~repro.execution.scheduling.bounded_preemption_sweep`;
* ``pct`` — :class:`~repro.execution.scheduling.PCTStrategy` runs, one
  seed per schedule, carrying PCT's depth-*d* bug-finding guarantee;
* ``exhaustive`` — :class:`ExhaustiveSearch` enumerates **all** distinct
  interleavings up to a preemption bound (small-state model checking),
  so the report can say "N of M distinct interleavings fail" and, when
  the enumeration completed, that is a *proof within the bound*.

Happens-before dedup (:mod:`repro.execution.equivalence`) is on by
default: the first executed schedule seeds a :class:`ScheduleOracle`,
every later candidate is simulated offline first, and candidates whose
canonical key was already graded are skipped without executing —
reported as ``deduped``.  Predictions are verified against every
executed run; one misprediction fails open (dedup disables itself and
every remaining schedule executes).

Unlike rerun-vote retries, the verdict is a pure function of the
configuration: the same seeds explore the same interleavings and reach
the same verdict on every host, which is what makes racy-submission
grading CI-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.checker import AbstractForkJoinChecker
from repro.execution.equivalence import ScheduleOracle, happens_before_key
from repro.execution.races import RaceReport, analyze_trace, merge_reports
from repro.execution.runner import in_process_session_lock
from repro.execution.taxonomy import ConcurrencyVerdict
from repro.obs import get_registry as _obs_registry
from repro.execution.scheduling import (
    ExhaustiveStrategy,
    PCTStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    ScheduleStrategy,
    ScheduleTrace,
    ScheduledBackend,
    bounded_preemption_sweep,
)
from repro.simulation.backend import use_backend
from repro.testfw.result import TestResult

__all__ = [
    "ExplorationFinding",
    "ExplorationReport",
    "ExhaustiveSearch",
    "ExhaustiveResult",
    "ScheduleExplorer",
    "STRATEGY_CHOICES",
]

#: CLI-facing strategy family names.
STRATEGY_CHOICES = ("random-walk", "preemption-sweep", "pct", "exhaustive")


@dataclass
class ExplorationFinding:
    """One controlled schedule under which the checker found an error."""

    strategy_label: str
    seed: Optional[int]
    score: float
    max_score: float
    failed_aspects: List[str]
    messages: List[str]
    trace: ScheduleTrace
    deadlocked: bool = False


@dataclass
class ExplorationReport:
    """Aggregate result of an exploration campaign."""

    schedules_tried: int
    strategy: str
    first_seed: int
    findings: List[ExplorationFinding] = field(default_factory=list)
    #: Schedules actually run (``schedules_tried`` minus dedup skips).
    executed: int = 0
    #: Candidates skipped because their happens-before key was already
    #: graded — never executed.
    deduped: int = 0
    #: Distinct happens-before keys among the executed schedules.
    distinct: int = 0
    #: Oracle predictions contradicted by a real run (dedup failed open).
    mispredicted: int = 0
    #: PCT depth / exhaustive preemption bound (``None`` for the others).
    depth: Optional[int] = None
    #: Exhaustive mode: distinct interleavings enumerated (M).
    enumerated: Optional[int] = None
    #: Exhaustive mode: enumerated interleavings that fail (N).
    failing_interleavings: Optional[int] = None
    #: Exhaustive mode: the enumeration covered *every* interleaving
    #: within the bound (``False`` when the execution budget capped it).
    complete: Optional[bool] = None
    #: Lockset/happens-before evidence merged across every executed
    #: schedule (``None`` when race analysis was off).
    race_report: Optional[RaceReport] = None

    @property
    def concurrency_verdict(self) -> Optional[ConcurrencyVerdict]:
        """Three-way race-aware verdict, or ``None`` without analysis.

        ``wrong`` when any explored schedule failed; ``racy-lucky`` when
        every schedule passed but the race analysis found racing pairs —
        the answer was right by scheduling luck; ``correct`` otherwise.
        """
        if self.race_report is None:
            return ConcurrencyVerdict.WRONG if self.bug_found else None
        if self.bug_found:
            return ConcurrencyVerdict.WRONG
        if self.race_report.has_races:
            return ConcurrencyVerdict.RACY_LUCKY
        return ConcurrencyVerdict.CORRECT

    @property
    def bug_found(self) -> bool:
        """True when at least one explored schedule failed a check."""
        return bool(self.findings)

    @property
    def failure_rate(self) -> float:
        """Fraction of *executed* schedules that failed.

        Deduped skips are excluded from the denominator: they were never
        run, and counting them would understate how often the bug bites
        per distinct interleaving actually graded.  (Reports predating
        the dedup fields fall back to ``schedules_tried``.)
        """
        denominator = self.executed or self.schedules_tried
        if not denominator:
            return 0.0
        return len(self.findings) / denominator

    @property
    def first_failing_seed(self) -> Optional[int]:
        """Seed of the first seeded failing schedule, or ``None``."""
        for finding in self.findings:
            if finding.seed is not None:
                return finding.seed
        return None

    def first_failing_trace(self) -> Optional[ScheduleTrace]:
        """Recorded trace of the first failing schedule, or ``None``."""
        return self.findings[0].trace if self.findings else None

    def coverage_statement(self) -> Optional[str]:
        """Exhaustive-mode coverage in words, or ``None`` otherwise."""
        if self.enumerated is None:
            return None
        failing = self.failing_interleavings or 0
        scope = (
            f"all {self.enumerated} distinct interleavings within "
            f"preemption bound {self.depth}"
            if self.complete
            else f"{self.enumerated} distinct interleavings enumerated "
            f"within preemption bound {self.depth} (budget-capped, "
            f"coverage partial)"
        )
        return f"{failing} of {self.enumerated} distinct interleavings fail; {scope}"

    def _dedup_clause(self) -> str:
        if not self.deduped:
            return ""
        return (
            f" ({self.executed} executed, {self.deduped} deduped as "
            f"happens-before equivalent)"
        )

    def _race_clause(self) -> str:
        if self.race_report is None:
            return ""
        if not self.race_report.has_races:
            return "; race analysis: " + self.race_report.summary()
        verdict = self.concurrency_verdict
        prefix = (
            "racy-lucky (every schedule passed, but a race is present)"
            if verdict is ConcurrencyVerdict.RACY_LUCKY
            else "race analysis"
        )
        return f"; {prefix}: {self.race_report.summary()}"

    def summary(self) -> str:
        """One-line human-readable verdict of the campaign."""
        if self.enumerated is not None:
            bound = (
                f"preemption bound {self.depth}, "
                + ("complete" if self.complete else "budget-capped")
            )
            if not self.bug_found:
                tail = (
                    "a proof of schedule-independence within the bound, "
                    "not beyond it"
                    if self.complete
                    else "exploration can only refute, not prove, "
                    "synchronization correctness"
                )
                return (
                    f"no failing interleaving among {self.enumerated} "
                    f"distinct interleavings ({bound})"
                    + self._dedup_clause()
                    + f"; {tail}"
                    + self._race_clause()
                )
            first = self.findings[0]
            return (
                f"racy: {self.failing_interleavings} of {self.enumerated} "
                f"distinct interleavings fail ({bound})"
                + self._dedup_clause()
                + f"; first failing schedule {first.strategy_label}: "
                + "; ".join(first.messages[:2])
                + self._race_clause()
            )
        if not self.bug_found:
            return (
                f"no failing schedule in {self.schedules_tried} explored "
                f"({self.strategy})"
                + self._dedup_clause()
                + "; exploration can only refute, not "
                "prove, synchronization correctness"
                + self._race_clause()
            )
        first = self.findings[0]
        return (
            f"{len(self.findings)}/{self.executed or self.schedules_tried} "
            f"executed schedules failed"
            + self._dedup_clause()
            + f"; first failing schedule {first.strategy_label}: "
            + "; ".join(first.messages[:2])
            + self._race_clause()
        )


# ----------------------------------------------------------------------
# Exhaustive DFS driver
# ----------------------------------------------------------------------
@dataclass
class ExhaustiveResult:
    """What :class:`ExhaustiveSearch` learned about the schedule space."""

    #: Distinct complete interleavings enumerated (M) — executed runs
    #: plus dedup-inherited equivalents.
    enumerated: int = 0
    executed: int = 0
    deduped: int = 0
    mispredicted: int = 0
    #: Enumerated interleavings that fail (N); dedup-inherited verdicts
    #: count, since equivalent schedules grade identically.
    failing: int = 0
    #: Every interleaving within the bound was covered.
    complete: bool = True
    #: Payloads returned by ``run_schedule`` for failing executed runs.
    failing_payloads: List[Any] = field(default_factory=list)


class ExhaustiveSearch:
    """Enumerate all interleavings up to a preemption bound (DFS).

    Stateless-model-checking over the controlled scheduler's decision
    tree: run the empty-prefix schedule, then for every decision of the
    realized run and every alternative ready worker at that decision,
    branch into a forced prefix that diverges there — skipping branches
    whose preemption count would exceed ``depth``.  The
    :class:`~repro.execution.scheduling.ExhaustiveStrategy` default
    continuation is non-preemptive, so a run's preemption count is
    exactly its prefix's, and branching where the previous worker is no
    longer ready costs nothing against the bound.  Every enumerated
    prefix realizes a distinct complete interleaving, each exactly once.

    With ``dedup`` on, the first executed run seeds a
    :class:`ScheduleOracle`; branches whose predicted happens-before key
    was already graded are *simulated instead of executed* — they still
    count toward the enumeration (and inherit the verdict of their
    equivalence class), and their children are expanded from the
    simulated decisions, so dedup prunes executions without shrinking
    coverage.

    ``run_schedule(strategy) -> (failed, trace, payload)`` runs one
    schedule; ``max_schedules`` caps *executions* (exhausting it marks
    the result incomplete), ``max_interleavings`` backstops the total
    enumeration.
    """

    def __init__(
        self,
        run_schedule: Callable[
            [ExhaustiveStrategy], Tuple[bool, ScheduleTrace, Any]
        ],
        *,
        depth: int = 2,
        max_schedules: int = 256,
        dedup: bool = True,
        max_interleavings: int = 4096,
    ) -> None:
        """Configure the search; the class docstring explains the knobs."""
        if depth < 0:
            raise ValueError("depth (preemption bound) must be >= 0")
        if max_schedules < 1:
            raise ValueError("max_schedules must be >= 1")
        self.run_schedule = run_schedule
        self.depth = depth
        self.max_schedules = max_schedules
        self.dedup = dedup
        self.max_interleavings = max_interleavings

    # ------------------------------------------------------------------
    @staticmethod
    def _preemption_profile(trace: ScheduleTrace) -> List[int]:
        """``profile[i]`` = preemptions among decisions ``0 .. i-1``."""
        profile = [0]
        count = 0
        decisions = trace.decisions
        for index, decision in enumerate(decisions):
            if index > 0:
                current = decisions[index - 1].chosen
                if current in decision.ready and decision.chosen != current:
                    count += 1
            profile.append(count)
        return profile

    def run(self) -> ExhaustiveResult:
        """Drive the DFS to completion (or budget) and tally the census."""
        obs = _obs_registry()
        out = ExhaustiveResult()
        oracle: Optional[ScheduleOracle] = None
        oracle_usable = self.dedup
        seen: Dict[str, bool] = {}
        stack: List[List[int]] = [[]]
        while stack:
            if out.enumerated >= self.max_interleavings:
                out.complete = False
                break
            prefix = stack.pop()
            strategy = ExhaustiveStrategy(prefix)
            trace: Optional[ScheduleTrace] = None
            failed = False
            predicted = None
            if oracle is not None and oracle_usable:
                predicted = oracle.simulate(strategy.clone())
                if predicted.complete and predicted.key in seen:
                    failed = seen[predicted.key]
                    trace = predicted.trace
                    out.deduped += 1
                    obs.counter("explore.deduped").inc()
            if trace is None:
                if out.executed >= self.max_schedules:
                    out.complete = False
                    break
                failed, real_trace, payload = self.run_schedule(strategy)
                out.executed += 1
                if real_trace.divergence:
                    # The forced prefix came from a realized run; a
                    # divergence means the program is nondeterministic
                    # beyond its scheduling.  Count the run, stop
                    # trusting the enumeration.
                    out.complete = False
                    out.enumerated += 1
                    if failed:
                        out.failing += 1
                        out.failing_payloads.append(payload)
                    continue
                key = happens_before_key(real_trace)
                if (
                    predicted is not None
                    and predicted.complete
                    and predicted.key is not None
                    and predicted.key != key
                ):
                    out.mispredicted += 1
                    obs.counter("explore.mispredicted").inc()
                    oracle_usable = False  # fail open: execute everything
                if oracle is None and oracle_usable:
                    oracle = ScheduleOracle.from_trace(real_trace)
                    if oracle is None:
                        oracle_usable = False
                seen.setdefault(key, failed)
                trace = real_trace
                if failed:
                    out.failing_payloads.append(payload)
            else:
                payload = None
            out.enumerated += 1
            if failed:
                out.failing += 1
            # Branch: at every post-prefix decision, try every ready
            # alternative that keeps the preemption count within bound.
            decisions = trace.decisions
            profile = self._preemption_profile(trace)
            realized = [d.chosen for d in decisions]
            for index in range(len(prefix), len(decisions)):
                decision = decisions[index]
                current = realized[index - 1] if index > 0 else None
                for alt in decision.ready:
                    if alt == decision.chosen:
                        continue
                    extra = (
                        1
                        if current is not None
                        and current in decision.ready
                        and alt != current
                        else 0
                    )
                    if profile[index] + extra > self.depth:
                        continue
                    stack.append(realized[:index] + [alt])
        if stack:
            out.complete = False
        obs.counter("explore.coverage").inc(out.enumerated)
        return out


class ScheduleExplorer:
    """Rerun a functionality checker under N controlled schedules.

    ``strategy`` selects the schedule family (:data:`STRATEGY_CHOICES`);
    ``depth`` is the PCT depth or the exhaustive preemption bound;
    ``max_schedules`` caps exhaustive-mode *executions* (defaulting to
    ``schedules``); ``dedup`` toggles happens-before deduplication;
    ``races`` runs lockset/happens-before analysis
    (:mod:`repro.execution.races`) over every executed schedule and
    merges the evidence into the report — which is what lets the report
    flag ``racy-lucky`` even when every explored schedule passes.
    """

    def __init__(
        self,
        checker_factory: Callable[[], AbstractForkJoinChecker],
        *,
        schedules: int = 20,
        first_seed: int = 0,
        strategy: str = "random-walk",
        max_quantum: int = 4,
        depth: int = 3,
        max_schedules: Optional[int] = None,
        dedup: bool = True,
        races: bool = False,
    ) -> None:
        """Configure the campaign; see the class docstring for the knobs.

        ``checker_factory`` must build a *fresh* checker per call — the
        explorer runs it once per schedule and checkers keep state.
        """
        if schedules < 1:
            raise ValueError("schedules must be >= 1")
        if strategy not in STRATEGY_CHOICES:
            raise ValueError(
                f"strategy must be one of {STRATEGY_CHOICES}, got {strategy!r}"
            )
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self._factory = checker_factory
        self.schedules = schedules
        self.first_seed = first_seed
        self.strategy = strategy
        self.max_quantum = max_quantum
        self.depth = depth
        self.max_schedules = max_schedules
        self.dedup = dedup
        self.races = races

    # ------------------------------------------------------------------
    def _analyze_races(self, trace: ScheduleTrace) -> Optional[RaceReport]:
        """Per-schedule race analysis (when enabled), with obs counters."""
        if not self.races:
            return None
        obs = _obs_registry()
        report = analyze_trace(trace)
        obs.counter("races.analyzed").inc()
        if report.has_races:
            obs.counter("races.detected").inc()
            obs.counter("races.pairs").inc(report.race_count)
        return report

    def _strategies(self) -> Iterator[ScheduleStrategy]:
        if self.strategy == "random-walk":
            for seed in range(self.first_seed, self.first_seed + self.schedules):
                yield RandomWalkStrategy(seed)
        elif self.strategy == "pct":
            for seed in range(self.first_seed, self.first_seed + self.schedules):
                yield PCTStrategy(seed, depth=max(1, self.depth))
        else:
            yield from bounded_preemption_sweep(
                self.schedules, max_quantum=self.max_quantum
            )

    def run_one(
        self, strategy: ScheduleStrategy
    ) -> Tuple[TestResult, ScheduleTrace]:
        """One controlled checker run; returns (verdict, recorded trace).

        The backend is installed ambiently around the whole checker run
        while the in-process session lock is held, so the runner inside
        the checker picks it up and no other in-process run can
        interleave.
        """
        obs = _obs_registry()
        backend = ScheduledBackend(strategy)
        checker = self._factory()
        with obs.span(
            "explore.schedule",
            strategy=strategy.label(),
            seed=getattr(strategy, "seed", None),
        ) as span:
            with in_process_session_lock():
                with use_backend(backend):
                    result = checker.run_safely()
            trace = backend.schedule_trace(*self._program_identity(checker))
            span.set(
                ok=not (result.failed_aspects() or result.fatal),
                deadlocked=trace.deadlocked or None,
            )
        obs.counter("explore.schedules").inc()
        return result, trace

    def replay(self, trace: ScheduleTrace) -> Tuple[TestResult, ScheduleTrace]:
        """Re-run the checker replaying *trace* decision for decision."""
        return self.run_one(ReplayStrategy(trace))

    def run(self) -> ExplorationReport:
        """Run the whole campaign and aggregate the failing schedules."""
        if self.strategy == "exhaustive":
            return self._run_exhaustive()
        report = ExplorationReport(
            schedules_tried=0,
            strategy=self.strategy,
            first_seed=self.first_seed,
            depth=self.depth if self.strategy == "pct" else None,
        )
        obs = _obs_registry()
        oracle: Optional[ScheduleOracle] = None
        oracle_usable = self.dedup
        seen: Dict[str, bool] = {}
        race_reports: List[RaceReport] = []
        for strategy in self._strategies():
            report.schedules_tried += 1
            predicted_key: Optional[str] = None
            if oracle is not None and oracle_usable:
                predicted_key = oracle.predict_key(strategy.clone())
                if predicted_key is not None and predicted_key in seen:
                    report.deduped += 1
                    obs.counter("explore.deduped").inc()
                    continue
            result, trace = self.run_one(strategy)
            report.executed += 1
            key = happens_before_key(trace)
            if predicted_key is not None and predicted_key != key:
                report.mispredicted += 1
                obs.counter("explore.mispredicted").inc()
                oracle_usable = False  # fail open: execute everything
            if oracle is None and oracle_usable:
                oracle = ScheduleOracle.from_trace(trace)
                if oracle is None:
                    oracle_usable = False
            race_report = self._analyze_races(trace)
            if race_report is not None:
                race_reports.append(race_report)
            finding = self._failed(result, strategy, trace)
            seen.setdefault(key, finding is not None)
            if finding is not None:
                obs.counter("explore.failures").inc()
                report.findings.append(finding)
        report.distinct = len(seen)
        if self.races:
            report.race_report = merge_reports(race_reports)
        obs.counter("explore.coverage").inc(report.executed + report.deduped)
        return report

    def _run_exhaustive(self) -> ExplorationReport:
        budget = self.max_schedules or self.schedules
        race_reports: List[RaceReport] = []

        def run_schedule(
            strategy: ExhaustiveStrategy,
        ) -> Tuple[bool, ScheduleTrace, Optional[ExplorationFinding]]:
            result, trace = self.run_one(strategy)
            race_report = self._analyze_races(trace)
            if race_report is not None:
                race_reports.append(race_report)
            finding = self._failed(result, strategy, trace)
            if finding is not None:
                _obs_registry().counter("explore.failures").inc()
            return finding is not None, trace, finding

        search = ExhaustiveSearch(
            run_schedule,
            depth=self.depth,
            max_schedules=budget,
            dedup=self.dedup,
        )
        out = search.run()
        return ExplorationReport(
            schedules_tried=out.enumerated,
            strategy="exhaustive",
            first_seed=self.first_seed,
            findings=[p for p in out.failing_payloads if p is not None],
            executed=out.executed,
            deduped=out.deduped,
            distinct=out.enumerated - out.deduped,
            mispredicted=out.mispredicted,
            depth=self.depth,
            enumerated=out.enumerated,
            failing_interleavings=out.failing,
            complete=out.complete,
            race_report=merge_reports(race_reports) if self.races else None,
        )

    # ------------------------------------------------------------------
    def _program_identity(
        self, checker: AbstractForkJoinChecker
    ) -> Tuple[str, List[str]]:
        try:
            identifier = checker.main_class_identifier()
        except NotImplementedError:  # pragma: no cover - abstract factory
            identifier = type(checker).__name__
        try:
            args = [str(a) for a in checker.args()]
        except NotImplementedError:  # pragma: no cover - abstract factory
            args = []
        return identifier, args

    def _failed(
        self,
        result: TestResult,
        strategy: ScheduleStrategy,
        trace: ScheduleTrace,
    ) -> Optional[ExplorationFinding]:
        failed = result.failed_aspects()
        if not failed and not result.fatal:
            return None
        messages = [o.message for o in failed if o.message]
        if result.fatal:
            messages.insert(0, result.fatal)
        return ExplorationFinding(
            strategy_label=strategy.label(),
            seed=getattr(strategy, "seed", None),
            score=result.score,
            max_score=result.max_score,
            failed_aspects=[o.aspect for o in failed],
            messages=messages,
            trace=trace,
            deadlocked=trace.deadlocked,
        )
