"""N-schedule exploration: deterministic interleaving search for races.

The :mod:`repro.simulation` fuzzer varies interleavings through the
virtual-time backend; this module is its controlled-scheduler successor.
A :class:`ScheduleExplorer` reruns the *same* functionality checker under
N deterministic schedules produced by
:mod:`repro.execution.scheduling` strategies — a seeded random walk, or
a bounded preemption sweep — and reports every schedule whose trace
failed a check, keeping the full recorded :class:`ScheduleTrace` so the
exact interleaving can be saved to a file and replayed.

Unlike rerun-vote retries, the verdict is a pure function of the seed:
the same seed explores the same interleavings and reaches the same
verdict on every host, which is what makes racy-submission grading
CI-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.checker import AbstractForkJoinChecker
from repro.execution.runner import in_process_session_lock
from repro.obs import get_registry as _obs_registry
from repro.execution.scheduling import (
    RandomWalkStrategy,
    ReplayStrategy,
    ScheduleStrategy,
    ScheduleTrace,
    ScheduledBackend,
    bounded_preemption_sweep,
)
from repro.simulation.backend import use_backend
from repro.testfw.result import TestResult

__all__ = [
    "ExplorationFinding",
    "ExplorationReport",
    "ScheduleExplorer",
    "STRATEGY_CHOICES",
]

#: CLI-facing strategy family names.
STRATEGY_CHOICES = ("random-walk", "preemption-sweep")


@dataclass
class ExplorationFinding:
    """One controlled schedule under which the checker found an error."""

    strategy_label: str
    seed: Optional[int]
    score: float
    max_score: float
    failed_aspects: List[str]
    messages: List[str]
    trace: ScheduleTrace
    deadlocked: bool = False


@dataclass
class ExplorationReport:
    """Aggregate result of an exploration campaign."""

    schedules_tried: int
    strategy: str
    first_seed: int
    findings: List[ExplorationFinding] = field(default_factory=list)

    @property
    def bug_found(self) -> bool:
        """True when at least one explored schedule failed a check."""
        return bool(self.findings)

    @property
    def failure_rate(self) -> float:
        """Fraction of explored schedules that failed (0.0 when none ran)."""
        if not self.schedules_tried:
            return 0.0
        return len(self.findings) / self.schedules_tried

    @property
    def first_failing_seed(self) -> Optional[int]:
        """Seed of the first seeded failing schedule, or ``None``."""
        for finding in self.findings:
            if finding.seed is not None:
                return finding.seed
        return None

    def first_failing_trace(self) -> Optional[ScheduleTrace]:
        """Recorded trace of the first failing schedule, or ``None``."""
        return self.findings[0].trace if self.findings else None

    def summary(self) -> str:
        """One-line human-readable verdict of the campaign."""
        if not self.bug_found:
            return (
                f"no failing schedule in {self.schedules_tried} explored "
                f"({self.strategy}); exploration can only refute, not "
                f"prove, synchronization correctness"
            )
        first = self.findings[0]
        return (
            f"{len(self.findings)}/{self.schedules_tried} schedules failed; "
            f"first failing schedule {first.strategy_label}: "
            + "; ".join(first.messages[:2])
        )


class ScheduleExplorer:
    """Rerun a functionality checker under N controlled schedules.

    ``strategy`` selects the schedule family: ``"random-walk"`` runs
    seeds ``first_seed .. first_seed + schedules - 1``;
    ``"preemption-sweep"`` enumerates the deterministic
    (quantum, rotation) grid of
    :func:`~repro.execution.scheduling.bounded_preemption_sweep`.
    """

    def __init__(
        self,
        checker_factory: Callable[[], AbstractForkJoinChecker],
        *,
        schedules: int = 20,
        first_seed: int = 0,
        strategy: str = "random-walk",
        max_quantum: int = 4,
    ) -> None:
        """Configure the campaign; see the class docstring for the knobs.

        ``checker_factory`` must build a *fresh* checker per call — the
        explorer runs it once per schedule and checkers keep state.
        """
        if schedules < 1:
            raise ValueError("schedules must be >= 1")
        if strategy not in STRATEGY_CHOICES:
            raise ValueError(
                f"strategy must be one of {STRATEGY_CHOICES}, got {strategy!r}"
            )
        self._factory = checker_factory
        self.schedules = schedules
        self.first_seed = first_seed
        self.strategy = strategy
        self.max_quantum = max_quantum

    # ------------------------------------------------------------------
    def _strategies(self) -> Iterator[ScheduleStrategy]:
        if self.strategy == "random-walk":
            for seed in range(self.first_seed, self.first_seed + self.schedules):
                yield RandomWalkStrategy(seed)
        else:
            yield from bounded_preemption_sweep(
                self.schedules, max_quantum=self.max_quantum
            )

    def run_one(
        self, strategy: ScheduleStrategy
    ) -> Tuple[TestResult, ScheduleTrace]:
        """One controlled checker run; returns (verdict, recorded trace).

        The backend is installed ambiently around the whole checker run
        while the in-process session lock is held, so the runner inside
        the checker picks it up and no other in-process run can
        interleave.
        """
        obs = _obs_registry()
        backend = ScheduledBackend(strategy)
        checker = self._factory()
        with obs.span(
            "explore.schedule",
            strategy=strategy.label(),
            seed=getattr(strategy, "seed", None),
        ) as span:
            with in_process_session_lock():
                with use_backend(backend):
                    result = checker.run_safely()
            trace = backend.schedule_trace(*self._program_identity(checker))
            span.set(
                ok=not (result.failed_aspects() or result.fatal),
                deadlocked=trace.deadlocked or None,
            )
        obs.counter("explore.schedules").inc()
        return result, trace

    def replay(self, trace: ScheduleTrace) -> Tuple[TestResult, ScheduleTrace]:
        """Re-run the checker replaying *trace* decision for decision."""
        return self.run_one(ReplayStrategy(trace))

    def run(self) -> ExplorationReport:
        """Run the whole campaign and aggregate the failing schedules."""
        report = ExplorationReport(
            schedules_tried=self.schedules,
            strategy=self.strategy,
            first_seed=self.first_seed,
        )
        obs = _obs_registry()
        for strategy in self._strategies():
            result, trace = self.run_one(strategy)
            finding = self._failed(result, strategy, trace)
            if finding is not None:
                obs.counter("explore.failures").inc()
                report.findings.append(finding)
        return report

    # ------------------------------------------------------------------
    def _program_identity(
        self, checker: AbstractForkJoinChecker
    ) -> Tuple[str, List[str]]:
        try:
            identifier = checker.main_class_identifier()
        except NotImplementedError:  # pragma: no cover - abstract factory
            identifier = type(checker).__name__
        try:
            args = [str(a) for a in checker.args()]
        except NotImplementedError:  # pragma: no cover - abstract factory
            args = []
        return identifier, args

    def _failed(
        self,
        result: TestResult,
        strategy: ScheduleStrategy,
        trace: ScheduleTrace,
    ) -> Optional[ExplorationFinding]:
        failed = result.failed_aspects()
        if not failed and not result.fatal:
            return None
        messages = [o.message for o in failed if o.message]
        if result.fatal:
            messages.insert(0, result.fatal)
        return ExplorationFinding(
            strategy_label=strategy.label(),
            seed=getattr(strategy, "seed", None),
            score=result.score,
            max_score=result.max_score,
            failed_aspects=[o.aspect for o in failed],
            messages=messages,
            trace=trace,
            deadlocked=trace.deadlocked,
        )
