"""Child-process entry point for subprocess execution of tested programs.

Run as ``python -m repro.execution.child <identifier> [args...]``.  The
child resolves the tested program exactly like the in-process runner
(registration via ``repro.workloads`` import, a ``.py`` file path, or a
dotted module path), emits one infrastructure marker line identifying
the root thread's trace id, and runs ``main(args)`` to completion.

Protocol details the parent's :class:`~repro.execution.subprocess_runner.
SubprocessRunner` relies on:

* the first line is ``Thread <id>->__root__:<pid>`` — printed *by the
  infrastructure from the root thread* before the program runs, so the
  parent can identify the root even for programs whose root never
  prints (e.g. the Hello World variants);
* when the environment variable ``REPRO_HIDE_PRINTS`` is ``1``, all
  ``print_property`` output is disabled (the standalone analogue of
  ``set_hide_redirected_prints``) and nothing at all is written;
* program exceptions exit with status 70 after writing the exception to
  stderr, so the parent reports them the way the in-process runner
  reports a captured exception.
"""

from __future__ import annotations

import os
import sys
import traceback
from typing import List, Optional

#: Property name of the root-identification marker line.
ROOT_MARKER = "__root__"


#: stderr side-channel record: ``@repro-line <stdout line index> <tid>``.
#: Emitted for every stdout line so the parent can attribute plain
#: (non-property) lines to the thread that actually printed them.
LINE_ANNOTATION_PREFIX = "@repro-line "


class _LineAtomicStdout:
    """Per-thread line buffering over the real stdout, with attribution.

    Plain ``print`` issues separate writes for the text and the newline;
    with multiple threads those interleave and tear lines apart, which
    would corrupt the trace the parent parses.  This wrapper buffers each
    thread's partial output and emits whole lines with a single locked
    write — the standalone analogue of the in-process interceptor's
    buffering.  For each emitted line it also writes an attribution
    record to stderr carrying the printing thread's standalone trace id,
    so the parent can keep thread identity even for lines whose text
    does not mention a thread (the Hello World case).
    """

    def __init__(self, real, err) -> None:
        import threading

        self._real = real
        self._err = err
        self._buffers = threading.local()
        self._lock = threading.Lock()
        self._line_index = 0

    def write(self, text: str) -> int:
        from repro.tracing.print_property import standalone_thread_id

        buffer = getattr(self._buffers, "value", "") + text
        while True:
            newline = buffer.find("\n")
            if newline < 0:
                break
            line, buffer = buffer[: newline + 1], buffer[newline + 1 :]
            tid = standalone_thread_id()
            with self._lock:
                index = self._line_index
                self._line_index += 1
                self._real.write(line)
                self._err.write(f"{LINE_ANNOTATION_PREFIX}{index} {tid}\n")
        self._buffers.value = buffer
        return len(text)

    def flush(self) -> None:
        with self._lock:
            self._real.flush()
            self._err.flush()

    def close_buffers(self) -> None:
        buffer = getattr(self._buffers, "value", "")
        if buffer:
            self._buffers.value = ""
            self.write(buffer + "\n")

#: Exit status for an exception escaping the tested program's main.
PROGRAM_ERROR_EXIT = 70
#: Exit status when the identifier cannot be resolved.
UNKNOWN_MAIN_EXIT = 71


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.execution.child <identifier> [args...]", file=sys.stderr)
        return 2
    identifier, args = argv[0], argv[1:]

    import repro.workloads  # noqa: F401 - register the built-in programs
    from repro.execution.registry import UnknownMainError, resolve_main
    from repro.tracing.print_property import print_property, set_standalone_hidden

    hidden = os.environ.get("REPRO_HIDE_PRINTS") == "1"
    set_standalone_hidden(hidden)
    wrapper = _LineAtomicStdout(sys.stdout, sys.stderr)
    sys.stdout = wrapper  # type: ignore[assignment]

    try:
        program = resolve_main(identifier)
    except UnknownMainError as exc:
        print(str(exc), file=sys.stderr)
        return UNKNOWN_MAIN_EXIT

    # Register the root thread as the first trace id and tell the parent
    # which id that is (suppressed entirely when hidden).
    print_property(ROOT_MARKER, os.getpid())

    try:
        program(args)
    except BaseException:  # noqa: BLE001 - serialized to the parent
        wrapper.close_buffers()
        wrapper.flush()
        traceback.print_exc()
        return PROGRAM_ERROR_EXIT
    wrapper.close_buffers()
    wrapper.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
