"""Happens-before equivalence over recorded schedules.

Two controlled schedules that merely permute *independent* steps — a
worker printing a trace line before vs. after another worker's print —
drive the tested program through the same happens-before order, grade
identically, and waste the exploration budget when both are executed.
This module canonicalizes a recorded :class:`ScheduleTrace` into its
**happens-before key** (a Mazurkiewicz-trace invariant) so the explorer
can skip a schedule whose key it has already graded, in the spirit of
"Generating Representative Executions" (PAPERS.md).

The event model
---------------

A recorded schedule is a decision list; decision *i* grants worker
``chosen_i``, which then runs one code **segment** ending at its next
yield — whose kind is the *point* of decision *i + 1* (the final grant's
segment ends in the worker's unrecorded last yield: ``retire``, or
``block`` when the run deadlocked).  The executed schedule is therefore
a sequence of :class:`ScheduleEvent` ``(worker, kind)`` pairs, one per
segment, in execution order.

Two events are **independent** (they commute) when they belong to
different workers and at least one is a ``trace`` event; every other
pair **conflicts**.  The tested-program contract behind that relation:
trace prints publish *thread-local* observations (`tested_programs.md`),
so a segment ending in a ``trace`` yield touches no shared state, while
segments ending at ``checkpoint`` / lock operations / ``retire`` are
exactly where the workloads put their shared reads and writes (e.g.
``SharedCounter.add_racy`` reads before its ``checkpoint`` and writes
before its ``retire``).  Keeping every non-``trace`` kind in the
dependence relation is what makes two same-key schedules grade
identically even for racy programs.

The canonical form is the standard complete invariant for this
dependence relation: each worker's program-order projection plus the
projection onto conflicting events.  Schedules are equivalent iff their
canonical forms — and hence their :func:`happens_before_key` digests —
are equal.

The oracle
----------

Dedup must *never execute* a redundant schedule, but a generative
strategy's schedule is only known after running it.
:class:`ScheduleOracle` closes that loop: from one executed trace it
extracts each worker's **skeleton** (its schedule-independent sequence
of yield kinds) and then *simulates* the controlled scheduler against
any candidate strategy offline — no program run — reproducing the exact
decision semantics of :class:`ControlledScheduler` (ready sets, lock
parking, deadlock).  The predicted trace yields the candidate's key
before anything executes.  The oracle is intentionally conservative:

* it refuses traces with deadlocks, divergence, or staged ``start``
  decisions (skeletons would be incomplete or mis-attributed);
* lock operations are modelled against one conflated lock — exact for
  programs using at most one lock, and *checked* regardless: the
  explorer compares the predicted key against the real key after every
  executed run and fails open (dedup off) on the first misprediction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.execution.scheduling import (
    ScheduleDecision,
    ScheduleDivergenceError,
    ScheduleStrategy,
    ScheduleTrace,
)

__all__ = [
    "COMMUTING_KINDS",
    "ScheduleEvent",
    "executed_events",
    "events_conflict",
    "canonical_form",
    "happens_before_key",
    "ScheduleOracle",
]

#: Yield-point kinds whose segments are pure thread-local observation
#: and therefore commute with any other worker's events.  Everything
#: else — checkpoints, lock traffic, blocking, retirement, staged
#: starts — is kept ordered in the canonical form.
COMMUTING_KINDS = frozenset({"trace"})


@dataclass(frozen=True)
class ScheduleEvent:
    """One executed segment: *worker* ran until a yield of kind *kind*."""

    worker: int
    kind: str


def executed_events(trace: ScheduleTrace) -> List[ScheduleEvent]:
    """The executed-segment sequence of a recorded schedule.

    Decision *i*'s chosen worker runs a segment ended by decision
    *i + 1*'s yield point; the last grant's segment ends in the
    unrecorded final yield — ``retire`` on a completed run, ``block``
    when the scheduler recorded a deadlock.
    """
    decisions = trace.decisions
    events: List[ScheduleEvent] = []
    for index, decision in enumerate(decisions):
        if index + 1 < len(decisions):
            kind = decisions[index + 1].point
        else:
            kind = "block" if trace.deadlocked else "retire"
        events.append(ScheduleEvent(worker=decision.chosen, kind=kind))
    return events


def events_conflict(a: ScheduleEvent, b: ScheduleEvent) -> bool:
    """Do *a* and *b* depend on each other (i.e. must stay ordered)?"""
    if a.worker == b.worker:
        return True
    return a.kind not in COMMUTING_KINDS and b.kind not in COMMUTING_KINDS


def canonical_form(trace: ScheduleTrace) -> dict:
    """The happens-before canonical form of a recorded schedule.

    Two schedules of the same program are equivalent — reachable from
    each other by swapping adjacent independent events — iff their
    canonical forms are equal: per-worker program-order projections plus
    the global projection onto conflicting (non-``trace``) events, with
    the deadlock verdict folded in.
    """
    events = executed_events(trace)
    program_order: Dict[int, List[str]] = {}
    for event in events:
        program_order.setdefault(event.worker, []).append(event.kind)
    conflict_order = [
        [event.worker, event.kind]
        for event in events
        if event.kind not in COMMUTING_KINDS
    ]
    return {
        "program_order": {
            str(worker): kinds for worker, kinds in sorted(program_order.items())
        },
        "conflict_order": conflict_order,
        "deadlocked": bool(trace.deadlocked),
    }


def happens_before_key(trace: ScheduleTrace) -> str:
    """Stable digest of :func:`canonical_form` — the dedup key."""
    payload = json.dumps(canonical_form(trace), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Offline simulation
# ----------------------------------------------------------------------
@dataclass
class SimulatedRun:
    """What the oracle predicts a strategy's run would record."""

    trace: ScheduleTrace
    #: The simulation ran every worker to retirement (or a deadlock was
    #: reached); ``False`` means the step cap fired and the prediction
    #: is unusable.
    complete: bool = True

    @property
    def key(self) -> Optional[str]:
        return happens_before_key(self.trace) if self.complete else None


class _SimWorker:
    __slots__ = ("key", "skeleton", "pos", "attempting", "parked")

    def __init__(self, key: int, skeleton: List[str]) -> None:
        self.key = key
        self.skeleton = skeleton
        self.pos = 0
        #: Inside an acquire loop: the next grant retries the lock.
        self.attempting = False
        #: Parked on the (conflated) lock; out of the ready set.
        self.parked = False


class ScheduleOracle:
    """Predict a candidate strategy's recorded schedule without running.

    Built from one executed trace via :meth:`from_trace`; thereafter
    :meth:`simulate` mirrors :class:`ControlledScheduler` decision for
    decision against the extracted per-worker skeletons.
    """

    #: Default per-simulation decision cap — a runaway-strategy backstop
    #: far above any skeleton the explorer meets in practice.
    MAX_STEPS = 100_000

    def __init__(self, skeletons: Dict[int, List[str]]) -> None:
        self.skeletons = skeletons

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: ScheduleTrace) -> Optional["ScheduleOracle"]:
        """Extract skeletons from an executed trace; ``None`` when the
        trace is outside the oracle's supported shape."""
        if trace.deadlocked or trace.divergence or not trace.decisions:
            return None
        if trace.decisions[0].point != "start":
            return None
        if any(d.point == "start" for d in trace.decisions[1:]):
            return None  # staged start_all: segments mis-attributed
        enrolled = set(trace.decisions[0].ready)
        if trace.workers and enrolled != set(trace.workers):
            return None  # late enrollment: skeletons would be partial
        skeletons: Dict[int, List[str]] = {key: [] for key in enrolled}
        for event in executed_events(trace):
            if event.worker not in skeletons:
                return None
            if event.kind == "lock-tryacquire":
                # A try-acquire's outcome is schedule-dependent and the
                # program may branch on it, so the worker's yield-kind
                # sequence is not a schedule-independent skeleton.
                return None
            if event.kind == "block":
                # Lock contention, a schedule-dependent consequence the
                # simulation re-derives from lock state; not a skeleton
                # step.
                continue
            skeletons[event.worker].append(event.kind)
        for key, kinds in skeletons.items():
            if not kinds or kinds[-1] != "retire":
                return None
            if "retire" in kinds[:-1]:
                return None
        return cls(skeletons)

    # ------------------------------------------------------------------
    def simulate(
        self, strategy: ScheduleStrategy, *, max_steps: Optional[int] = None
    ) -> SimulatedRun:
        """Drive *strategy* against the skeletons; returns the predicted
        recording.  *strategy* must be a fresh/cloned instance — its
        internal state (RNG, quanta) is consumed exactly as a live run
        would consume it."""
        cap = self.MAX_STEPS if max_steps is None else max_steps
        workers = {
            key: _SimWorker(key, list(kinds))
            for key, kinds in self.skeletons.items()
        }
        live = dict(workers)  # not yet retired
        lock_holder: Optional[int] = None
        decisions: List[ScheduleDecision] = []
        deadlocked = False
        step = 0

        def ready_keys() -> List[int]:
            return sorted(k for k, w in live.items() if not w.parked)

        def decide(current: Optional[int], point: str) -> Optional[int]:
            nonlocal deadlocked, step
            ready = ready_keys()
            if not ready:
                if live:
                    deadlocked = True
                return None
            chosen = strategy.choose(
                ready, current if current in ready else None, point, step
            )
            if chosen not in ready:
                raise ScheduleDivergenceError(
                    f"simulated strategy chose {chosen} outside ready {ready}"
                )
            decisions.append(
                ScheduleDecision(step=step, point=point, ready=ready, chosen=chosen)
            )
            step += 1
            return chosen

        granted = decide(None, "start")
        while granted is not None and step < cap:
            worker = live[granted]
            if worker.attempting:
                # Mirror of ControlledScheduler.acquire_lock's retry loop.
                if lock_holder is None:
                    lock_holder = worker.key
                    worker.attempting = False
                else:
                    worker.parked = True
                    granted = decide(worker.key, "block")
                    continue
            action = worker.skeleton[worker.pos]
            worker.pos += 1
            if action == "retire":
                del live[worker.key]
                if not live:
                    break  # final retire records no decision
                granted = decide(worker.key, "retire")
                continue
            if action == "lock-acquire":
                worker.attempting = True
                granted = decide(worker.key, "lock-acquire")
                continue
            if action == "lock-release":
                lock_holder = None
                for other in live.values():
                    other.parked = False
                granted = decide(worker.key, "lock-release")
                continue
            # checkpoint / trace (and any future plain yield kind)
            granted = decide(worker.key, action)

        complete = deadlocked or not live
        trace = ScheduleTrace(
            strategy=getattr(strategy, "name", "simulated"),
            seed=getattr(strategy, "seed", None),
            workers={key: f"worker-{key}" for key in self.skeletons},
            decisions=decisions,
            deadlocked=deadlocked,
        )
        return SimulatedRun(trace=trace, complete=complete)

    def predict_key(
        self, strategy: ScheduleStrategy, *, max_steps: Optional[int] = None
    ) -> Optional[str]:
        """The happens-before key *strategy* would produce, or ``None``
        when the simulation could not complete."""
        try:
            run = self.simulate(strategy, max_steps=max_steps)
        except ScheduleDivergenceError:
            return None
        return run.key
