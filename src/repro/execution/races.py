"""Lockset + happens-before race analysis over recorded schedules.

The ``[racy @seed N]`` marker says *a* schedule failed; it cannot say
*why*.  This module answers the why from evidence the harness already
records: the scheduler's decision stream (:class:`ScheduleDecision`,
whose lock-flavoured points now carry the lock id).  Walking one
recorded :class:`ScheduleTrace` with the exact grant/probe semantics of
:class:`repro.execution.scheduling.ControlledScheduler` reconstructs,
per executed segment, **which locks the running worker held** — and a
vector clock built from the synchronization edges (lock release →
subsequent acquire of the same lock) orders segments by happens-before.

Two segments **race** when they belong to different workers, both end
at a shared-access flush point, hold no lock in common (disjoint
locksets), and are concurrent under the vector clocks.  This is the
classic lockset ∩ happens-before hybrid (Dinning/Schonberg eraser-style
lockset, Djit-style clocks), specialised to the harness's segment
model.

What counts as a shared access
------------------------------

The analysis sees yield kinds, not loads and stores, so it leans on the
tested-program segment discipline (:mod:`repro.workloads.synclab`,
:mod:`repro.execution.equivalence`): shared-state accesses are
committed inside lock-delimited regions, or — for code that does not
synchronize — before the worker's next ``checkpoint`` or its
retirement (join is an unsynchronized worker's only commit point).
Concretely a segment is an **access segment** when

* its worker holds at least one lock during it (critical-section
  interior: the segments ending at ``checkpoint`` / ``lock-release``
  inside a ``with lock:`` body), for workers that use locks at all; or
* its worker performs *no* lock operation over its whole lifetime and
  the segment ends at ``checkpoint`` or ``retire`` — the unsynchronized
  read-modify-write shape, where every checkpoint flushes a shared
  access.

The asymmetry is the discipline itself: a worker that synchronizes
commits its shared accesses at lock boundaries, so its lock-free
checkpoint segments are thread-local pacing (``primes.correct`` paces
one checkpoint per candidate number); a worker that never synchronizes
has nothing but checkpoints and join to commit with.  The cost is a
known false negative — a lock-using worker's *additional* unguarded
access is invisible — which schedule exploration still catches the
moment it makes a schedule fail.

Segments ending at ``trace`` commute (thread-local observation, the
Mazurkiewicz relation of :mod:`repro.execution.equivalence`) and
segments ending at ``block`` ran no user code (a failed probe parks
immediately); neither is ever an access segment.

The analysis is evidence over *one* interleaving: a clean report means
no race was observable in that schedule, which is why the explorer runs
it per executed schedule and aggregates across the census.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.execution.scheduling import ScheduleTrace

__all__ = [
    "ACCESS_KINDS",
    "SegmentAccess",
    "RacePair",
    "LockContention",
    "RaceReport",
    "analyze_trace",
    "merge_reports",
]

#: Segment-ending kinds that commit an *unsynchronized* worker's shared
#: accesses (lock-using workers commit inside lock-held segments).
ACCESS_KINDS = frozenset({"checkpoint", "retire"})

#: Lock-flavoured decision points (carry a lock id).
_LOCK_POINTS = frozenset(
    {"lock-acquire", "lock-tryacquire", "lock-release", "block"}
)

#: Conflated-lock id used when a decision predates the ``lock`` field.
_CONFLATED = -1

#: Holder sentinel for locks acquired by untracked (free-running)
#: threads: their raw acquires record no decision, but a worker that
#: subsequently blocked proves the lock was held by *someone*.
_EXTERNAL = -2


@dataclass(frozen=True)
class SegmentAccess:
    """One shared-access segment: who ran, where, holding what."""

    #: Decision index that granted the segment (its step).
    step: int
    worker: int
    #: Worker's thread name from the trace, for human-facing reports.
    worker_name: str
    #: Yield kind that ended the segment.
    kind: str
    #: Lock ids held across the segment.
    lockset: FrozenSet[int]

    def label(self) -> str:
        held = (
            "{" + ",".join(str(l) for l in sorted(self.lockset)) + "}"
            if self.lockset
            else "unlocked"
        )
        return f"{self.worker_name}@{self.step}({self.kind},{held})"

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "worker": self.worker,
            "worker_name": self.worker_name,
            "kind": self.kind,
            "lockset": sorted(self.lockset),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentAccess":
        return cls(
            step=int(data.get("step", 0)),
            worker=int(data.get("worker", 0)),
            worker_name=str(data.get("worker_name", "")),
            kind=str(data.get("kind", "")),
            lockset=frozenset(int(l) for l in data.get("lockset", [])),
        )


@dataclass(frozen=True)
class RacePair:
    """Two concurrent, unguarded shared-access segments — a race."""

    first: SegmentAccess
    second: SegmentAccess

    def label(self) -> str:
        return f"{self.first.label()} × {self.second.label()}"

    #: Schedule-independent identity: the same source-level race shows
    #: up at different steps across schedules but keeps its worker pair
    #: and segment kinds.
    def signature(self) -> Tuple[str, str, str, str]:
        return (
            self.first.worker_name,
            self.first.kind,
            self.second.worker_name,
            self.second.kind,
        )

    def to_dict(self) -> dict:
        return {"first": self.first.to_dict(), "second": self.second.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "RacePair":
        return cls(
            first=SegmentAccess.from_dict(data.get("first", {})),
            second=SegmentAccess.from_dict(data.get("second", {})),
        )


@dataclass
class LockContention:
    """Per-lock traffic observed while walking one schedule."""

    lock: int
    acquisitions: int = 0
    blocks: int = 0
    try_failures: int = 0

    def to_dict(self) -> dict:
        return {
            "lock": self.lock,
            "acquisitions": self.acquisitions,
            "blocks": self.blocks,
            "try_failures": self.try_failures,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LockContention":
        return cls(
            lock=int(data.get("lock", 0)),
            acquisitions=int(data.get("acquisitions", 0)),
            blocks=int(data.get("blocks", 0)),
            try_failures=int(data.get("try_failures", 0)),
        )


@dataclass
class RaceReport:
    """The race evidence extracted from recorded schedules.

    ``pairs`` holds up to ``max_pairs`` racing segment pairs
    (``truncated`` says whether more existed); ``unguarded`` lists the
    distinct access segments that participate in at least one race —
    the unguarded shared accesses a fix must cover; ``contention``
    summarises per-lock traffic.  ``schedules_analyzed`` > 1 after
    :func:`merge_reports` folds a census together.
    """

    pairs: List[RacePair] = field(default_factory=list)
    unguarded: List[SegmentAccess] = field(default_factory=list)
    contention: List[LockContention] = field(default_factory=list)
    #: Total racing pairs found, including any beyond ``max_pairs``.
    race_count: int = 0
    truncated: bool = False
    schedules_analyzed: int = 1

    @property
    def has_races(self) -> bool:
        return self.race_count > 0

    def pair_labels(self) -> List[str]:
        return [pair.label() for pair in self.pairs]

    def summary(self) -> str:
        if not self.has_races:
            return (
                f"no races across {self.schedules_analyzed} analyzed "
                f"schedule(s)"
            )
        shown = "; ".join(self.pair_labels()[:3])
        more = self.race_count - min(3, len(self.pairs))
        tail = f" (+{more} more)" if more > 0 else ""
        return f"{self.race_count} racing pair(s): {shown}{tail}"

    def to_dict(self) -> dict:
        return {
            "pairs": [pair.to_dict() for pair in self.pairs],
            "unguarded": [seg.to_dict() for seg in self.unguarded],
            "contention": [c.to_dict() for c in self.contention],
            "race_count": self.race_count,
            "truncated": self.truncated,
            "schedules_analyzed": self.schedules_analyzed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RaceReport":
        return cls(
            pairs=[RacePair.from_dict(p) for p in data.get("pairs", [])],
            unguarded=[
                SegmentAccess.from_dict(s) for s in data.get("unguarded", [])
            ],
            contention=[
                LockContention.from_dict(c) for c in data.get("contention", [])
            ],
            race_count=int(data.get("race_count", 0)),
            truncated=bool(data.get("truncated", False)),
            schedules_analyzed=int(data.get("schedules_analyzed", 1)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class _Walker:
    """Replays one decision stream with the scheduler's lock semantics."""

    def __init__(self, trace: ScheduleTrace) -> None:
        self.trace = trace
        self.holder: Dict[int, int] = {}  # lock -> worker (or _EXTERNAL)
        self.lock_clock: Dict[int, Dict[int, int]] = {}
        self.clocks: Dict[int, Dict[int, int]] = {}
        self.pending_acquire: Dict[int, int] = {}  # worker -> wanted lock
        self.pending_try: Dict[int, int] = {}
        self.used_locks: Dict[int, bool] = {}
        self.contention: Dict[int, LockContention] = {}
        #: Join of every retired worker's final clock: the root's
        #: knowledge, inherited by workers started after a join (the
        #: fork/join edge of staged start/join batches).
        self.root_clock: Dict[int, int] = {}

    def _stat(self, lock: int) -> LockContention:
        return self.contention.setdefault(lock, LockContention(lock=lock))

    def _join_into_worker(self, worker: int, lock: int) -> None:
        clock = self.clocks.setdefault(worker, {})
        for key, tick in self.lock_clock.get(lock, {}).items():
            if clock.get(key, 0) < tick:
                clock[key] = tick

    def _apply_yield(self, worker: Optional[int], point: str, lock: int) -> None:
        """The yield that *ended* the previous segment."""
        if point == "retire" and worker is not None:
            for key, tick in self.clocks.get(worker, {}).items():
                if self.root_clock.get(key, 0) < tick:
                    self.root_clock[key] = tick
            return
        if point not in _LOCK_POINTS:
            return
        if worker is not None:
            self.used_locks[worker] = True
        if point == "lock-acquire":
            if worker is not None:
                self.pending_acquire[worker] = lock
        elif point == "lock-tryacquire":
            if worker is not None:
                self.pending_try[worker] = lock
        elif point == "block":
            self._stat(lock).blocks += 1
            # The probe failed, so someone held the lock.  If no tracked
            # worker does, a free-running thread acquired it raw.
            self.holder.setdefault(lock, _EXTERNAL)
        elif point == "lock-release":
            released_by = self.holder.pop(lock, None)
            if released_by is not None and released_by >= 0:
                # Publish the releasing worker's knowledge on the lock.
                clock = self.lock_clock.setdefault(lock, {})
                for key, tick in self.clocks.get(released_by, {}).items():
                    if clock.get(key, 0) < tick:
                        clock[key] = tick

    def _grant(self, worker: int) -> None:
        """Segment start: re-probe pending acquires, tick the clock."""
        if worker not in self.clocks:
            # First grant: inherit the root's knowledge (fork edge —
            # everything joined before this worker started).
            self.clocks[worker] = dict(self.root_clock)
        wanted = self.pending_acquire.get(worker)
        if wanted is not None and self.holder.get(wanted) is None:
            self.holder[wanted] = worker
            del self.pending_acquire[worker]
            self._join_into_worker(worker, wanted)
            self._stat(wanted).acquisitions += 1
        tried = self.pending_try.pop(worker, None)
        if tried is not None:
            if self.holder.get(tried) is None:
                self.holder[tried] = worker
                self._join_into_worker(worker, tried)
                self._stat(tried).acquisitions += 1
            else:
                self._stat(tried).try_failures += 1
        clock = self.clocks.setdefault(worker, {})
        clock[worker] = clock.get(worker, 0) + 1

    def lockset_of(self, worker: int) -> FrozenSet[int]:
        return frozenset(
            lock for lock, holder in self.holder.items() if holder == worker
        )


def _segments(
    trace: ScheduleTrace,
) -> Tuple[List[Tuple[SegmentAccess, Dict[int, int], int, bool]], Dict[int, LockContention]]:
    """Every executed segment with its lockset, clock snapshot, epoch,
    and whether its worker ever touched a lock (final value) — plus the
    per-lock contention counters gathered during the same walk."""
    walker = _Walker(trace)
    decisions = trace.decisions
    names = trace.workers or {}
    raw: List[Tuple[int, int, str, FrozenSet[int], Dict[int, int], int]] = []
    for index, decision in enumerate(decisions):
        lock = decision.lock if decision.lock is not None else _CONFLATED
        yielder = decisions[index - 1].chosen if index > 0 else None
        walker._apply_yield(yielder, decision.point, lock)
        worker = decision.chosen
        walker._grant(worker)
        if index + 1 < len(decisions):
            kind = decisions[index + 1].point
        else:
            kind = "block" if trace.deadlocked else "retire"
        raw.append(
            (
                index,
                worker,
                kind,
                walker.lockset_of(worker),
                dict(walker.clocks.get(worker, {})),
                walker.clocks.get(worker, {}).get(worker, 0),
            )
        )
    result = []
    for index, worker, kind, lockset, clock, epoch in raw:
        access = SegmentAccess(
            step=index,
            worker=worker,
            worker_name=names.get(worker, f"worker-{worker}"),
            kind=kind,
            lockset=lockset,
        )
        result.append(
            (access, clock, epoch, walker.used_locks.get(worker, False))
        )
    return result, walker.contention


def analyze_trace(trace: ScheduleTrace, *, max_pairs: int = 32) -> RaceReport:
    """Lockset + happens-before analysis of one recorded schedule."""
    walker_segments, contention_stats = _segments(trace)
    accesses: List[Tuple[SegmentAccess, Dict[int, int], int]] = []
    for access, clock, epoch, worker_used_locks in walker_segments:
        if access.kind in ("trace", "block"):
            continue
        if worker_used_locks:
            if access.lockset:
                accesses.append((access, clock, epoch))
        elif access.kind in ACCESS_KINDS:
            accesses.append((access, clock, epoch))

    pairs: List[RacePair] = []
    race_count = 0
    racing_steps: Dict[int, SegmentAccess] = {}
    for i, (a, _clock_a, epoch_a) in enumerate(accesses):
        for b, clock_b, _epoch_b in (entry for entry in accesses[i + 1 :]):
            if a.worker == b.worker:
                continue
            if a.lockset & b.lockset:
                continue
            # a executed before b; they are ordered iff b's clock has
            # caught up with a's epoch via a synchronization edge.
            if clock_b.get(a.worker, 0) >= epoch_a:
                continue
            race_count += 1
            racing_steps.setdefault(a.step, a)
            racing_steps.setdefault(b.step, b)
            if len(pairs) < max_pairs:
                pairs.append(RacePair(first=a, second=b))

    contention = sorted(contention_stats.values(), key=lambda c: c.lock)
    return RaceReport(
        pairs=pairs,
        unguarded=[racing_steps[step] for step in sorted(racing_steps)],
        contention=contention,
        race_count=race_count,
        truncated=race_count > len(pairs),
        schedules_analyzed=1,
    )


def merge_reports(reports: Sequence[RaceReport], *, max_pairs: int = 32) -> RaceReport:
    """Fold per-schedule reports into one census-wide report.

    Pairs are deduplicated by their schedule-independent signature
    (worker names + segment kinds): the same source-level race observed
    in ten schedules is one pair, not ten.  ``race_count`` counts the
    distinct signatures; contention sums.
    """
    merged_pairs: Dict[Tuple[str, str, str, str], RacePair] = {}
    total_signatures: Dict[Tuple[str, str, str, str], None] = {}
    unguarded: Dict[Tuple[str, str], SegmentAccess] = {}
    contention: Dict[int, LockContention] = {}
    analyzed = 0
    truncated = False
    for report in reports:
        if report is None:
            continue
        analyzed += report.schedules_analyzed
        truncated = truncated or report.truncated
        for pair in report.pairs:
            signature = pair.signature()
            total_signatures.setdefault(signature)
            merged_pairs.setdefault(signature, pair)
        for segment in report.unguarded:
            unguarded.setdefault((segment.worker_name, segment.kind), segment)
        for stat in report.contention:
            into = contention.setdefault(stat.lock, LockContention(lock=stat.lock))
            into.acquisitions += stat.acquisitions
            into.blocks += stat.blocks
            into.try_failures += stat.try_failures
    pairs = list(merged_pairs.values())[:max_pairs]
    return RaceReport(
        pairs=pairs,
        unguarded=[
            unguarded[key] for key in sorted(unguarded)
        ],
        contention=[contention[lock] for lock in sorted(contention)],
        race_count=len(total_signatures),
        truncated=truncated or len(merged_pairs) > len(pairs),
        schedules_analyzed=max(analyzed, 1),
    )
