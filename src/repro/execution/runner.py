"""Program-execution layer: run a tested program and collect its trace.

This is the common layer both the functionality and performance checkers
use (§4.4): it invokes the tested program's ``main`` with specified
arguments, lets it run to full completion, and collects its output plus
the event trace.  The program runs on a dedicated *root thread* so that

* the root thread of the fork-join model is a first-class, identifiable
  thread object distinct from the harness's own thread;
* a runaway program can be timed out (reported, not killed — CPython has
  no safe thread kill, and fork-join course workloads are small);
* exceptions escaping ``main`` are captured and reported rather than
  crashing the harness — as in the paper, intermediate errors are
  expected to manifest as incorrect traced output.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional

from repro.eventdb.database import EventDatabase
from repro.eventdb.events import PropertyEvent
from repro.execution.registry import MainFunction, resolve_main
from repro.obs import get_registry as _obs_registry
from repro.tracing.session import TraceSession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.execution.scheduling import ScheduleTrace

__all__ = [
    "ExecutionResult",
    "ProgramRunner",
    "DEFAULT_TIMEOUT",
    "in_process_session_lock",
]

#: Course fork-join workloads complete in milliseconds; a generous default
#: catches deadlocked joins without stalling a grading session.
DEFAULT_TIMEOUT = 30.0

#: In-process tracing patches *process-global* state (``sys.stdout``,
#: ``builtins.print``), so two concurrent in-process runs would corrupt
#: each other's traces.  All in-process runs serialize on this lock; a
#: parallel grading batch that wants real concurrency must use
#: :class:`~repro.execution.subprocess_runner.SubprocessRunner`, whose
#: children own their interpreters outright.
_SESSION_LOCK = threading.RLock()


def in_process_session_lock() -> threading.RLock:
    """The lock serializing all in-process runs (re-entrant).

    Callers that install an ambient backend around a whole checker run —
    e.g. schedule exploration — hold this so a parallel grading batch
    cannot interleave another submission into their controlled backend.
    """
    return _SESSION_LOCK


@dataclass
class ExecutionResult:
    """Everything observed from one complete run of a tested program."""

    identifier: str
    args: List[str]
    output: str
    events: List[PropertyEvent]
    database: EventDatabase
    root_thread: threading.Thread
    root_thread_id: int
    duration: float
    exception: Optional[BaseException] = None
    timed_out: bool = False
    hidden: bool = False
    #: Threads other than the root that produced at least one event, in
    #: first-output order — the *forked worker threads* of the model.
    worker_threads: List[threading.Thread] = field(default_factory=list)
    #: Signal that killed the child (subprocess regime only; ``None``
    #: for normal exits and the whole in-process regime).
    signal_number: Optional[int] = None
    #: Trace lines that are property-shaped but unparseable, or cut
    #: mid-line — evidence of a torn/garbled trace (subprocess regime).
    garbled_lines: List[str] = field(default_factory=list)
    #: Recorded interleaving when the run executed under a controlled
    #: schedule (:class:`~repro.execution.scheduling.ScheduleTrace`),
    #: else ``None``.
    schedule: Optional["ScheduleTrace"] = None
    #: Seed of the controlled schedule's strategy, when it had one.
    schedule_seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when the program ran to completion without an exception."""
        return self.exception is None and not self.timed_out and self.signal_number is None

    @property
    def failure_kind(self):
        """This run's :class:`~repro.execution.taxonomy.FailureKind`."""
        from repro.execution.taxonomy import classify_execution

        return classify_execution(self)

    def failure_reason(self) -> str:
        """Human-readable cause of a non-ok run (empty when ok)."""
        if self.timed_out:
            return (
                f"program {self.identifier!r} did not terminate within the "
                f"time limit (deadlocked join?)"
            )
        if self.signal_number is not None:
            import signal as _signal

            try:
                name = _signal.Signals(self.signal_number).name
            except ValueError:  # pragma: no cover - exotic signal number
                name = f"signal {self.signal_number}"
            return f"program {self.identifier!r} was killed by {name}"
        if self.exception is not None:
            return (
                f"program {self.identifier!r} raised "
                f"{type(self.exception).__name__}: {self.exception}"
            )
        return ""

    def worker_events(self) -> List[PropertyEvent]:
        """Events produced by the forked worker threads, in trace order."""
        root = self.root_thread
        return [e for e in self.events if e.thread is not root]

    def root_events(self) -> List[PropertyEvent]:
        """Events produced by the root thread, in trace order."""
        root = self.root_thread
        return [e for e in self.events if e.thread is root]


class ProgramRunner:
    """Run registered tested programs under trace sessions."""

    def __init__(self, *, timeout: float = DEFAULT_TIMEOUT, echo: bool = False) -> None:
        """Configure the runner.

        ``timeout`` is the default per-run wall-clock limit in seconds;
        ``echo`` forwards the tested program's output to the genuine
        stdout in addition to capturing it.
        """
        self.timeout = timeout
        self.echo = echo

    def run(
        self,
        identifier: str,
        args: Optional[List[str]] = None,
        *,
        hide_prints: bool = False,
        timeout: Optional[float] = None,
        stdin_lines: Optional[List[str]] = None,
        schedule: Optional[Any] = None,
    ) -> ExecutionResult:
        """Execute ``main(args)`` of *identifier* under a fresh session.

        With ``hide_prints=True`` (performance testing) every intercepted
        print is disabled for the entire run: no output, no trace events,
        no tracing overhead on the timed path.  ``stdin_lines`` scripts
        the program's standard input (§4.4: programs run "with specified
        input and arguments"); a program that reads more than provided
        fails with an EOF, as it would on a closed pipe.

        ``schedule`` runs the program under a *controlled schedule*: a
        seed (``int``), a recorded
        :class:`~repro.execution.scheduling.ScheduleTrace` to replay, or
        a strategy object.  The corresponding
        :class:`~repro.execution.scheduling.ScheduledBackend` is
        installed as the ambient concurrency backend for the run, every
        intercepted print becomes a yield point, and the recorded
        interleaving is attached to the result as ``result.schedule``.
        If a ``ScheduledBackend`` is already ambient (an explorer
        installed one around a whole checker), it is picked up and wired
        the same way without passing ``schedule=``.
        """
        obs = _obs_registry()
        with obs.span("runner.run", identifier=identifier) as span:
            result = self._run_traced(
                identifier,
                args,
                hide_prints=hide_prints,
                timeout=timeout,
                stdin_lines=stdin_lines,
                schedule=schedule,
            )
            span.set(
                events=len(result.events),
                timed_out=result.timed_out or None,
                schedule=(
                    result.schedule.label() if result.schedule is not None else None
                ),
            )
        obs.histogram("runner.run.seconds").observe(result.duration)
        if result.timed_out:
            obs.counter("runner.timeouts").inc()
        return result

    def _run_traced(
        self,
        identifier: str,
        args: Optional[List[str]] = None,
        *,
        hide_prints: bool = False,
        timeout: Optional[float] = None,
        stdin_lines: Optional[List[str]] = None,
        schedule: Optional[Any] = None,
    ) -> ExecutionResult:
        """The uninstrumented body of :meth:`run`."""
        from repro.execution.stdin_feed import StdinFeed
        from repro.execution.scheduling import (
            ScheduledBackend,
            resolve_schedule_strategy,
        )
        from repro.simulation.backend import current_backend, use_backend

        main = resolve_main(identifier)
        args = list(args) if args is not None else []
        limit = self.timeout if timeout is None else timeout

        session = TraceSession(hidden=hide_prints, echo=self.echo)
        feed = StdinFeed(stdin_lines) if stdin_lines is not None else None
        holder: dict = {"exception": None}

        def root_body() -> None:
            try:
                main(args)
            except BaseException as exc:  # noqa: BLE001 - reported, not raised
                holder["exception"] = exc

        root = threading.Thread(target=root_body, name=f"root:{identifier}")
        started = time.perf_counter()
        with _SESSION_LOCK:
            controlled: Optional[ScheduledBackend] = None
            install_backend = False
            if schedule is not None:
                if isinstance(schedule, ScheduledBackend):
                    controlled = schedule
                else:
                    controlled = ScheduledBackend(resolve_schedule_strategy(schedule))
                install_backend = True
            else:
                ambient = current_backend()
                if isinstance(ambient, ScheduledBackend):
                    controlled = ambient
            if controlled is not None:
                session.yield_hook = controlled.trace_yield
                session.database.schedule_id = controlled.schedule_id()
            if feed is not None:
                feed.install()
            try:
                with contextlib.ExitStack() as stack:
                    if install_backend:
                        stack.enter_context(use_backend(controlled))
                    stack.enter_context(session.activate())
                    # Register the root thread first so it receives the
                    # lowest id, as in the paper's traces where the root
                    # prints first.
                    root_id = session.registry.id_for(root)
                    root.start()
                    root.join(limit)
                    timed_out = root.is_alive()
                    if controlled is not None:
                        if timed_out:
                            # Unwind gated workers (deadlock or divergence
                            # left them parked) so the session teardown is
                            # not racing live prints.
                            controlled.abort()
                        else:
                            controlled.finish()
            finally:
                if feed is not None:
                    feed.uninstall()
        duration = time.perf_counter() - started

        events = session.database.snapshot()
        workers: List[threading.Thread] = []
        for event in events:
            if event.thread is not root and event.thread not in workers:
                workers.append(event.thread)

        return ExecutionResult(
            identifier=identifier,
            args=args,
            output=session.output(),
            events=events,
            database=session.database,
            root_thread=root,
            root_thread_id=root_id,
            duration=duration,
            exception=holder["exception"],
            timed_out=timed_out,
            hidden=hide_prints,
            worker_threads=workers,
            schedule=(
                controlled.schedule_trace(identifier, args)
                if controlled is not None
                else None
            ),
            schedule_seed=controlled.seed if controlled is not None else None,
        )

    def run_callable(
        self,
        main: MainFunction,
        args: Optional[List[str]] = None,
        *,
        identifier: str = "<anonymous>",
        hide_prints: bool = False,
        timeout: Optional[float] = None,
    ) -> ExecutionResult:
        """Like :meth:`run` but for an unregistered callable."""
        from repro.execution.registry import register_main, unregister_main

        token = f"__runner_tmp__:{identifier}:{id(main)}"
        register_main(token)(main)
        try:
            result = self.run(token, args, hide_prints=hide_prints, timeout=timeout)
        finally:
            unregister_main(token)
        result.identifier = identifier
        return result
