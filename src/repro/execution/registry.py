"""Resolution of *main class identifiers* to runnable entry points.

The paper's test programs name the program under test with a string such
as ``"ConcurrentPrimeNumbers"`` (the ``mainClassIdentifier`` parameter
method).  In this Python reproduction an identifier resolves, in order:

1. an explicit registration made with :func:`register_main` — the normal
   path for workloads shipped in :mod:`repro.workloads` and for student
   code imported by a grading harness;
2. a dotted path ``"package.module:function"`` (or ``"package.module"``,
   implying a module-level ``main``), imported on demand.

Every entry point has the signature ``main(args: list[str]) -> None``,
the Python analogue of ``public static void main(String[])``.
"""

from __future__ import annotations

import importlib
import threading
from typing import Callable, Dict, List, Optional

__all__ = [
    "MainFunction",
    "register_main",
    "resolve_main",
    "registered_mains",
    "unregister_main",
    "UnknownMainError",
]

MainFunction = Callable[[List[str]], None]

_lock = threading.Lock()
_registry: Dict[str, MainFunction] = {}


class UnknownMainError(LookupError):
    """Raised when a main class identifier cannot be resolved."""

    def __init__(self, identifier: str, detail: str = "") -> None:
        message = f"no tested program registered or importable as {identifier!r}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.identifier = identifier


def register_main(identifier: str) -> Callable[[MainFunction], MainFunction]:
    """Decorator registering *identifier* as the name of a tested program.

    Example::

        @register_main("ConcurrentPrimeNumbers")
        def main(args: list[str]) -> None:
            ...

    Re-registration replaces the previous entry, which lets a grading
    session bind the standard assignment name to successive student
    submissions.
    """

    def decorator(func: MainFunction) -> MainFunction:
        with _lock:
            _registry[identifier] = func
        return func

    return decorator


def unregister_main(identifier: str) -> None:
    """Remove a registration; unknown identifiers are ignored."""
    with _lock:
        _registry.pop(identifier, None)


def registered_mains() -> List[str]:
    """All explicitly registered identifiers, sorted."""
    with _lock:
        return sorted(_registry)


def _load_from_file(path: str, attr: str, identifier: str) -> MainFunction:
    """Load a tested program from a source file — a student submission."""
    import importlib.util
    import os

    if not os.path.exists(path):
        raise UnknownMainError(identifier, f"file {path!r} does not exist")
    module_name = f"_submission_{abs(hash(os.path.abspath(path)))}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise UnknownMainError(identifier, f"cannot load {path!r}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:  # noqa: BLE001 - import error is a grading fact
        raise UnknownMainError(identifier, f"importing {path!r} failed: {exc}") from exc
    func = getattr(module, attr, None)
    if func is None or not callable(func):
        raise UnknownMainError(identifier, f"file {path!r} has no callable {attr!r}")
    return func


def resolve_main(identifier: str) -> MainFunction:
    """Resolve *identifier* to a callable entry point.

    Resolution order: explicit registration; a ``.py`` file path (with
    optional ``:function``, default ``main``) — the student-submission
    case; finally a dotted module path.
    """
    with _lock:
        registered = _registry.get(identifier)
    if registered is not None:
        return registered
    target, _, attr = identifier.partition(":")
    attr = attr or "main"
    if target.endswith(".py"):
        return _load_from_file(target, attr, identifier)
    try:
        module = importlib.import_module(target)
    except ImportError as exc:
        raise UnknownMainError(identifier, str(exc)) from exc
    func = getattr(module, attr, None)
    if func is None or not callable(func):
        raise UnknownMainError(identifier, f"module {target!r} has no callable {attr!r}")
    return func
