"""Subprocess execution: run tested programs in their own interpreter.

The in-process runner (:mod:`repro.execution.runner`) is the paper's
primary regime — prints carry live values and tamper-proof thread
identity.  This runner is the complement for grading *real student
files*: the tested program runs under ``python -m repro.execution.child``
in a fresh interpreter, and the trace is reconstructed from its output
text using the standard property-line format.

Differences from the in-process regime, by construction:

* values arrive as text and are parsed against the declared property
  types when the phased trace is built
  (:func:`repro.core.trace_model.coerce_event_value`);
* thread identity is reconstructed from the *printed* ids, so — unlike
  in-process tracing — a malicious program could forge them.  Use the
  in-process runner when tamper-resistance matters; use this one when
  isolation from student code matters (infinite loops, interpreter
  crashes, monkey-patching);
* the infrastructure's ``__root__`` marker line (emitted by the child
  before the program starts) identifies the root thread even when the
  program's root never prints.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.eventdb.database import EventDatabase
from repro.eventdb.events import PropertyEvent
from repro.execution.child import (
    LINE_ANNOTATION_PREFIX,
    PROGRAM_ERROR_EXIT,
    ROOT_MARKER,
    UNKNOWN_MAIN_EXIT,
)
from repro.execution.registry import UnknownMainError
from repro.execution.runner import DEFAULT_TIMEOUT, ExecutionResult
from repro.execution.taxonomy import detect_garbled_lines
from repro.obs import get_registry as _obs_registry
from repro.tracing.formatting import parse_property_line
from repro.util.thread_registry import ThreadRegistry

__all__ = [
    "SubprocessRunner",
    "kill_active_child",
    "active_child_count",
    "child_environment",
    "DOCUMENTED_REPRO_VARS",
]

#: The ``REPRO_*`` environment overrides children are documented to
#: honour (see docs/writing_tests.md).  Everything else matching
#: ``REPRO_*`` is stripped from child environments so an operator's
#: stray variable cannot change grading behaviour nondeterministically.
DOCUMENTED_REPRO_VARS = (
    "REPRO_HIDE_PRINTS",
    "REPRO_OBS",
    "REPRO_WORKLOAD_SEED",
)


def child_environment(base: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Deterministic child environment from *base* (default ``os.environ``).

    Passes the parent environment through with undocumented ``REPRO_*``
    variables removed; only :data:`DOCUMENTED_REPRO_VARS` reach the
    child.  Built once per runner/pool, not per run.
    """
    source = os.environ if base is None else base
    return {
        key: value
        for key, value in source.items()
        if not key.startswith("REPRO_") or key in DOCUMENTED_REPRO_VARS
    }


class _ActiveChildren:
    """Live grading children, keyed by the thread that spawned them.

    The supervisor's watchdog enforces deadlines from *outside* the
    worker thread; the worker itself is blocked in ``communicate()`` and
    cannot act.  Registering every child here gives the watchdog a
    handle to hard-kill, and the ``harness_killed`` flag lets the worker
    distinguish "my child was killed for exceeding its deadline" (a
    timeout) from "my child died by its own signal" (a signal death) —
    both surface as a negative returncode.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._children: Dict[
            threading.Thread, Tuple[subprocess.Popen, Dict[str, bool]]
        ] = {}

    def register(self, popen: subprocess.Popen) -> Dict[str, bool]:
        state = {"harness_killed": False}
        with self._lock:
            self._children[threading.current_thread()] = (popen, state)
        return state

    def unregister(self) -> None:
        with self._lock:
            self._children.pop(threading.current_thread(), None)

    def kill_for(self, thread: threading.Thread) -> bool:
        """Hard-kill the child *thread* is waiting on; False if none."""
        with self._lock:
            entry = self._children.get(thread)
        if entry is None:
            return False
        popen, state = entry
        state["harness_killed"] = True
        _obs_registry().counter("runner.harness_kills").inc()
        try:
            popen.kill()
        except OSError:  # pragma: no cover - already-reaped race
            pass
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._children)


_active_children = _ActiveChildren()


def kill_active_child(thread: threading.Thread) -> bool:
    """Hard-kill the child process *thread* is currently waiting on.

    Returns False when the thread has no live child (it may be hung in
    pure-Python harness code instead — the watchdog's other case).
    The killed run is reported as a timeout, not a signal death.
    """
    return _active_children.kill_for(thread)


def active_child_count() -> int:
    """Number of live grading children (observability / test hook)."""
    return len(_active_children)


class SubprocessRunner:
    """Drop-in alternative to :class:`~repro.execution.runner.ProgramRunner`.

    Duck-types the runner interface the checkers use:
    ``run(identifier, args, *, hide_prints=False, timeout=None)``.
    """

    def __init__(
        self,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        python: Optional[str] = None,
        pool: Optional[Any] = None,
    ) -> None:
        """Configure the runner.

        ``timeout`` is the default per-run wall-clock limit in seconds;
        ``python`` overrides the interpreter used for the child (defaults
        to the running one); ``pool`` is an optional
        :class:`~repro.execution.worker_pool.WorkerPool` — when given,
        runs dispatch to a warm pooled interpreter instead of cold-
        starting a child per run (the pool's lifetime is the caller's
        responsibility).
        """
        self.timeout = timeout
        self.python = python or sys.executable
        self.pool = pool
        # Hoisted env construction: one snapshot per runner, with the
        # hidden/shown variants precomputed so the hot loop never copies
        # a dict per run.
        base = child_environment()
        self._env_by_hidden = {
            False: {**base, "REPRO_HIDE_PRINTS": "0"},
            True: {**base, "REPRO_HIDE_PRINTS": "1"},
        }

    # ------------------------------------------------------------------
    def run(
        self,
        identifier: str,
        args: Optional[List[str]] = None,
        *,
        hide_prints: bool = False,
        timeout: Optional[float] = None,
    ) -> ExecutionResult:
        """Run *identifier* in a child interpreter and rebuild its trace.

        Mirrors :meth:`ProgramRunner.run`'s signature and result; the
        trace is reconstructed from the child's output text.
        """
        obs = _obs_registry()
        body = self._run_pooled if self.pool is not None else self._run_child
        with obs.span(
            "runner.subprocess", identifier=identifier, pooled=self.pool is not None
        ) as span:
            result = body(
                identifier, args, hide_prints=hide_prints, timeout=timeout
            )
            span.set(
                events=len(result.events),
                timed_out=result.timed_out or None,
                signal=result.signal_number,
            )
        obs.histogram("runner.subprocess.seconds").observe(result.duration)
        if result.timed_out:
            obs.counter("runner.subprocess.timeouts").inc()
        return result

    def _run_child(
        self,
        identifier: str,
        args: Optional[List[str]] = None,
        *,
        hide_prints: bool = False,
        timeout: Optional[float] = None,
    ) -> ExecutionResult:
        """The uninstrumented body of :meth:`run`."""
        args = list(args) if args is not None else []
        limit = self.timeout if timeout is None else timeout
        command = [
            self.python,
            "-m",
            "repro.execution.child",
            identifier,
            *args,
        ]
        env = self._env_by_hidden[bool(hide_prints)]

        started = time.perf_counter()
        timed_out = False
        proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        state = _active_children.register(proc)
        try:
            try:
                stdout, stderr = proc.communicate(timeout=limit)
            except subprocess.TimeoutExpired:
                # The in-process runner can only *report* a timeout; here
                # the child is a real process and we actually end it.
                timed_out = True
                proc.kill()
                stdout, stderr = proc.communicate()
            returncode = proc.returncode
        finally:
            _active_children.unregister()
        duration = time.perf_counter() - started
        stdout = stdout or ""
        stderr = stderr or ""
        if state["harness_killed"]:
            # A supervisor watchdog ended this child for exceeding its
            # deadline: the cause is the timeout, not the kill signal.
            timed_out = True

        exception, signal_number = self._classify(
            identifier, returncode, stderr, timed_out
        )

        return self._reconstruct(
            identifier=identifier,
            args=args,
            stdout=stdout,
            stderr=stderr,
            duration=duration,
            exception=exception,
            timed_out=timed_out,
            hidden=hide_prints,
            signal_number=signal_number,
        )

    def _run_pooled(
        self,
        identifier: str,
        args: Optional[List[str]] = None,
        *,
        hide_prints: bool = False,
        timeout: Optional[float] = None,
    ) -> ExecutionResult:
        """The body of :meth:`run` when dispatching to a warm pool worker.

        The pool's response carries the same stdout/stderr/returncode
        contract as a cold child, so classification and reconstruction
        are shared with :meth:`_run_child` verbatim.
        """
        args = list(args) if args is not None else []
        limit = self.timeout if timeout is None else timeout
        outcome = self.pool.dispatch(
            identifier, args, hide_prints=hide_prints, timeout=limit
        )
        exception, signal_number = self._classify(
            identifier, outcome.returncode, outcome.stderr, outcome.timed_out
        )
        return self._reconstruct(
            identifier=identifier,
            args=args,
            stdout=outcome.stdout,
            stderr=outcome.stderr,
            duration=outcome.duration,
            exception=exception,
            timed_out=outcome.timed_out,
            hidden=hide_prints,
            signal_number=signal_number,
        )

    @staticmethod
    def _classify(
        identifier: str,
        returncode: int,
        stderr: str,
        timed_out: bool,
    ) -> Tuple[Optional[BaseException], Optional[int]]:
        """Map a child's exit status to (captured exception, signal).

        Shared between the cold and pooled paths; raises
        :class:`UnknownMainError` for the unknown-identifier status.
        """
        if returncode == UNKNOWN_MAIN_EXIT and not timed_out:
            tail = stderr.strip().splitlines()
            raise UnknownMainError(identifier, tail[-1] if tail else "")

        exception: Optional[BaseException] = None
        signal_number: Optional[int] = None
        if timed_out:
            pass
        elif returncode < 0:
            # CPython reports a signal-killed child as -signum; this is a
            # distinct failure mode (SIGSEGV, OOM-kill, ...), not a timeout.
            signal_number = -returncode
        elif returncode == PROGRAM_ERROR_EXIT:
            tail = stderr.strip().splitlines()
            exception = RuntimeError(tail[-1] if tail else "program raised")
        elif returncode != 0:
            exception = RuntimeError(
                f"child exited with status {returncode}: {stderr.strip()[:200]}"
            )
        return exception, signal_number

    @staticmethod
    def _line_attributions(stderr: str) -> Dict[int, int]:
        """Parse the child's ``@repro-line <index> <tid>`` records."""
        attributions: Dict[int, int] = {}
        for line in stderr.splitlines():
            if not line.startswith(LINE_ANNOTATION_PREFIX):
                continue
            parts = line[len(LINE_ANNOTATION_PREFIX) :].split()
            if len(parts) == 2:
                try:
                    attributions[int(parts[0])] = int(parts[1])
                except ValueError:
                    continue
        return attributions

    # ------------------------------------------------------------------
    def _reconstruct(
        self,
        *,
        identifier: str,
        args: List[str],
        stdout: str,
        stderr: str = "",
        duration: float,
        exception: Optional[BaseException],
        timed_out: bool,
        hidden: bool,
        signal_number: Optional[int] = None,
    ) -> ExecutionResult:
        """Rebuild an ExecutionResult from the child's output text."""
        attributions = self._line_attributions(stderr)
        registry = ThreadRegistry()
        database = EventDatabase(registry)
        threads: Dict[int, threading.Thread] = {}

        def thread_for(printed_id: int) -> threading.Thread:
            thread = threads.get(printed_id)
            if thread is None:
                thread = threading.Thread(name=f"child-thread-{printed_id}")
                threads[printed_id] = thread
            return thread

        root_printed_id: Optional[int] = None
        events: List[PropertyEvent] = []
        kept_lines: List[str] = []
        seq = 0
        per_thread_seq: Dict[int, int] = {}

        for stdout_index, line in enumerate(stdout.splitlines()):
            parsed = parse_property_line(line)
            if parsed is not None and parsed[1] == ROOT_MARKER:
                root_printed_id = parsed[0]
                continue  # infrastructure marker, not program output
            kept_lines.append(line)
            if parsed is None:
                # Plain text: use the child's stderr attribution record
                # when present, else fall back to the root.
                printed_id = attributions.get(
                    stdout_index,
                    root_printed_id if root_printed_id is not None else 0,
                )
                name, value = "str", line
            else:
                printed_id, name, value_text = parsed
                value = value_text
            thread = thread_for(printed_id)
            thread_seq = per_thread_seq.get(printed_id, 0)
            per_thread_seq[printed_id] = thread_seq + 1
            events.append(
                PropertyEvent(
                    seq=seq,
                    thread=thread,
                    thread_id=printed_id,
                    name=name,
                    value=value,
                    raw_line=line,
                    explicit=parsed is not None,
                    timestamp=0.0,
                    thread_seq=thread_seq,
                )
            )
            seq += 1

        if root_printed_id is None:
            # Hidden runs (or an empty trace): synthesize a root.
            root_printed_id = -1
        root_thread = thread_for(root_printed_id)
        workers: List[threading.Thread] = []
        for event in events:
            if event.thread is not root_thread and event.thread not in workers:
                workers.append(event.thread)

        return ExecutionResult(
            identifier=identifier,
            args=args,
            output="\n".join(kept_lines) + ("\n" if kept_lines else ""),
            events=events,
            database=database,
            root_thread=root_thread,
            root_thread_id=root_printed_id,
            duration=duration,
            exception=exception,
            timed_out=timed_out,
            hidden=hidden,
            worker_threads=workers,
            signal_number=signal_number,
            garbled_lines=detect_garbled_lines(stdout),
        )
