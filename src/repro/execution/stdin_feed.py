"""Scripted standard input for tested programs.

The paper's program-execution layer runs a program "with specified input
and arguments" (§4.4).  Arguments are the primary parameterisation; this
module supplies the input half for programs that read from the console:
while a trace session is active, ``builtins.input`` and ``sys.stdin``
serve lines from the test-provided script instead of the real terminal,
and every consumed line is recorded so the report can show what the
program was fed.

Exhausting the script raises :class:`ScriptedInputExhausted` (an
``EOFError``) inside the tested program — exactly what a real program
sees when its input pipe closes early — which the runner then reports as
the program's failure.
"""

from __future__ import annotations

import builtins
import io
import sys
import threading
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["ScriptedInputExhausted", "StdinFeed"]


class ScriptedInputExhausted(EOFError):
    """The tested program asked for more input than the test provided."""

    def __init__(self, consumed: int) -> None:
        super().__init__(
            f"the tested program asked for more input than the test "
            f"provided ({consumed} line(s) were available)"
        )
        self.consumed = consumed


class StdinFeed:
    """Installable scripted stdin.

    ``lines`` are served in order, newline-terminated, to both
    ``input()`` calls and direct ``sys.stdin`` reads.  Thread-safe:
    workers may read input too (unusual but legal in the model).
    """

    def __init__(self, lines: Optional[Sequence[str]] = None) -> None:
        self._lines: List[str] = [str(line) for line in (lines or [])]
        self._position = 0
        self._lock = threading.Lock()
        self._consumed: List[str] = []
        self._saved_input: Optional[Callable[..., str]] = None
        self._saved_stdin: Optional[Any] = None

    # -- the feed ---------------------------------------------------------
    def next_line(self) -> str:
        with self._lock:
            if self._position >= len(self._lines):
                raise ScriptedInputExhausted(len(self._lines))
            line = self._lines[self._position]
            self._position += 1
            self._consumed.append(line)
            return line

    def consumed_lines(self) -> List[str]:
        with self._lock:
            return list(self._consumed)

    @property
    def remaining(self) -> int:
        with self._lock:
            return len(self._lines) - self._position

    # -- installation ------------------------------------------------------
    def install(self) -> None:
        if self._saved_input is not None:
            raise RuntimeError("stdin feed already installed")
        self._saved_input = builtins.input
        self._saved_stdin = sys.stdin
        feed = self

        def scripted_input(prompt: object = "") -> str:
            # A prompt is display output like any other print; route it
            # through the (possibly intercepted) stdout.
            if prompt:
                sys.stdout.write(str(prompt))
            return feed.next_line()

        builtins.input = scripted_input
        sys.stdin = _FeedReader(self)

    def uninstall(self) -> None:
        if self._saved_input is None:
            return
        builtins.input = self._saved_input
        self._saved_input = None
        if self._saved_stdin is not None:
            sys.stdin = self._saved_stdin
            self._saved_stdin = None


class _FeedReader(io.TextIOBase):
    """``sys.stdin`` replacement backed by the feed."""

    def __init__(self, feed: StdinFeed) -> None:
        super().__init__()
        self._feed = feed

    def readable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def readline(self, size: int = -1) -> str:  # noqa: ARG002 - io signature
        try:
            return self._feed.next_line() + "\n"
        except ScriptedInputExhausted:
            return ""  # EOF semantics for direct stream reads

    def read(self, size: int = -1) -> str:  # noqa: ARG002 - io signature
        chunks: List[str] = []
        while True:
            line = self.readline()
            if not line:
                break
            chunks.append(line)
        return "".join(chunks)

    def __iter__(self):
        while True:
            line = self.readline()
            if not line:
                return
            yield line
