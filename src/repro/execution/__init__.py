"""Program-execution layer: invoke tested programs, collect output/trace."""

from repro.execution.registry import (
    MainFunction,
    UnknownMainError,
    register_main,
    registered_mains,
    resolve_main,
    unregister_main,
)
from repro.execution.runner import DEFAULT_TIMEOUT, ExecutionResult, ProgramRunner
from repro.execution.timing import (
    DEFAULT_TIMED_RUNS,
    TimingResult,
    TimingSample,
    speedup,
    time_program,
)

__all__ = [
    "MainFunction",
    "UnknownMainError",
    "register_main",
    "registered_mains",
    "resolve_main",
    "unregister_main",
    "ProgramRunner",
    "ExecutionResult",
    "DEFAULT_TIMEOUT",
    "DEFAULT_TIMED_RUNS",
    "TimingResult",
    "TimingSample",
    "speedup",
    "time_program",
]
