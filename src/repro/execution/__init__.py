"""Program-execution layer: invoke tested programs, collect output/trace."""

from repro.execution.registry import (
    MainFunction,
    UnknownMainError,
    register_main,
    registered_mains,
    resolve_main,
    unregister_main,
)
from repro.execution.runner import (
    DEFAULT_TIMEOUT,
    ExecutionResult,
    ProgramRunner,
    in_process_session_lock,
)
from repro.execution.equivalence import (
    ScheduleOracle,
    SimulatedRun,
    canonical_form,
    happens_before_key,
)
from repro.execution.scheduling import (
    BoundedPreemptionStrategy,
    ControlledScheduler,
    ExhaustiveStrategy,
    PCTStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    ScheduleAbort,
    ScheduleDivergenceError,
    ScheduleTrace,
    ScheduledBackend,
    bounded_preemption_sweep,
    resolve_schedule_strategy,
)
from repro.execution.taxonomy import (
    RETRYABLE_KINDS,
    FailureKind,
    classify_execution,
    classify_returncode,
    detect_garbled_lines,
)
from repro.execution.timing import (
    DEFAULT_TIMED_RUNS,
    TimingResult,
    TimingSample,
    speedup,
    time_program,
)

#: Supervisor names resolved lazily (PEP 562): the supervisor imports
#: the grading layer, which imports back into execution — eager import
#: here would make that a cycle.
_LAZY_SUPERVISOR = {
    "GradingSupervisor",
    "SubmissionOutcome",
    "BatchReport",
    "suite_failure_kind",
}

#: Explorer names resolved lazily (PEP 562): the explorer imports the
#: core checker, which imports back into execution.
_LAZY_EXPLORATION = {
    "ScheduleExplorer",
    "ExplorationReport",
    "ExplorationFinding",
    "ExhaustiveSearch",
    "ExhaustiveResult",
    "STRATEGY_CHOICES",
}


def __getattr__(name: str):
    if name in _LAZY_SUPERVISOR:
        from repro.execution import supervisor

        return getattr(supervisor, name)
    if name in _LAZY_EXPLORATION:
        from repro.execution import exploration

        return getattr(exploration, name)
    if name in ("SubprocessRunner", "kill_active_child", "active_child_count"):
        from repro.execution import subprocess_runner

        return getattr(subprocess_runner, name)
    if name in ("WorkerPool", "PoolResult", "PoolError", "pooled_child_env"):
        from repro.execution import worker_pool

        return getattr(worker_pool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FailureKind",
    "RETRYABLE_KINDS",
    "classify_execution",
    "classify_returncode",
    "detect_garbled_lines",
    "GradingSupervisor",
    "SubmissionOutcome",
    "BatchReport",
    "suite_failure_kind",
    "SubprocessRunner",
    "kill_active_child",
    "active_child_count",
    "WorkerPool",
    "PoolResult",
    "PoolError",
    "pooled_child_env",
    "MainFunction",
    "UnknownMainError",
    "register_main",
    "registered_mains",
    "resolve_main",
    "unregister_main",
    "ProgramRunner",
    "ExecutionResult",
    "in_process_session_lock",
    "ScheduledBackend",
    "ControlledScheduler",
    "ScheduleTrace",
    "ScheduleAbort",
    "ScheduleDivergenceError",
    "RandomWalkStrategy",
    "BoundedPreemptionStrategy",
    "PCTStrategy",
    "ExhaustiveStrategy",
    "ReplayStrategy",
    "bounded_preemption_sweep",
    "resolve_schedule_strategy",
    "ScheduleExplorer",
    "ExplorationReport",
    "ExplorationFinding",
    "ExhaustiveSearch",
    "ExhaustiveResult",
    "STRATEGY_CHOICES",
    "ScheduleOracle",
    "SimulatedRun",
    "canonical_form",
    "happens_before_key",
    "DEFAULT_TIMEOUT",
    "DEFAULT_TIMED_RUNS",
    "TimingResult",
    "TimingSample",
    "speedup",
    "time_program",
]
