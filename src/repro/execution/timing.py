"""Timed repetition of tested-program runs for performance checking.

The performance checker runs the tested program with low-thread and
high-thread arguments a default number of times (10 in the paper) and
compares the total times.  This module owns that repetition: prints are
hidden automatically so tracing cannot perturb the measurement, and the
basic statistics needed for a defensible verdict (total, mean, min,
standard deviation) are collected.  Following the profiling guidance of
the HPC course notes — *no optimization (or grading!) without measuring*
— the raw per-run samples are kept so a skeptical instructor can inspect
variance rather than trust a single ratio.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.execution.runner import ExecutionResult, ProgramRunner
from repro.obs import get_registry as _obs_registry

__all__ = ["TimingSample", "TimingResult", "time_program", "speedup"]

#: Paper default: each argument set is run 10 times.
DEFAULT_TIMED_RUNS = 10


@dataclass
class TimingSample:
    """One timed run of the program."""

    duration: float
    ok: bool
    reason: str = ""
    #: Failure-taxonomy kind of the run (``"ok"`` for clean runs).
    kind: str = "ok"


@dataclass
class TimingResult:
    """Aggregate of repeated timed runs with one argument set."""

    identifier: str
    args: List[str]
    samples: List[TimingSample] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Number of timed runs, clean or not."""
        return len(self.samples)

    @property
    def clean_samples(self) -> List[TimingSample]:
        """The samples that actually measure the program (``kind == "ok"``).

        A timed-out or crashed run's duration measures the harness's
        timeout or the crash path, not the program; including it in the
        totals inflated the low-thread side and handed out speedup credit
        for broken programs.
        """
        return [s for s in self.samples if s.kind == "ok"]

    @property
    def clean_runs(self) -> int:
        """Number of clean (``kind == "ok"``) runs."""
        return len(self.clean_samples)

    @property
    def all_ok(self) -> bool:
        """True when every timed run completed cleanly."""
        return all(s.ok for s in self.samples)

    def first_failure(self) -> str:
        """Reason of the first failed run (``""`` when all ok)."""
        for sample in self.samples:
            if not sample.ok:
                return sample.reason
        return ""

    def first_failure_kind(self) -> str:
        """Taxonomy kind of the first failed run (``""`` when all ok)."""
        for sample in self.samples:
            if not sample.ok:
                return sample.kind
        return ""

    @property
    def total(self) -> float:
        """Total duration of the *clean* runs only."""
        return sum(s.duration for s in self.clean_samples)

    @property
    def mean(self) -> float:
        """Mean duration of the clean runs (``nan`` when none)."""
        clean = self.clean_runs
        return self.total / clean if clean else math.nan

    @property
    def minimum(self) -> float:
        """Fastest clean run (``nan`` when none)."""
        return min((s.duration for s in self.clean_samples), default=math.nan)

    @property
    def stdev(self) -> float:
        """Sample standard deviation of the clean runs (0.0 below 2)."""
        if self.clean_runs < 2:
            return 0.0
        return statistics.stdev(s.duration for s in self.clean_samples)

    def describe(self) -> str:
        """One-line summary: totals, mean, min, stdev, excluded runs."""
        clean = self.clean_runs
        runs = (
            f"{self.runs} runs"
            if clean == self.runs
            else f"{clean} clean runs ({self.runs - clean} failed run(s) excluded)"
        )
        return (
            f"{self.identifier} {self.args}: total {self.total:.4f}s over "
            f"{runs} (mean {self.mean:.4f}s, min {self.minimum:.4f}s, "
            f"stdev {self.stdev:.4f}s)"
        )


def time_program(
    identifier: str,
    args: List[str],
    *,
    runs: int = DEFAULT_TIMED_RUNS,
    runner: Optional[ProgramRunner] = None,
    duration_of: Optional[Callable[[ExecutionResult], float]] = None,
    warmup_runs: int = 1,
) -> TimingResult:
    """Run *identifier* with *args* repeatedly, prints hidden, and time it.

    ``duration_of`` lets a caller substitute a different notion of elapsed
    time — the virtual-clock mode of :mod:`repro.simulation` reads the
    simulated makespan off the run instead of the wall clock, giving a
    deterministic, GIL-independent speedup measurement.

    ``warmup_runs`` untimed runs absorb import and allocator warm-up so
    the first timed sample is not an outlier (standard measurement
    hygiene from the profiling guides).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    runner = runner if runner is not None else ProgramRunner()
    result = TimingResult(identifier=identifier, args=list(args))
    obs = _obs_registry()
    per_run = obs.histogram("perf.run.seconds")
    with obs.span("perf.time_program", identifier=identifier, runs=runs) as span:
        for _ in range(max(0, warmup_runs)):
            runner.run(identifier, args, hide_prints=True)
        for _ in range(runs):
            started = time.perf_counter()
            execution = runner.run(identifier, args, hide_prints=True)
            wall = time.perf_counter() - started
            duration = duration_of(execution) if duration_of is not None else wall
            per_run.observe(duration)
            result.samples.append(
                TimingSample(
                    duration=duration,
                    ok=execution.ok,
                    reason=execution.failure_reason(),
                    kind=execution.failure_kind.value,
                )
            )
        span.set(clean=result.clean_runs, total=round(result.total, 6))
    return result


def speedup(low_threads: TimingResult, high_threads: TimingResult) -> float:
    """Speedup of the high-thread configuration over the low-thread one.

    Based on total times across the *clean* runs of each side, as in the
    paper (failed runs measure the harness, not the program).  Returns
    ``math.nan`` when either side has no clean run at all — a distinct
    "nothing was measured" outcome the caller must report rather than
    grade — and 0.0 when the high-thread total is non-positive
    (degenerate clock) so the caller deducts points rather than dividing
    by zero.
    """
    if not low_threads.clean_runs or not high_threads.clean_runs:
        return math.nan
    if high_threads.total <= 0.0:
        return 0.0
    return low_threads.total / high_threads.total
