"""Persistent worker-interpreter entry point for pooled grading.

Run as ``python -m repro.execution.pool_child``.  Where
:mod:`repro.execution.child` pays full interpreter startup (plus the
``repro.workloads`` import) for every submission, this process starts
once, imports once, and then serves submissions over a length-prefixed
pipe protocol until told to exit — the pre-forked worker the
:class:`~repro.execution.worker_pool.WorkerPool` keeps warm.

Protocol (all frames are a 4-byte big-endian length followed by that
many bytes of UTF-8 JSON):

* on startup the worker writes one ready frame
  ``{"event": "ready", "pid": <pid>}``;
* the parent writes request frames
  ``{"id": n, "identifier": str, "args": [str], "hide_prints": bool}``
  and reads exactly one response frame per request
  ``{"id": n, "returncode": int, "stdout": str, "stderr": str,
  "duration": float}``;
* a request may carry an ``{"obs": {"enabled": true, "run_id": str}}``
  block — the run then executes under a per-request ``pool.serve`` span
  in a fresh registry, and the response gains an ``obs`` payload (spans
  plus metrics) for the parent to adopt into its own trace;
* ``{"op": "exit"}`` ends the serve loop (exit status 0).

The response mimics a cold child run byte-for-byte: ``stdout`` is the
captured trace text (root marker line included), ``stderr`` carries the
``@repro-line`` attribution records and any traceback, and
``returncode`` uses the same 0/70/71 statuses — so the parent reuses
:class:`~repro.execution.subprocess_runner.SubprocessRunner`'s
classification and reconstruction unchanged.

Per request the worker resets the standalone tracing state
(:func:`repro.tracing.print_property.reset_standalone_state`) so thread
ids restart at the first registry id and the produced trace is
indistinguishable from a cold-started child's.  One pooling caveat is
inherent: a submission that leaks running threads leaves them alive in
the worker.  Leaked threads cannot corrupt the protocol (the real
stdout is never exposed to tested code), but a wedged worker is ended
and respawned by the pool's deadline handling, exactly like a wedged
cold child.
"""

from __future__ import annotations

import io
import json
import os
import struct
import sys
import time
import traceback
from typing import Any, BinaryIO, Dict, Optional

#: Frame header: 4-byte big-endian payload length.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame's payload, as a sanity check against a
#: corrupted or misaligned stream (64 MiB of JSON text).
MAX_FRAME_BYTES = 64 * 1024 * 1024

__all__ = ["FRAME_HEADER", "MAX_FRAME_BYTES", "read_frame", "write_frame", "main"]


def write_frame(stream: BinaryIO, payload: Dict[str, Any]) -> None:
    """Serialize *payload* as one length-prefixed JSON frame and flush."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    stream.write(FRAME_HEADER.pack(len(body)))
    stream.write(body)
    stream.flush()


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ValueError` on a torn header/payload or an
    implausible length — a desynchronized stream must fail loudly, not
    deliver garbage.
    """
    header = stream.read(FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < FRAME_HEADER.size:
        raise ValueError("torn frame header")
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"implausible frame length {length}")
    body = b""
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            raise ValueError("torn frame payload")
        body += chunk
    return json.loads(body.decode("utf-8"))


def _serve_one(identifier: str, args: list, hide_prints: bool) -> Dict[str, Any]:
    """Run one submission with captured output; the cold child in a box."""
    from repro.execution.child import (
        PROGRAM_ERROR_EXIT,
        ROOT_MARKER,
        UNKNOWN_MAIN_EXIT,
        _LineAtomicStdout,
    )
    from repro.execution.registry import UnknownMainError, resolve_main
    from repro.tracing.print_property import (
        print_property,
        reset_standalone_state,
        set_standalone_hidden,
    )

    out_buffer = io.StringIO()
    err_buffer = io.StringIO()
    wrapper = _LineAtomicStdout(out_buffer, err_buffer)

    reset_standalone_state()
    set_standalone_hidden(hide_prints)

    old_stdout, old_stderr, old_stdin = sys.stdout, sys.stderr, sys.stdin
    sys.stdout = wrapper  # type: ignore[assignment]
    sys.stderr = err_buffer  # type: ignore[assignment]
    sys.stdin = io.StringIO()  # type: ignore[assignment]
    started = time.perf_counter()
    returncode = 0
    try:
        try:
            program = resolve_main(identifier)
        except UnknownMainError as exc:
            print(str(exc), file=err_buffer)
            returncode = UNKNOWN_MAIN_EXIT
        else:
            # Same marker contract as the cold child: printed by the
            # infrastructure from the root thread, suppressed when hidden.
            print_property(ROOT_MARKER, os.getpid())
            try:
                program(list(args))
            except BaseException:  # noqa: BLE001 - serialized to the parent
                wrapper.close_buffers()
                traceback.print_exc(file=err_buffer)
                returncode = PROGRAM_ERROR_EXIT
        wrapper.close_buffers()
        wrapper.flush()
    finally:
        sys.stdout, sys.stderr, sys.stdin = old_stdout, old_stderr, old_stdin
        reset_standalone_state()
    duration = time.perf_counter() - started
    return {
        "returncode": returncode,
        "stdout": out_buffer.getvalue(),
        "stderr": err_buffer.getvalue(),
        "duration": duration,
    }


def _serve_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Serve one request frame, with per-request telemetry when asked.

    When the parent's dispatch frame carries an enabled ``obs`` block,
    the run happens inside a fresh registry under a ``pool.serve`` span,
    and the resulting spans/metrics ride back on the response frame for
    the parent to adopt (:meth:`repro.obs.registry.ObsRegistry.adopt`).
    """
    identifier = str(request.get("identifier", ""))
    args = list(request.get("args", ()))
    hide_prints = bool(request.get("hide_prints", False))
    obs_cfg = request.get("obs")
    if not (isinstance(obs_cfg, dict) and obs_cfg.get("enabled")):
        return _serve_one(identifier, args, hide_prints)

    from repro.obs.context import TraceContext
    from repro.obs.export import registry_payload
    from repro.obs.registry import ObsRegistry, use_registry

    context = TraceContext(run_id=str(obs_cfg.get("run_id", "")), role="pool")
    registry = ObsRegistry(enabled=True)
    # A fresh registry per request keeps the payload exactly this run's
    # spans; use_registry installs it so any obs-instrumented code the
    # submission reaches reports here, not into a stale default.
    with use_registry(registry):
        span = registry.begin_span(
            "pool.serve", identifier=identifier, pid=os.getpid()
        )
        try:
            response = _serve_one(identifier, args, hide_prints)
        finally:
            registry.end_span(span)
    response["obs"] = registry_payload(registry, context=context)
    return response


def main() -> int:
    """Serve submissions over stdin/stdout until EOF or an exit frame."""
    inbound = sys.stdin.buffer
    outbound = sys.stdout.buffer

    # Tested code must never see the protocol streams: anything a leaked
    # thread prints between requests lands in a throwaway sink.
    sys.stdout = io.StringIO()  # type: ignore[assignment]
    sys.stdin = io.StringIO()  # type: ignore[assignment]

    import repro.workloads  # noqa: F401 - the amortized per-process import

    write_frame(outbound, {"event": "ready", "pid": os.getpid()})

    while True:
        try:
            request = read_frame(inbound)
        except ValueError:
            return 2
        if request is None or request.get("op") == "exit":
            return 0
        response = _serve_request(request)
        response["id"] = request.get("id")
        write_frame(outbound, response)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
