"""Failure taxonomy: every way a graded run can end, named.

A grading service meets more failure shapes than "pass" and "error":
children hang, die by signal, crash in student code, emit traces torn
mid-line by a kill, or never start because the harness itself broke.
Collapsing those into one bucket destroys exactly the information an
instructor (or a retry policy) needs — a deadlocked join and a SIGSEGV
call for different feedback, and only *nondeterministic* failures are
worth rerunning.

This module is the shared vocabulary: a closed set of failure kinds
threaded through :class:`~repro.execution.runner.ExecutionResult`,
:class:`~repro.grading.records.SubmissionRecord`, the gradebook, and the
grading journal, plus the classification helpers that map raw process
facts (return codes, timeout flags, trace shape) onto it.
"""

from __future__ import annotations

import enum
from typing import List, Optional

__all__ = [
    "FailureKind",
    "ConcurrencyVerdict",
    "RETRYABLE_KINDS",
    "classify_returncode",
    "classify_execution",
    "concurrency_verdict",
    "detect_garbled_lines",
]


class FailureKind(str, enum.Enum):
    """Terminal classification of one graded run (or run attempt).

    The values are stable strings: they appear verbatim in gradebook
    JSON, journal lines, and reports, so renaming one is a data-format
    change.
    """

    #: Ran to completion; no infrastructure-visible failure.
    OK = "ok"
    #: Failed at least once but passed on a rerun — nondeterministic
    #: under this machine's schedules (the Fray-style flakiness case).
    FLAKY_PASS = "flaky-pass"
    #: Exceeded its wall-clock deadline (deadlocked join, infinite loop).
    TIMEOUT = "timeout"
    #: The tested program raised / exited reporting a program error.
    CRASH = "crash"
    #: The child process was killed by a signal (SIGSEGV, SIGKILL, ...).
    SIGNAL = "signal"
    #: The trace text was malformed: property-shaped lines that do not
    #: parse, or output truncated mid-line.
    GARBLED_TRACE = "garbled-trace"
    #: The harness itself failed (unresolvable program, suite-factory
    #: exception, journal corruption) — not the student's fault.
    INFRA_ERROR = "infra-error"

    def __str__(self) -> str:  # journal/gradebook lines print the value
        return self.value

    @property
    def is_failure(self) -> bool:
        return self not in (FailureKind.OK, FailureKind.FLAKY_PASS)


class ConcurrencyVerdict(str, enum.Enum):
    """Three-way race-aware refinement of the pass/fail verdict.

    The single ``racy`` marker conflates a student whose only bug is a
    missing lock with one whose algorithm is wrong; race analysis
    (:mod:`repro.execution.races`) splits the axis.  Values are stable
    strings (gradebook JSON, journal lines, CSV).
    """

    #: No failing schedule found and no race detected.
    CORRECT = "correct"
    #: Every explored schedule passed, but lockset/happens-before
    #: analysis found a race — the answer was right by scheduling luck.
    RACY_LUCKY = "racy-lucky"
    #: A failing schedule (or a plain failure) exists.
    WRONG = "wrong"

    def __str__(self) -> str:
        return self.value


def concurrency_verdict(*, passed: bool, races: bool) -> ConcurrencyVerdict:
    """Fold a grading outcome and race evidence into one verdict."""
    if not passed:
        return ConcurrencyVerdict.WRONG
    if races:
        return ConcurrencyVerdict.RACY_LUCKY
    return ConcurrencyVerdict.CORRECT


#: Kinds worth rerunning: the outcome may differ under another schedule.
#: Concurrent student code fails nondeterministically in *every* one of
#: these shapes — a race can raise, tear output, deadlock, or die by
#: signal depending on the interleaving.  Only an infra error is
#: excluded: the harness is broken, so retrying regrades nothing.
RETRYABLE_KINDS = frozenset(
    {
        FailureKind.TIMEOUT,
        FailureKind.SIGNAL,
        FailureKind.CRASH,
        FailureKind.GARBLED_TRACE,
        FailureKind.FLAKY_PASS,
    }
)


def classify_returncode(
    returncode: Optional[int],
    *,
    timed_out: bool = False,
    program_error_exit: int = 70,
    unknown_main_exit: int = 71,
) -> FailureKind:
    """Classify a child process's exit status.

    ``timed_out`` takes precedence: a child the harness killed after its
    deadline also dies with a negative returncode, but the *cause* is
    the timeout, not the signal that delivered the kill.  A negative
    returncode without a timeout is a genuine signal death (CPython's
    ``subprocess`` reports ``-signum``).
    """
    if timed_out:
        return FailureKind.TIMEOUT
    if returncode is None or returncode == 0:
        return FailureKind.OK
    if returncode < 0:
        return FailureKind.SIGNAL
    if returncode == program_error_exit:
        return FailureKind.CRASH
    if returncode == unknown_main_exit:
        return FailureKind.INFRA_ERROR
    # Any other nonzero status: the interpreter itself exited abnormally.
    return FailureKind.CRASH


def detect_garbled_lines(stdout: str) -> List[str]:
    """Return trace lines that are property-shaped but unparseable.

    Two shapes count as garbled: a line that starts like a property line
    (``Thread ...``) but fails the standard grammar, and a final line
    with no terminating newline (output truncated mid-line by a kill or
    a crashed writer).  Plain prose lines are *not* garbled — programs
    may legitimately print free text (the Hello World case).
    """
    from repro.tracing.formatting import parse_property_line

    garbled: List[str] = []
    lines = stdout.splitlines()
    for line in lines:
        if line.startswith("Thread ") and parse_property_line(line) is None:
            garbled.append(line)
    if stdout and not stdout.endswith("\n") and lines:
        tail = lines[-1]
        if tail not in garbled:
            garbled.append(tail)
    return garbled


def classify_execution(result) -> FailureKind:
    """Classify a finished :class:`ExecutionResult`.

    Order matters: a timed-out run often *also* has a truncated trace
    and a signal-killed child — the earliest cause wins so every run has
    exactly one kind.
    """
    if result.timed_out:
        return FailureKind.TIMEOUT
    if getattr(result, "signal_number", None):
        return FailureKind.SIGNAL
    if result.exception is not None:
        from repro.execution.registry import UnknownMainError

        if isinstance(result.exception, UnknownMainError):
            return FailureKind.INFRA_ERROR
        return FailureKind.CRASH
    if getattr(result, "garbled_lines", None):
        return FailureKind.GARBLED_TRACE
    return FailureKind.OK
