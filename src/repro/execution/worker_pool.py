"""Pre-forked pool of persistent worker interpreters for grading.

Cold subprocess grading pays full Python startup (plus the workload
registry import) for every submission; at class scale that interpreter
boot is the dominant cost.  The :class:`WorkerPool` amortizes it: N
warm :mod:`repro.execution.pool_child` interpreters are spawned once
and submissions are dispatched to them over a length-prefixed pipe
protocol (see :mod:`repro.execution.pool_child` for the frame format).

The supervisor's safety net is preserved end to end:

* every dispatch registers the worker's process with the same
  active-children table the cold path uses, so the watchdog's
  :func:`~repro.execution.subprocess_runner.kill_active_child` ends a
  wedged *pool worker* exactly like a wedged cold child, and the run is
  classified as a timeout;
* a worker that dies for any reason (deadline kill, crash, signal) is
  respawned on check-in, so the pool heals back to its configured size;
* per-dispatch deadlines are enforced parent-side with ``select`` on
  the response pipe — a worker that never answers is killed, not
  waited on.

Obs metrics: ``pool.dispatches``, ``pool.timeouts``, ``pool.respawns``
counters, a ``pool.workers`` gauge, and a ``pool.dispatch.seconds``
histogram.  See ``benchmarks/test_ablation_worker_pool.py`` for the
pooled-vs-cold ablation.

Fleet telemetry: when observability is enabled, each request frame
carries the trace run id; the child answers with its own spans and
metrics (a ``pool.serve`` span per request), which :meth:`dispatch`
adopts into this process's registry under the dispatching span — so a
pooled run's merged timeline shows child-side work causally parented
under the submission that triggered it.
"""

from __future__ import annotations

import os
import queue
import select
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.execution.pool_child import FRAME_HEADER, MAX_FRAME_BYTES
from repro.obs import get_registry as _obs_registry

__all__ = ["WorkerPool", "PoolResult", "PoolError", "pooled_child_env"]

#: Seconds allowed for a fresh worker to import and report ready.
DEFAULT_SPAWN_TIMEOUT = 30.0


class PoolError(RuntimeError):
    """The pool cannot serve dispatches (failed spawn, used after close)."""


@dataclass(frozen=True)
class PoolResult:
    """Outcome of one pooled dispatch, mirroring a cold child run.

    ``stdout``/``stderr``/``returncode`` carry the same contract as a
    ``python -m repro.execution.child`` run, so the caller can reuse the
    cold path's classification and trace reconstruction verbatim.
    ``timed_out`` is True when the deadline expired parent-side or the
    watchdog hard-killed the worker mid-run.
    """

    stdout: str
    stderr: str
    returncode: int
    timed_out: bool
    duration: float


def pooled_child_env() -> Dict[str, str]:
    """Deterministic environment for pool workers.

    Starts from the parent environment with undocumented ``REPRO_*``
    variables stripped (only the documented overrides pass through; see
    ``DOCUMENTED_REPRO_VARS``), and prepends this ``repro`` package's
    root to ``PYTHONPATH`` so the worker resolves the same code the
    parent is running, however the parent was launched.
    """
    from repro.execution.subprocess_runner import child_environment

    env = child_environment()
    import repro

    package_root = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


class _WorkerDied(Exception):
    """Internal: the worker's response stream ended before a full frame."""


class _DispatchTimeout(Exception):
    """Internal: the per-dispatch deadline expired before a response."""


class _PoolWorker:
    """One persistent interpreter and its framed pipe endpoints.

    Responses are read from the raw pipe fd with ``select`` + ``os.read``
    and pool-side buffering (never through the buffered reader), so
    deadline waits always see exactly the bytes that have arrived.
    """

    def __init__(self, command: List[str], env: Dict[str, str], spawn_timeout: float) -> None:
        self.proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        self._fd = self.proc.stdout.fileno()
        self._buffer = b""
        self.pid = self.proc.pid
        try:
            ready = self._read_frame(time.monotonic() + spawn_timeout)
        except (_WorkerDied, _DispatchTimeout) as exc:
            self.kill()
            raise PoolError(f"pool worker failed to start: {exc!r}") from exc
        if not isinstance(ready, dict) or ready.get("event") != "ready":
            self.kill()
            raise PoolError(f"pool worker sent bad ready frame: {ready!r}")

    # -- framed I/O ----------------------------------------------------
    def _read_exact(self, count: int, deadline: float) -> bytes:
        while len(self._buffer) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _DispatchTimeout()
            readable, _, _ = select.select([self._fd], [], [], remaining)
            if not readable:
                continue
            chunk = os.read(self._fd, 65536)
            if not chunk:
                raise _WorkerDied()
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def _read_frame(self, deadline: float) -> Dict[str, Any]:
        import json

        header = self._read_exact(FRAME_HEADER.size, deadline)
        (length,) = FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise _WorkerDied()
        return json.loads(self._read_exact(length, deadline).decode("utf-8"))

    def _write_frame(self, payload: Dict[str, Any]) -> None:
        import json

        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        try:
            self.proc.stdin.write(FRAME_HEADER.pack(len(body)) + body)
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDied() from exc

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:  # pragma: no cover - already-reaped race
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill is final
            pass

    def shutdown(self, grace: float) -> None:
        """Ask the worker to exit; escalate to kill after *grace* seconds."""
        try:
            self._write_frame({"op": "exit"})
            self.proc.stdin.close()
        except (_WorkerDied, OSError):
            pass
        try:
            self.proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            self.kill()


class WorkerPool:
    """N warm interpreters behind a blocking checkout queue.

    Thread-safe: grading worker threads call :meth:`dispatch`
    concurrently; each call checks a worker out, runs one submission on
    it, and checks it back in (respawning first if it died).
    """

    def __init__(
        self,
        size: int,
        *,
        python: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = int(size)
        self._python = python or sys.executable
        self._env = dict(env) if env is not None else pooled_child_env()
        self._spawn_timeout = spawn_timeout
        self._command = [self._python, "-m", "repro.execution.pool_child"]
        self._idle: "queue.Queue[_PoolWorker]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._workers: List[_PoolWorker] = []
        try:
            for _ in range(self.size):
                self._admit(self._spawn())
        except PoolError:
            self.shutdown()
            raise
        _obs_registry().gauge("pool.workers").set(self.size)

    # ------------------------------------------------------------------
    def _spawn(self) -> _PoolWorker:
        return _PoolWorker(self._command, self._env, self._spawn_timeout)

    def _admit(self, worker: _PoolWorker) -> None:
        with self._lock:
            self._workers.append(worker)
        self._idle.put(worker)

    def _retire(self, worker: _PoolWorker) -> None:
        worker.kill()
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)

    def _checkin(self, worker: _PoolWorker) -> None:
        """Return a worker to the idle queue, replacing it if it died."""
        if worker.alive:
            self._idle.put(worker)
            return
        self._retire(worker)
        if self._closed:
            return
        _obs_registry().counter("pool.respawns").inc()
        self._admit(self._spawn())

    # ------------------------------------------------------------------
    def dispatch(
        self,
        identifier: str,
        args: Optional[List[str]] = None,
        *,
        hide_prints: bool = False,
        timeout: float = 30.0,
    ) -> PoolResult:
        """Run one submission on a warm worker and return its outcome.

        Blocks until a worker is idle.  The worker is registered with
        the active-children table for the duration, so the supervisor's
        watchdog can hard-kill it; a harness kill or an expired
        *timeout* both surface as ``timed_out=True``.
        """
        if self._closed:
            raise PoolError("dispatch on a closed pool")
        from repro.execution.subprocess_runner import _active_children
        from repro.obs.context import current_context

        obs = _obs_registry()
        obs.counter("pool.dispatches").inc()
        worker = self._idle.get()
        state = _active_children.register(worker.proc)
        started = time.perf_counter()
        timed_out = False
        returncode = 0
        stdout = stderr = ""
        obs_payload: Optional[Dict[str, Any]] = None
        # The span the caller has open for this dispatch (the runner's
        # subprocess span): adopted child spans are stitched under it.
        parent_span = obs.current_span()
        try:
            deadline = time.monotonic() + timeout
            try:
                request: Dict[str, Any] = {
                    "id": worker.pid,
                    "identifier": identifier,
                    "args": list(args) if args is not None else [],
                    "hide_prints": bool(hide_prints),
                }
                if obs.enabled:
                    context = current_context()
                    request["obs"] = {
                        "enabled": True,
                        "run_id": context.run_id if context else "",
                    }
                worker._write_frame(request)
                response = worker._read_frame(deadline)
            except _DispatchTimeout:
                # The worker blew its deadline: end it, as the cold path
                # ends a child that outlives communicate(timeout=...).
                timed_out = True
                worker.kill()
                obs.counter("pool.timeouts").inc()
            except _WorkerDied:
                # EOF mid-request: either the watchdog killed the worker
                # (a timeout) or the submission took the interpreter down
                # with it (crash/signal) — the exit status disambiguates.
                worker.kill()
                returncode = self._death_returncode(worker)
            else:
                returncode = int(response.get("returncode", 0))
                stdout = str(response.get("stdout", ""))
                stderr = str(response.get("stderr", ""))
                payload = response.get("obs")
                if isinstance(payload, dict):
                    obs_payload = payload
        finally:
            _active_children.unregister()
            if state["harness_killed"]:
                timed_out = True
            self._checkin(worker)
        if obs_payload is not None:
            # Fold the worker's spans/metrics into this process under
            # the dispatching span, so a pooled run's timeline shows the
            # child-side `pool.serve` work exactly where it happened.
            obs.adopt(
                obs_payload,
                parent_id=parent_span.span_id if parent_span is not None else None,
            )
        duration = time.perf_counter() - started
        obs.histogram("pool.dispatch.seconds").observe(duration)
        return PoolResult(
            stdout=stdout,
            stderr=stderr,
            returncode=returncode,
            timed_out=timed_out,
            duration=duration,
        )

    @staticmethod
    def _death_returncode(worker: _PoolWorker) -> int:
        code = worker.proc.poll()
        if code is None:  # pragma: no cover - kill() already waited
            return 1
        return code

    # ------------------------------------------------------------------
    def active_workers(self) -> int:
        """Number of live worker processes (observability / test hook)."""
        with self._lock:
            return sum(1 for w in self._workers if w.alive)

    def shutdown(self, grace: float = 5.0) -> None:
        """End every worker; the pool cannot be used afterwards."""
        self._closed = True
        with self._lock:
            workers = list(self._workers)
            self._workers.clear()
        for worker in workers:
            worker.shutdown(grace)
        # Drain stale idle entries so a racing dispatch fails fast.
        while True:
            try:
                self._idle.get_nowait()
            except queue.Empty:
                break
        _obs_registry().gauge("pool.workers").set(0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
