"""Suites group the tests written for one problem.

As in the paper, a problem's suite typically holds two tests — one for
functionality and another for performance — and the interactive UI is
created by simply running the suite.  A global catalogue lets the CLI and
examples look suites up by name (``"primes"``, ``"pi"``, ...).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from repro.testfw.case import ScoredTestCase
from repro.testfw.result import SuiteResult

__all__ = ["TestSuite", "register_suite", "get_suite", "registered_suites"]


class TestSuite:
    """An ordered collection of scored test cases."""

    def __init__(self, name: str, tests: Optional[Iterable[ScoredTestCase]] = None) -> None:
        self.name = name
        self._tests: List[ScoredTestCase] = list(tests) if tests else []

    def add(self, test: ScoredTestCase) -> "TestSuite":
        self._tests.append(test)
        return self

    @property
    def tests(self) -> List[ScoredTestCase]:
        return list(self._tests)

    def test_named(self, name: str) -> ScoredTestCase:
        for test in self._tests:
            if test.name == name:
                return test
        raise KeyError(f"suite {self.name!r} has no test named {name!r}")

    @property
    def max_score(self) -> float:
        return sum(t.max_score for t in self._tests)

    def run(self) -> SuiteResult:
        """Run every test, never letting one failure abort the others."""
        result = SuiteResult(suite_name=self.name)
        for test in self._tests:
            result.results.append(test.run_safely())
        return result

    def run_one(self, test_name: str) -> SuiteResult:
        """Run a single named test (the UI's double-click action)."""
        result = SuiteResult(suite_name=self.name)
        result.results.append(self.test_named(test_name).run_safely())
        return result

    def __len__(self) -> int:
        return len(self._tests)


_lock = threading.Lock()
_suites: Dict[str, TestSuite] = {}


def register_suite(suite: TestSuite) -> TestSuite:
    """Publish *suite* in the global catalogue (replacing same-named)."""
    with _lock:
        _suites[suite.name] = suite
    return suite


def get_suite(name: str) -> TestSuite:
    """Look a suite up in the catalogue; raises KeyError with the
    known names when absent."""
    with _lock:
        try:
            return _suites[name]
        except KeyError:
            known = ", ".join(sorted(_suites)) or "<none>"
            raise KeyError(f"no suite named {name!r}; known suites: {known}") from None


def registered_suites() -> List[str]:
    """Names of every registered suite, sorted."""
    with _lock:
        return sorted(_suites)
